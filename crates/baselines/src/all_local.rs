//! The do-nothing reference solver.

use mec_system::{Assignment, Scenario, Solution, Solver, SolverStats};
use mec_types::Error;
use std::time::Duration;

/// Keeps every task on its own device (`X = 0`, utility 0).
///
/// Useful as the zero line in plots and as a sanity check: every other
/// solver must score at least as well, since `X = 0` is always feasible.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllLocalSolver;

impl AllLocalSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        Self
    }
}

impl Solver for AllLocalSolver {
    fn name(&self) -> &str {
        "AllLocal"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        Ok(Solution {
            assignment: Assignment::all_local(scenario),
            utility: 0.0,
            stats: SolverStats {
                objective_evaluations: 0,
                iterations: 0,
                elapsed: Duration::ZERO,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    #[test]
    fn always_returns_zero_utility() {
        let sc = Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 3],
            vec![ServerProfile::paper_default()],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(3, 1, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap();
        let solution = AllLocalSolver::new().solve(&sc).unwrap();
        assert_eq!(solution.utility, 0.0);
        assert_eq!(solution.assignment.num_offloaded(), 0);
    }
}
