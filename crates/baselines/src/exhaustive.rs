//! Exhaustive (brute-force) search — the global optimum.

use mec_system::{Assignment, EvalScratch, Evaluator, Scenario, Solution, Solver, SolverStats};
use mec_types::{Error, SubchannelId, UserId};
use std::time::Instant;

/// Enumerates every feasible offloading decision and returns the best.
///
/// The search walks users in id order; each user either stays local or
/// takes one currently-free `(server, subchannel)` slot, so only feasible
/// decisions (constraints 12b–12d) are ever visited. The number of leaves
/// is at most `(S·N + 1)^U`; a configurable guard refuses instances whose
/// upper bound exceeds [`ExhaustiveSolver::max_leaves`], because this
/// method is meant for the confined networks of Fig. 3 (`U=6, S=4, N=2` ⇒
/// ≤ 9⁶ ≈ 5.3·10⁵ leaves).
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveSolver {
    max_leaves: f64,
    parallel: bool,
    threads: Option<usize>,
}

impl ExhaustiveSolver {
    /// Default guard: 5·10⁷ leaf evaluations.
    pub const DEFAULT_MAX_LEAVES: f64 = 5.0e7;

    /// Creates the solver with the default guard (parallel search on).
    pub fn new() -> Self {
        Self {
            max_leaves: Self::DEFAULT_MAX_LEAVES,
            parallel: true,
            threads: None,
        }
    }

    /// Overrides the leaf-count guard.
    pub fn with_max_leaves(mut self, max_leaves: f64) -> Self {
        self.max_leaves = max_leaves;
        self
    }

    /// Disables the branch-parallel search (single-threaded DFS). The
    /// result is identical either way; parallel mode splits the first
    /// user's branches across threads.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Caps the worker threads of the branch-parallel search. Without an
    /// explicit cap, `TSAJS_THREADS` and then the hardware parallelism
    /// decide (see [`mec_types::effective_parallelism`]). Thread count
    /// never affects the result.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The configured guard.
    pub fn max_leaves(&self) -> f64 {
        self.max_leaves
    }

    /// Upper bound on the number of leaves for a scenario.
    pub fn leaf_bound(scenario: &Scenario) -> f64 {
        let options = (scenario.num_servers() * scenario.num_subchannels() + 1) as f64;
        options.powi(scenario.num_users() as i32)
    }
}

impl Default for ExhaustiveSolver {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-user slot key for the lexicographic tie order: local execution is
/// the smallest option (`0`), and slot `(s, j)` maps to `1 + s·N + j` —
/// exactly the order in which the DFS enumerates options.
fn slot_key(x: &Assignment, user_index: usize) -> usize {
    match x.slot(UserId::new(user_index)) {
        None => 0,
        Some((s, j)) => 1 + s.index() * x.num_subchannels() + j.index(),
    }
}

/// `true` if `a` precedes `b` in the lexicographic order over per-user
/// slot keys. Ties in objective value break toward the smaller
/// assignment, which makes the search result independent of thread count
/// and branch-completion order.
fn lex_smaller(a: &Assignment, b: &Assignment) -> bool {
    debug_assert_eq!(a.num_users(), b.num_users());
    for u in 0..a.num_users() {
        let (ka, kb) = (slot_key(a, u), slot_key(b, u));
        if ka != kb {
            return ka < kb;
        }
    }
    false
}

struct Search<'a> {
    scenario: &'a Scenario,
    evaluator: Evaluator<'a>,
    scratch: EvalScratch,
    current: Assignment,
    best: Assignment,
    best_obj: f64,
    leaves: u64,
}

impl Search<'_> {
    fn recurse(&mut self, user_index: usize) {
        if user_index == self.scenario.num_users() {
            self.leaves += 1;
            let obj = self
                .evaluator
                .objective_with(&self.current, &mut self.scratch);
            if obj > self.best_obj
                || (obj == self.best_obj && lex_smaller(&self.current, &self.best))
            {
                self.best_obj = obj;
                self.best = self.current.clone();
            }
            return;
        }
        let user = UserId::new(user_index);

        // Option 1: local execution.
        self.recurse(user_index + 1);

        // Option 2: every currently-free slot.
        for s in self.scenario.server_ids() {
            for j in 0..self.scenario.num_subchannels() {
                let j = SubchannelId::new(j);
                if self.current.occupant(s, j).is_none() {
                    self.current.assign(user, s, j).expect("slot checked free");
                    self.recurse(user_index + 1);
                    self.current.release(user);
                }
            }
        }
    }
}

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &str {
        "Exhaustive"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let bound = Self::leaf_bound(scenario);
        if bound > self.max_leaves {
            return Err(Error::UnsupportedScenario(format!(
                "exhaustive search bound {bound:.2e} exceeds the {:.2e} guard \
                 (U={}, S={}, N={})",
                self.max_leaves,
                scenario.num_users(),
                scenario.num_servers(),
                scenario.num_subchannels()
            )));
        }
        let start = Instant::now();
        let (best, best_obj, leaves) = if self.parallel && scenario.num_users() > 1 {
            solve_parallel(scenario, self.threads)
        } else {
            let all_local = Assignment::all_local(scenario);
            let mut search = Search {
                scenario,
                evaluator: Evaluator::new(scenario),
                scratch: EvalScratch::default(),
                current: all_local.clone(),
                best: all_local,
                best_obj: 0.0, // X = 0 scores exactly 0.
                leaves: 0,
            };
            search.recurse(0);
            (search.best, search.best_obj, search.leaves)
        };
        Ok(Solution {
            assignment: best,
            utility: best_obj,
            stats: SolverStats {
                objective_evaluations: leaves,
                iterations: leaves,
                elapsed: start.elapsed(),
            },
        })
    }
}

/// Splits the first user's options (local + every slot) across worker
/// threads, each running the sequential DFS over the remaining users.
/// Branch results are folded in branch order, breaking objective ties
/// toward the lexicographically smallest assignment, so the outcome is
/// bit-identical to the sequential search at any thread count.
fn solve_parallel(scenario: &Scenario, threads: Option<usize>) -> (Assignment, f64, u64) {
    let first = UserId::new(0);
    // Branch 0 = user 0 local; branches 1.. = user 0 on each slot.
    let mut branches = vec![None];
    for s in scenario.server_ids() {
        for j in 0..scenario.num_subchannels() {
            branches.push(Some((s, SubchannelId::new(j))));
        }
    }

    let workers = mec_types::effective_parallelism(threads).min(branches.len());
    let mut results: Vec<Option<(Assignment, f64, u64)>> = Vec::new();
    results.resize_with(branches.len(), || None);

    // Static round-robin partition: worker w explores branches w, w+W, …
    // and returns its `(branch, result)` pairs through its join handle
    // into indexed slots — no locks on the search path.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let branches = &branches;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < branches.len() {
                        let mut current = Assignment::all_local(scenario);
                        if let Some((s, j)) = branches[i] {
                            current
                                .assign(first, s, j)
                                .expect("slot is free in a fresh X");
                        }
                        let mut search = Search {
                            scenario,
                            evaluator: Evaluator::new(scenario),
                            scratch: EvalScratch::default(),
                            best: current.clone(),
                            current,
                            best_obj: f64::NEG_INFINITY,
                            leaves: 0,
                        };
                        search.recurse(1);
                        out.push((i, (search.best, search.best_obj, search.leaves)));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("branch worker panicked") {
                results[i] = Some(result);
            }
        }
    });

    // Fold in branch order; start from the all-local reference of 0.0 just
    // like the sequential path.
    let mut best = Assignment::all_local(scenario);
    let mut best_obj = 0.0;
    let mut leaves = 0;
    for r in results.iter_mut() {
        let (b, obj, n) = r.take().expect("every branch was explored");
        leaves += n;
        if obj > best_obj || (obj == best_obj && lex_smaller(&b, &best)) {
            best = b;
            best_obj = obj;
        }
    }
    (best, best_obj, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerId, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_scenario(users: usize, servers: usize, subs: usize, gain: f64) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            ChannelGains::uniform(users, servers, subs, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-12.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn leaf_count_matches_closed_form_when_slots_exceed_users() {
        // With K = S·N slots and U users, the exact leaf count is
        // Σ_m C(U, m) · P(K, m) for m offloaded users.
        let sc = uniform_scenario(2, 2, 1, 1e-10);
        let solution = ExhaustiveSolver::new().solve(&sc).unwrap();
        // U=2, K=2: m=0 → 1, m=1 → 2·2=4, m=2 → 1·2·1·... C(2,2)·P(2,2)=2.
        assert_eq!(solution.stats.objective_evaluations, 1 + 4 + 2);
    }

    #[test]
    fn finds_the_obvious_optimum() {
        // One user, good channel: the optimum offloads it.
        let sc = uniform_scenario(1, 2, 2, 1e-10);
        let solution = ExhaustiveSolver::new().solve(&sc).unwrap();
        assert_eq!(solution.assignment.num_offloaded(), 1);
        assert!(solution.utility > 0.0);
    }

    #[test]
    fn all_local_wins_on_terrible_channels() {
        let sc = uniform_scenario(3, 2, 2, 1e-17);
        let solution = ExhaustiveSolver::new().solve(&sc).unwrap();
        assert_eq!(solution.assignment.num_offloaded(), 0);
        assert_eq!(solution.utility, 0.0);
    }

    #[test]
    fn beats_or_ties_every_random_feasible_decision() {
        let sc = random_scenario(1, 4, 2, 2);
        let opt = ExhaustiveSolver::new().solve(&sc).unwrap();
        let ev = Evaluator::new(&sc);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let mut x = Assignment::all_local(&sc);
            for u in sc.user_ids() {
                if rng.gen_bool(0.6) {
                    let s = ServerId::new(rng.gen_range(0..sc.num_servers()));
                    if let Some(j) = x.free_subchannel(s) {
                        x.assign(u, s, j).unwrap();
                    }
                }
            }
            assert!(ev.objective(&x) <= opt.utility + 1e-12);
        }
    }

    #[test]
    fn separable_case_matches_independent_optimum() {
        // One user per cell on orthogonal subchannels is optimal when
        // channels are clean and capacity abundant; the optimum for 2
        // users, 2 servers, 2 subchannels must use different subchannels
        // (and different servers) to dodge interference.
        let sc = uniform_scenario(2, 2, 2, 1e-10);
        let solution = ExhaustiveSolver::new().solve(&sc).unwrap();
        let slots: Vec<_> = solution.assignment.offloaded().collect();
        assert_eq!(slots.len(), 2);
        assert_ne!(
            slots[0].2, slots[1].2,
            "optimal decisions avoid co-channel interference"
        );
    }

    #[test]
    fn size_guard_refuses_large_instances() {
        let sc = uniform_scenario(10, 4, 3, 1e-10);
        // 13^10 ≈ 1.4e11 > default guard.
        let result = ExhaustiveSolver::new().solve(&sc);
        assert!(matches!(result, Err(Error::UnsupportedScenario(_))));
        // But a raised guard of this magnitude is accepted structurally.
        assert!(ExhaustiveSolver::leaf_bound(&sc) > ExhaustiveSolver::DEFAULT_MAX_LEAVES);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        for seed in 0..3 {
            let sc = random_scenario(seed, 5, 3, 2);
            let par = ExhaustiveSolver::new().solve(&sc).unwrap();
            let seq = ExhaustiveSolver::new().sequential().solve(&sc).unwrap();
            assert_eq!(par.assignment, seq.assignment, "seed {seed}");
            assert_eq!(par.utility, seq.utility);
            assert_eq!(
                par.stats.objective_evaluations,
                seq.stats.objective_evaluations
            );
        }
    }

    #[test]
    fn ties_break_toward_the_lexicographically_smallest_assignment() {
        // A single user over uniform gains and identical servers scores
        // the same on every slot — a genuine 4-way tie. The winner must
        // be the lexicographically smallest option, slot (s0, j0), in
        // both search modes.
        let sc = uniform_scenario(1, 2, 2, 1e-10);
        let ev = Evaluator::new(&sc);
        let u = UserId::new(0);
        let best = ExhaustiveSolver::new().solve(&sc).unwrap();
        for s in 0..2 {
            for j in 0..2 {
                let mut x = Assignment::all_local(&sc);
                x.assign(u, ServerId::new(s), SubchannelId::new(j)).unwrap();
                assert_eq!(
                    ev.objective(&x),
                    best.utility,
                    "every slot of (s{s}, j{j}) must tie for this test to bite"
                );
            }
        }
        for mut solver in [
            ExhaustiveSolver::new(),
            ExhaustiveSolver::new().sequential(),
        ] {
            let solution = solver.solve(&sc).unwrap();
            assert_eq!(
                solution.assignment.slot(u),
                Some((ServerId::new(0), SubchannelId::new(0))),
                "ties must break toward the lexicographically smallest slot"
            );
        }
    }

    #[test]
    fn lex_order_ranks_local_before_any_slot_and_slots_by_server_then_channel() {
        let sc = uniform_scenario(2, 2, 2, 1e-10);
        let local = Assignment::all_local(&sc);
        let mut s0j1 = local.clone();
        s0j1.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(1))
            .unwrap();
        let mut s1j0 = local.clone();
        s1j0.assign(UserId::new(0), ServerId::new(1), SubchannelId::new(0))
            .unwrap();
        assert!(lex_smaller(&local, &s0j1));
        assert!(lex_smaller(&s0j1, &s1j0));
        assert!(!lex_smaller(&s1j0, &s0j1));
        assert!(!lex_smaller(&local, &local));
        // Earlier users dominate the comparison.
        let mut u1_off = local.clone();
        u1_off
            .assign(UserId::new(1), ServerId::new(1), SubchannelId::new(1))
            .unwrap();
        assert!(lex_smaller(&u1_off, &s0j1));
    }

    #[test]
    fn fig3_sized_instance_completes() {
        // U=6, S=4, N=2 — the paper's Fig. 3 configuration.
        let sc = random_scenario(5, 6, 4, 2);
        let solution = ExhaustiveSolver::new().solve(&sc).unwrap();
        assert!(solution.utility >= 0.0);
        assert!(solution.stats.objective_evaluations > 0);
        solution.assignment.verify_feasible(&sc).unwrap();
    }
}
