//! The greedy offloading baseline.

use mec_system::{Assignment, Evaluator, Scenario, Solution, Solver, SolverStats};
use mec_types::{Error, ServerId, SubchannelId};
use std::time::Instant;

/// Greedy offloading (§V baselines): *"all permissible tasks, up to the
/// limit set by the base stations, are offloaded; users are assigned to
/// sub-bands in a prioritized manner, favoring those with the strongest
/// signal strength."*
///
/// Users are processed in descending order of their best channel gain;
/// each one attaches to its strongest station that still has a free
/// subchannel (falling back to weaker stations before giving up). Within
/// the chosen station, the free sub-band with the least interference
/// accumulated from already-admitted users is taken — the "prioritized"
/// sub-band choice.
///
/// After the fill, users whose individual benefit `J_u` is negative are
/// released back to local execution (repeatedly, since each release
/// lowers interference for the rest). This applies the paper's §III-A
/// rule that *"users should only offload if the benefit `J_u` is
/// positive"*; without it, greedy's utility collapses in
/// interference-limited configurations instead of trailing the smarter
/// schemes by a few percent as in Fig. 3. Greedy still never *optimizes*
/// placements — it only admits and prunes.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver;

impl GreedySolver {
    /// Creates the solver.
    pub fn new() -> Self {
        Self
    }
}

impl Solver for GreedySolver {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let start = Instant::now();
        let gains = scenario.gains();
        let j0 = SubchannelId::new(0);

        // Rank users by the gain to their strongest station.
        let mut order: Vec<_> = scenario.user_ids().collect();
        order.sort_by(|a, b| {
            let ga = gains.gain(*a, gains.best_server(*a), j0);
            let gb = gains.gain(*b, gains.best_server(*b), j0);
            gb.partial_cmp(&ga).expect("gains are finite")
        });

        let mut x = Assignment::all_local(scenario);
        // interference[s][j]: received power at station s on sub-band j
        // from users admitted so far (to other stations).
        let num_sub = scenario.num_subchannels();
        let mut interference = vec![0.0f64; scenario.num_servers() * num_sub];
        for u in order {
            // Stations for this user, strongest first.
            let mut stations: Vec<ServerId> = scenario.server_ids().collect();
            stations.sort_by(|a, b| {
                gains
                    .gain(u, *b, j0)
                    .partial_cmp(&gains.gain(u, *a, j0))
                    .expect("gains are finite")
            });
            for s in stations {
                // Least-interfered free sub-band at this station.
                let chosen = x.free_subchannels_iter(s).min_by(|a, b| {
                    let ia = interference[s.index() * num_sub + a.index()];
                    let ib = interference[s.index() * num_sub + b.index()];
                    ia.partial_cmp(&ib).expect("powers are finite")
                });
                if let Some(j) = chosen {
                    x.assign(u, s, j).expect("slot reported free");
                    let p = scenario.tx_powers_watts()[u.index()];
                    for r in scenario.server_ids() {
                        if r != s {
                            interference[r.index() * num_sub + j.index()] +=
                                p * gains.gain(u, r, j);
                        }
                    }
                    break;
                }
            }
        }

        // Prune users for whom offloading hurts (J_u < 0); releasing them
        // reduces interference, so iterate until stable.
        let evaluator = Evaluator::new(scenario);
        let mut evals: u64 = 0;
        loop {
            let eval = evaluator
                .evaluate(&x)
                .expect("greedy assignments are feasible by construction");
            evals += 1;
            let negative: Vec<_> = scenario
                .user_ids()
                .filter(|u| x.is_offloaded(*u) && eval.users[u.index()].utility < 0.0)
                .collect();
            if negative.is_empty() {
                break;
            }
            for u in negative {
                x.release(u);
            }
        }

        let utility = evaluator.objective(&x);
        Ok(Solution {
            assignment: x,
            utility,
            stats: SolverStats {
                objective_evaluations: evals + 1,
                iterations: scenario.num_users() as u64,
                elapsed: start.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, UserId, Watts};

    fn scenario_with_gains(gains: ChannelGains, servers: usize, subs: usize) -> Scenario {
        let users = gains.num_users();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn fills_base_stations_to_capacity() {
        // 5 users, capacity for 4 (2 servers × 2 subchannels).
        let gains = ChannelGains::uniform(5, 2, 2, 1e-10).unwrap();
        let sc = scenario_with_gains(gains, 2, 2);
        let solution = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(
            solution.assignment.num_offloaded(),
            4,
            "greedy offloads to the cap"
        );
    }

    #[test]
    fn prefers_the_strongest_station() {
        // User 0 strongly prefers server 1; user 1 prefers server 0.
        let gains =
            ChannelGains::from_fn(
                2,
                2,
                1,
                |u, s, _| {
                    if u.index() == s.index() {
                        1e-11
                    } else {
                        1e-9
                    }
                },
            )
            .unwrap();
        let sc = scenario_with_gains(gains, 2, 1);
        let solution = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(
            solution
                .assignment
                .slot(UserId::new(0))
                .map(|(s, _)| s.index()),
            Some(1)
        );
        assert_eq!(
            solution
                .assignment
                .slot(UserId::new(1))
                .map(|(s, _)| s.index()),
            Some(0)
        );
    }

    #[test]
    fn stronger_users_pick_first_when_contending() {
        // Both users want server 0 (only 1 slot); user 1 has the better
        // gain so it wins and user 0 falls back to server 1.
        let gains = ChannelGains::from_fn(2, 2, 1, |u, s, _| match (u.index(), s.index()) {
            (0, 0) => 1e-10,
            (1, 0) => 1e-9,
            _ => 1e-12,
        })
        .unwrap();
        let sc = scenario_with_gains(gains, 2, 1);
        let solution = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(
            solution
                .assignment
                .slot(UserId::new(1))
                .map(|(s, _)| s.index()),
            Some(0)
        );
        assert_eq!(
            solution
                .assignment
                .slot(UserId::new(0))
                .map(|(s, _)| s.index()),
            Some(1)
        );
    }

    #[test]
    fn negative_benefit_users_are_pruned() {
        // Terrible channels: greedy fills the stations, then the J_u < 0
        // prune releases everyone, ending at the all-local decision.
        let gains = ChannelGains::uniform(2, 1, 2, 1e-17).unwrap();
        let sc = scenario_with_gains(gains, 1, 2);
        let solution = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(solution.assignment.num_offloaded(), 0);
        assert_eq!(solution.utility, 0.0);
    }

    #[test]
    fn prune_is_iterative_not_one_shot() {
        // A mixed case: one user has a clean channel, the other a poor
        // one. The poor user is pruned; the good one must survive.
        let gains = ChannelGains::from_fn(
            2,
            2,
            1,
            |u, _, _| {
                if u.index() == 0 {
                    1e-10
                } else {
                    1e-16
                }
            },
        )
        .unwrap();
        let sc = scenario_with_gains(gains, 2, 1);
        let solution = GreedySolver::new().solve(&sc).unwrap();
        assert!(solution.assignment.is_offloaded(UserId::new(0)));
        assert!(!solution.assignment.is_offloaded(UserId::new(1)));
        assert!(solution.utility > 0.0);
    }

    #[test]
    fn is_deterministic() {
        let gains = ChannelGains::uniform(4, 2, 2, 1e-10).unwrap();
        let sc = scenario_with_gains(gains, 2, 2);
        let a = GreedySolver::new().solve(&sc).unwrap();
        let b = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
