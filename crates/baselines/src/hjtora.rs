//! An hJTORA-style heuristic (after Tran & Pompili, IEEE TVT 2019,
//! reference \[37\] of the paper).
//!
//! The original hJTORA alternates exact resource allocation with an
//! exhaustive *single-user adjustment* search: starting from a feasible
//! decision, it repeatedly scores every admissible one-user change —
//! admitting a local user to any free slot, relocating an offloaded user,
//! or removing one — under the optimal allocation, and applies the best
//! strictly-improving adjustment until none exists (steepest ascent).
//!
//! This reproduces the properties the paper measures against it: solution
//! quality slightly below TSAJS (it stops at the first local optimum of
//! the adjustment neighborhood), and a runtime that grows markedly with
//! the number of subchannels because every round scans `O(U·S·N)`
//! candidates (Fig. 8).

use mec_system::{
    Assignment, IncrementalObjective, MoveDesc, Scenario, Solution, Solver, SolverStats,
};
use mec_types::{Error, SubchannelId};
use std::time::Instant;

/// The hJTORA-style steepest-ascent baseline.
#[derive(Debug, Clone, Copy)]
pub struct HJtoraSolver {
    max_rounds: u64,
    improvement_tolerance: f64,
}

impl HJtoraSolver {
    /// Default cap on improvement rounds (each round applies one
    /// adjustment, so this also caps the number of offloading changes).
    pub const DEFAULT_MAX_ROUNDS: u64 = 10_000;

    /// Creates the solver with default limits.
    pub fn new() -> Self {
        Self {
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            improvement_tolerance: 1e-12,
        }
    }

    /// Overrides the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// All candidate single-user adjustments plus pairwise swaps.
    fn candidate_moves(scenario: &Scenario, x: &Assignment) -> Vec<Move> {
        let mut moves = Vec::new();
        for u in scenario.user_ids() {
            let current = x.slot(u);
            // Removal (only for offloaded users).
            if current.is_some() {
                moves.push(Move::Relocate {
                    user: u,
                    target: None,
                });
            }
            // Admission / relocation to every free slot.
            for s in scenario.server_ids() {
                for j in 0..scenario.num_subchannels() {
                    let j = SubchannelId::new(j);
                    if x.occupant(s, j).is_none() && current != Some((s, j)) {
                        moves.push(Move::Relocate {
                            user: u,
                            target: Some((s, j)),
                        });
                    }
                }
            }
        }
        // Pairwise swaps where at least one side is offloaded (two locals
        // swapping is a no-op). This is the "interference-aware exchange"
        // adjustment of the original heuristic.
        for a in scenario.user_ids() {
            for b in scenario.user_ids().skip(a.index() + 1) {
                if (x.is_offloaded(a) || x.is_offloaded(b)) && x.slot(a) != x.slot(b) {
                    moves.push(Move::Swap { a, b });
                }
            }
        }
        moves
    }
}

impl Default for HJtoraSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy)]
enum Move {
    /// Move `user` to `target` (`None` = back to local execution).
    Relocate {
        user: mec_types::UserId,
        target: Option<(mec_types::ServerId, SubchannelId)>,
    },
    /// Exchange the slots of users `a` and `b`.
    Swap {
        a: mec_types::UserId,
        b: mec_types::UserId,
    },
}

impl Move {
    /// Lowers the adjustment to the primitive-op language of the
    /// incremental evaluator, against the decision it will be applied to.
    fn to_desc(self, x: &Assignment) -> MoveDesc {
        match self {
            Move::Relocate { user, target } => MoveDesc::relocate(x, user, target),
            Move::Swap { a, b } => MoveDesc::swap(x, a, b),
        }
    }
}

impl Solver for HJtoraSolver {
    fn name(&self) -> &str {
        "hJTORA"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let start = Instant::now();
        let mut evals: u64 = 0;
        let mut rounds: u64 = 0;

        // Multi-start steepest ascent: once from the empty decision and
        // once from a strongest-signal fill (the original heuristic begins
        // from the full request set and prunes). Keep the better optimum.
        let mut best: Option<(Assignment, f64)> = None;
        for init in [
            Assignment::all_local(scenario),
            strongest_signal_fill(scenario),
        ] {
            let (x, obj) = self.ascend(scenario, init, &mut evals, &mut rounds)?;
            if best.as_ref().is_none_or(|(_, b)| obj > *b) {
                best = Some((x, obj));
            }
        }
        let (assignment, utility) = best.expect("at least one start ran");

        Ok(Solution {
            assignment,
            utility,
            stats: SolverStats {
                objective_evaluations: evals,
                iterations: rounds,
                elapsed: start.elapsed(),
            },
        })
    }
}

/// Fills every station to its subchannel limit, strongest signal first
/// (the same admission order as the Greedy baseline) — the "all requests
/// admitted" starting point the original hJTORA prunes from.
fn strongest_signal_fill(scenario: &Scenario) -> Assignment {
    let gains = scenario.gains();
    let j0 = SubchannelId::new(0);
    let mut order: Vec<_> = scenario.user_ids().collect();
    order.sort_by(|a, b| {
        let ga = gains.gain(*a, gains.best_server(*a), j0);
        let gb = gains.gain(*b, gains.best_server(*b), j0);
        gb.partial_cmp(&ga).expect("gains are finite")
    });
    let mut x = Assignment::all_local(scenario);
    for u in order {
        let mut stations: Vec<_> = scenario.server_ids().collect();
        stations.sort_by(|a, b| {
            gains
                .gain(u, *b, j0)
                .partial_cmp(&gains.gain(u, *a, j0))
                .expect("gains are finite")
        });
        for s in stations {
            if let Some(j) = x.free_subchannel(s) {
                x.assign(u, s, j).expect("slot reported free");
                break;
            }
        }
    }
    x
}

impl HJtoraSolver {
    /// Steepest ascent from `x` until no adjustment improves; returns the
    /// local optimum and its objective.
    ///
    /// Every candidate is scored speculatively against persistent
    /// [`IncrementalObjective`] state
    /// ([`score`](IncrementalObjective::score) replays the apply-path
    /// arithmetic bit-exactly without mutating anything), so a round
    /// costs `O(candidates · S)` with no per-candidate journaling or
    /// undo. The state is re-synchronized after each applied adjustment,
    /// which bounds drift to a single round.
    fn ascend(
        &self,
        scenario: &Scenario,
        x: Assignment,
        evals: &mut u64,
        rounds: &mut u64,
    ) -> Result<(Assignment, f64), Error> {
        let mut inc = IncrementalObjective::new(scenario, x)?;
        let mut best_obj = inc.current();
        *evals += 1;
        while *rounds < self.max_rounds {
            let mut best_move: Option<(MoveDesc, f64)> = None;
            for mv in Self::candidate_moves(scenario, inc.assignment()) {
                let desc = mv.to_desc(inc.assignment());
                let obj = inc.score(&desc);
                *evals += 1;
                if obj > best_obj + self.improvement_tolerance
                    && best_move.is_none_or(|(_, prev)| obj > prev)
                {
                    best_move = Some((desc, obj));
                }
            }
            match best_move {
                Some((desc, obj)) => {
                    inc.apply(&desc);
                    inc.commit();
                    inc.resync();
                    best_obj = obj;
                    *rounds += 1;
                }
                None => break, // Local optimum of the adjustment neighborhood.
            }
        }
        Ok((inc.into_assignment(), best_obj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_scenario(users: usize, servers: usize, subs: usize, gain: f64) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            ChannelGains::uniform(users, servers, subs, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-12.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn finds_positive_utility_and_stays_feasible() {
        let sc = uniform_scenario(5, 2, 2, 1e-10);
        let solution = HJtoraSolver::new().solve(&sc).unwrap();
        assert!(solution.utility > 0.0);
        solution.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn keeps_all_local_on_terrible_channels() {
        let sc = uniform_scenario(3, 2, 2, 1e-17);
        let solution = HJtoraSolver::new().solve(&sc).unwrap();
        assert_eq!(solution.assignment.num_offloaded(), 0);
        assert_eq!(solution.utility, 0.0);
    }

    #[test]
    fn close_to_exhaustive_on_small_instances() {
        for seed in 0..5 {
            let sc = random_scenario(seed, 4, 2, 2);
            let opt = ExhaustiveSolver::new().solve(&sc).unwrap();
            let h = HJtoraSolver::new().solve(&sc).unwrap();
            assert!(
                h.utility <= opt.utility + 1e-9,
                "heuristic can't beat the optimum"
            );
            assert!(
                h.utility >= 0.90 * opt.utility,
                "seed {seed}: hJTORA {} too far below optimum {}",
                h.utility,
                opt.utility
            );
        }
    }

    #[test]
    fn is_deterministic() {
        let sc = random_scenario(9, 6, 3, 2);
        let a = HJtoraSolver::new().solve(&sc).unwrap();
        let b = HJtoraSolver::new().solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
    }

    #[test]
    fn round_cap_limits_work() {
        let sc = uniform_scenario(6, 3, 3, 1e-10);
        let solution = HJtoraSolver::new().with_max_rounds(1).solve(&sc).unwrap();
        // The round budget is shared across the two starts, so exactly one
        // adjustment is applied in total.
        assert_eq!(solution.stats.iterations, 1);
        let unlimited = HJtoraSolver::new().solve(&sc).unwrap();
        assert!(unlimited.stats.iterations >= solution.stats.iterations);
    }

    #[test]
    fn evaluation_count_scales_with_subchannels() {
        // The defining cost behavior behind Fig. 8: more subchannels →
        // more candidates per round → more evaluations.
        let small = uniform_scenario(4, 2, 2, 1e-10);
        let large = uniform_scenario(4, 2, 6, 1e-10);
        let a = HJtoraSolver::new().solve(&small).unwrap();
        let b = HJtoraSolver::new().solve(&large).unwrap();
        assert!(b.stats.objective_evaluations > a.stats.objective_evaluations);
    }
}
