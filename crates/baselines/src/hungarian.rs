//! Maximum-weight bipartite assignment (Hungarian / Jonker-Volgenant
//! style potentials), used by the interference-free upper bound.
//!
//! Solves `max Σ_i w[i][σ(i)]` over injective assignments `σ` of rows to
//! columns, where every row may also remain unassigned at weight 0 (the
//! "stay local" option). Runs in `O(n²·m)` — ample for the row/column
//! counts of MEC scheduling instances.

/// Solves the maximum-weight assignment problem.
///
/// `weights[i][j]` is the value of assigning row `i` to column `j`;
/// negative values are never chosen because every row can stay
/// unassigned at value 0. Returns `(total_value, assignment)` with
/// `assignment[i] = Some(j)` for matched rows.
///
/// # Example
///
/// ```
/// use mec_baselines::max_weight_assignment;
///
/// // Both rows prefer column 0; the matching resolves the conflict.
/// let weights = vec![vec![5.0, 2.0], vec![5.0, 0.0]];
/// let (total, assignment) = max_weight_assignment(&weights);
/// assert_eq!(total, 7.0);
/// assert_eq!(assignment, vec![Some(1), Some(0)]);
/// ```
///
/// # Panics
///
/// Panics if the weight matrix is ragged or contains non-finite values.
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> (f64, Vec<Option<usize>>) {
    let rows = weights.len();
    if rows == 0 {
        return (0.0, Vec::new());
    }
    let cols = weights[0].len();
    for row in weights {
        assert_eq!(row.len(), cols, "weight matrix must be rectangular");
        assert!(row.iter().all(|w| w.is_finite()), "weights must be finite");
    }

    // Reduce to square minimization with explicit "unassigned" columns:
    // one dummy column per row at weight 0, then pad rows/columns to a
    // square matrix of size n = rows + cols so every row and column can be
    // matched. Minimize cost = -weight.
    let n = rows + cols;
    let big = 0.0; // dummy/padding weight (staying local is worth 0)
    let cost = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            -weights[i][j]
        } else {
            -big
        }
    };

    // Hungarian algorithm with potentials (1-indexed internals).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; rows];
    let mut total = 0.0;
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i <= rows && j <= cols {
            let w = weights[i - 1][j - 1];
            // Dummy columns carry weight 0; a real column only counts when
            // it beats staying unassigned.
            if w > 0.0 {
                assignment[i - 1] = Some(j - 1);
                total += w;
            }
        }
    }
    (total, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force reference: try every injective row→column map
    /// (including unassigned) and return the best total.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        fn recurse(weights: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == weights.len() {
                return 0.0;
            }
            // Option 1: leave this row unassigned.
            let mut best = recurse(weights, row + 1, used);
            for j in 0..weights[row].len() {
                if !used[j] && weights[row][j] > 0.0 {
                    used[j] = true;
                    let v = weights[row][j] + recurse(weights, row + 1, used);
                    used[j] = false;
                    best = best.max(v);
                }
            }
            best
        }
        let cols = weights.first().map(|r| r.len()).unwrap_or(0);
        recurse(weights, 0, &mut vec![false; cols])
    }

    #[test]
    fn hand_checked_instances() {
        // Simple 2x2: diagonal is optimal.
        let w = vec![vec![5.0, 1.0], vec![1.0, 5.0]];
        let (total, a) = max_weight_assignment(&w);
        assert_eq!(total, 10.0);
        assert_eq!(a, vec![Some(0), Some(1)]);

        // Conflict on the best column: one row must settle or stay out.
        let w = vec![vec![5.0, 2.0], vec![5.0, 0.0]];
        let (total, _) = max_weight_assignment(&w);
        assert_eq!(total, 7.0);

        // All-negative weights: everyone stays unassigned.
        let w = vec![vec![-1.0, -2.0], vec![-3.0, -4.0]];
        let (total, a) = max_weight_assignment(&w);
        assert_eq!(total, 0.0);
        assert_eq!(a, vec![None, None]);
    }

    #[test]
    fn rectangular_shapes() {
        // More rows than columns.
        let w = vec![vec![3.0], vec![2.0], vec![1.0]];
        let (total, a) = max_weight_assignment(&w);
        assert_eq!(total, 3.0);
        assert_eq!(a, vec![Some(0), None, None]);

        // More columns than rows.
        let w = vec![vec![1.0, 9.0, 4.0]];
        let (total, a) = max_weight_assignment(&w);
        assert_eq!(total, 9.0);
        assert_eq!(a, vec![Some(1)]);

        // Degenerate shapes.
        assert_eq!(max_weight_assignment(&[]).0, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..60 {
            let rows = rng.gen_range(1..=6);
            let cols = rng.gen_range(1..=6);
            let w: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(-5.0..10.0)).collect())
                .collect();
            let (total, assignment) = max_weight_assignment(&w);
            let expected = brute_force(&w);
            assert!(
                (total - expected).abs() < 1e-9,
                "trial {trial}: hungarian {total} vs brute force {expected} on {w:?}"
            );
            // The returned assignment must be injective and consistent
            // with the reported value.
            let mut seen = std::collections::HashSet::new();
            let mut check = 0.0;
            for (i, slot) in assignment.iter().enumerate() {
                if let Some(j) = slot {
                    assert!(seen.insert(*j), "column {j} used twice");
                    check += w[i][*j];
                }
            }
            assert!((check - total).abs() < 1e-9);
        }
    }
}
