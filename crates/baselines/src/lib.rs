//! # mec-baselines
//!
//! The comparison schemes from the paper's evaluation (§V):
//!
//! * [`ExhaustiveSolver`] — enumerates every feasible offloading decision
//!   (the global optimum; only viable on small instances, exactly as in
//!   Fig. 3's confined network).
//! * [`HJtoraSolver`] — an hJTORA-style steepest-ascent heuristic after
//!   Tran & Pompili (TVT 2019), the paper's strongest baseline.
//! * [`GreedySolver`] — offloads every admissible task, strongest signal
//!   first.
//! * [`LocalSearchSolver`] — first-improvement hill climbing over the TTSA
//!   neighborhood.
//! * [`RandomSolver`] — best of `k` random feasible decisions (sanity
//!   floor, not in the paper's figures).
//! * [`AllLocalSolver`] — the do-nothing reference with utility 0.
//!
//! All of them implement [`mec_system::Solver`] and score candidates with
//! the same exact `J*(X)` objective as TSAJS, so utility comparisons are
//! apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path layout gates: range loops that should be iterator/chunk sweeps
// and oversized stack buffers are bugs here, not style.
#![deny(clippy::needless_range_loop)]
#![deny(clippy::large_stack_arrays)]

pub mod all_local;
pub mod exhaustive;
pub mod greedy;
pub mod hjtora;
pub mod hungarian;
pub mod local_search;
pub mod random;
pub mod upper_bound;

pub use all_local::AllLocalSolver;
pub use exhaustive::ExhaustiveSolver;
pub use greedy::GreedySolver;
pub use hjtora::HJtoraSolver;
pub use hungarian::max_weight_assignment;
pub use local_search::LocalSearchSolver;
pub use random::RandomSolver;
pub use upper_bound::{upper_bound, UpperBound};
