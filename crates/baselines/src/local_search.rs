//! First-improvement hill climbing (the *LocalSearch* baseline).

use mec_system::{Assignment, IncrementalObjective, Scenario, Solution, Solver, SolverStats};
use mec_types::Error;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
// LocalSearch deliberately reuses TSAJS's neighborhood kernel so the only
// experimental difference between the two schemes is the acceptance rule
// (greedy vs Metropolis-with-threshold-cooling).
use tsajs::NeighborhoodKernel;

/// The LocalSearch baseline (§V): *"continuously search for neighboring
/// states of the current state …, accept better neighboring states to
/// gradually improve the quality of the solution; stop when the algorithm
/// converges or reaches the maximum number of iterations."*
///
/// Uses the same move kernel as TSAJS but only ever accepts improvements,
/// so it converges quickly to the nearest local optimum.
#[derive(Debug, Clone)]
pub struct LocalSearchSolver {
    max_iterations: u64,
    patience: u64,
    rng: StdRng,
}

impl LocalSearchSolver {
    /// Default proposal budget.
    pub const DEFAULT_MAX_ITERATIONS: u64 = 20_000;
    /// Default convergence patience (consecutive non-improving proposals).
    pub const DEFAULT_PATIENCE: u64 = 1_500;

    /// Proposals between full re-synchronizations of the incremental
    /// objective state (bounds floating-point drift; see
    /// [`IncrementalObjective::resync`]).
    const RESYNC_INTERVAL: u64 = 4_096;

    /// Creates the solver with default limits and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            max_iterations: Self::DEFAULT_MAX_ITERATIONS,
            patience: Self::DEFAULT_PATIENCE,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the total proposal budget.
    pub fn with_max_iterations(mut self, max_iterations: u64) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Overrides the convergence patience.
    pub fn with_patience(mut self, patience: u64) -> Self {
        self.patience = patience;
        self
    }
}

impl Solver for LocalSearchSolver {
    fn name(&self) -> &str {
        "LocalSearch"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let start = Instant::now();
        let kernel = NeighborhoodKernel::new();

        // Delta-evaluation hot loop: propose a compact move and score it
        // speculatively against the maintained sums — rejected proposals
        // (the vast majority once the climb stalls) never mutate the
        // state, so they cost no journaling and no undo. Draw order and
        // trajectory match the historical apply/undo loop bit for bit.
        let mut inc = IncrementalObjective::new(scenario, Assignment::all_local(scenario))?;
        let mut current_obj = 0.0;
        let mut evals: u64 = 0;
        let mut stale: u64 = 0;
        let mut iterations: u64 = 0;

        while iterations < self.max_iterations && stale < self.patience {
            let (mv, _) = kernel.propose_move(scenario, inc.assignment(), &mut self.rng);
            let obj = inc.score(&mv);
            evals += 1;
            iterations += 1;
            if obj > current_obj {
                inc.apply(&mv);
                inc.commit();
                current_obj = obj;
                stale = 0;
            } else {
                stale += 1;
            }
            if iterations.is_multiple_of(Self::RESYNC_INTERVAL) {
                inc.resync();
                current_obj = inc.current();
            }
        }

        Ok(Solution {
            assignment: inc.into_assignment(),
            utility: current_obj,
            stats: SolverStats {
                objective_evaluations: evals,
                iterations,
                elapsed: start.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    fn scenario(users: usize, gain: f64) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(users, 2, 2, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn improves_over_all_local_on_good_channels() {
        let sc = scenario(4, 1e-10);
        let solution = LocalSearchSolver::with_seed(0).solve(&sc).unwrap();
        assert!(solution.utility > 0.0);
        solution.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn never_goes_below_the_starting_point() {
        let sc = scenario(3, 1e-17);
        let solution = LocalSearchSolver::with_seed(1).solve(&sc).unwrap();
        // Starting at all-local (0.0) and only accepting improvements, the
        // result can never be negative.
        assert!(solution.utility >= 0.0);
    }

    #[test]
    fn respects_the_iteration_budget() {
        let sc = scenario(4, 1e-10);
        let solution = LocalSearchSolver::with_seed(2)
            .with_max_iterations(100)
            .with_patience(1_000_000)
            .solve(&sc)
            .unwrap();
        assert_eq!(solution.stats.iterations, 100);
    }

    #[test]
    fn stops_early_when_stale() {
        let sc = scenario(2, 1e-10);
        let solution = LocalSearchSolver::with_seed(3)
            .with_patience(50)
            .solve(&sc)
            .unwrap();
        assert!(solution.stats.iterations < LocalSearchSolver::DEFAULT_MAX_ITERATIONS);
    }

    #[test]
    fn deterministic_under_seed() {
        let sc = scenario(5, 1e-10);
        let a = LocalSearchSolver::with_seed(7).solve(&sc).unwrap();
        let b = LocalSearchSolver::with_seed(7).solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
    }
}
