//! Best-of-k random feasible decisions.

use mec_system::{Assignment, Evaluator, Scenario, Solution, Solver, SolverStats};
use mec_types::{Error, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Samples `attempts` random feasible decisions and keeps the best (the
/// all-local decision is always included, so the result is never worse
/// than 0).
///
/// Not one of the paper's baselines — included as a sanity floor for
/// tests and benches: any serious solver must beat it.
#[derive(Debug, Clone)]
pub struct RandomSolver {
    attempts: u64,
    offload_probability: f64,
    rng: StdRng,
}

impl RandomSolver {
    /// Default number of random decisions sampled.
    pub const DEFAULT_ATTEMPTS: u64 = 100;

    /// Creates the solver with the default attempt budget.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            attempts: Self::DEFAULT_ATTEMPTS,
            offload_probability: 0.5,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the number of sampled decisions.
    pub fn with_attempts(mut self, attempts: u64) -> Self {
        self.attempts = attempts;
        self
    }

    /// Samples one random feasible decision.
    fn sample(&mut self, scenario: &Scenario) -> Assignment {
        let mut x = Assignment::all_local(scenario);
        for u in scenario.user_ids() {
            if self.rng.gen_bool(self.offload_probability) {
                let s = ServerId::new(self.rng.gen_range(0..scenario.num_servers()));
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(u, s, j).expect("slot reported free");
                }
            }
        }
        x
    }
}

impl Solver for RandomSolver {
    fn name(&self) -> &str {
        "Random"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let start = Instant::now();
        let evaluator = Evaluator::new(scenario);
        let mut best = Assignment::all_local(scenario);
        let mut best_obj = 0.0;
        for _ in 0..self.attempts {
            let x = self.sample(scenario);
            let obj = evaluator.objective(&x);
            if obj > best_obj {
                best = x;
                best_obj = obj;
            }
        }
        Ok(Solution {
            assignment: best,
            utility: best_obj,
            stats: SolverStats {
                objective_evaluations: self.attempts,
                iterations: self.attempts,
                elapsed: start.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    fn scenario(gain: f64) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); 4],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(4, 2, 2, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn never_negative() {
        let sc = scenario(1e-17);
        let solution = RandomSolver::with_seed(0).solve(&sc).unwrap();
        assert_eq!(solution.utility, 0.0);
        assert_eq!(solution.assignment.num_offloaded(), 0);
    }

    #[test]
    fn finds_something_positive_on_good_channels() {
        let sc = scenario(1e-10);
        let solution = RandomSolver::with_seed(1).solve(&sc).unwrap();
        assert!(solution.utility > 0.0);
        solution.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn attempts_are_counted() {
        let sc = scenario(1e-10);
        let solution = RandomSolver::with_seed(2)
            .with_attempts(17)
            .solve(&sc)
            .unwrap();
        assert_eq!(solution.stats.objective_evaluations, 17);
    }

    #[test]
    fn more_attempts_never_hurt() {
        let sc = scenario(1e-10);
        let few = RandomSolver::with_seed(3)
            .with_attempts(5)
            .solve(&sc)
            .unwrap();
        let many = RandomSolver::with_seed(3)
            .with_attempts(500)
            .solve(&sc)
            .unwrap();
        assert!(many.utility >= few.utility);
    }
}
