//! Interference-free upper bounds on the JTORA optimum.
//!
//! For any feasible decision `X` (Eq. 24):
//!
//! * the uplink cost only grows with interference: `γ_us ≤ SNR_us`
//!   implies `Γ_u(γ_us) ≥ Γ_u(SNR_us)`;
//! * the execution cost is superadditive: `(Σ_u √η_u)²/f_s ≥ Σ_u η_u/f_s`,
//!   so each offloaded user pays at least its *alone-on-the-server* cost.
//!
//! Therefore `J*(X) ≤ Σ_{u offloaded} value(u, slot(u))` where
//! `value(u, s, j) = λ_u(β_t+β_e) − download_cost
//!                  − (φ_u + ψ_u p_u)/log₂(1+SNR_us^j) − η_u/f_s`,
//! and the slots are pairwise distinct (constraint 12d). Maximizing the
//! right-hand side over injective user→slot assignments — a max-weight
//! bipartite matching, solved exactly by [`max_weight_assignment`] — gives
//! a certified upper bound on the optimum that is computable at scales
//! where exhaustive search is hopeless. Benchmarks report the heuristics'
//! *gap to this bound*.

use crate::hungarian::max_weight_assignment;
use mec_system::Scenario;
use mec_types::{ServerId, SubchannelId};

/// A certified upper bound on the JTORA optimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpperBound {
    /// The matching-based bound (tighter: distinct slots enforced).
    pub assignment_bound: f64,
    /// The loose per-user bound (every user takes its best slot,
    /// conflicts ignored) — cheaper, and useful as a sanity cross-check
    /// since it always dominates the matching bound.
    pub independent_bound: f64,
}

/// The interference-free value of user `u` on slot `(s, j)` (can be
/// negative; the bound clamps at "stay local" = 0 via the matching).
fn slot_value(scenario: &Scenario, u: mec_types::UserId, s: ServerId, j: SubchannelId) -> f64 {
    let c = scenario.coefficients(u);
    let p = scenario.tx_powers_watts()[u.index()];
    let snr = p * scenario.gains().gain(u, s, j) / scenario.noise().as_watts();
    let uplink = (c.phi + c.psi * p) / (1.0 + snr).log2();
    let exec_floor = c.eta / scenario.server(s).capacity().as_hz();
    c.gain_constant - c.download_cost - uplink - exec_floor
}

impl UpperBound {
    /// The fraction of this bound that `utility` achieves (clamped to 0
    /// when the bound is 0, i.e. offloading can never pay on this
    /// scenario). A solver reporting `quality(…) = 0.9` is certifiably
    /// within 10 % of the true optimum — no exhaustive search needed.
    pub fn quality(&self, utility: f64) -> f64 {
        if self.assignment_bound <= 0.0 {
            return if utility >= 0.0 { 1.0 } else { 0.0 };
        }
        (utility / self.assignment_bound).clamp(0.0, 1.0)
    }
}

/// Computes both interference-free upper bounds for a scenario.
///
/// The matching bound is exact for the relaxed (interference-free,
/// exclusive-slot) problem, hence `optimum ≤ assignment_bound ≤
/// independent_bound`.
pub fn upper_bound(scenario: &Scenario) -> UpperBound {
    let num_slots = scenario.num_servers() * scenario.num_subchannels();
    let mut weights = Vec::with_capacity(scenario.num_users());
    let mut independent = 0.0;
    for u in scenario.user_ids() {
        let mut row = Vec::with_capacity(num_slots);
        let mut best = 0.0f64;
        for s in scenario.server_ids() {
            for j in 0..scenario.num_subchannels() {
                let v = slot_value(scenario, u, s, SubchannelId::new(j));
                best = best.max(v);
                row.push(v);
            }
        }
        independent += best;
        weights.push(row);
    }
    let (assignment_bound, _) = max_weight_assignment(&weights);
    UpperBound {
        assignment_bound,
        independent_bound: independent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExhaustiveSolver;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Solver, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-12.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn bound_dominates_the_exhaustive_optimum() {
        for seed in 0..8 {
            let sc = random_scenario(seed, 5, 2, 2);
            let optimum = ExhaustiveSolver::new().solve(&sc).unwrap().utility;
            let bound = upper_bound(&sc);
            assert!(
                bound.assignment_bound >= optimum - 1e-9,
                "seed {seed}: bound {} below optimum {optimum}",
                bound.assignment_bound
            );
            assert!(bound.independent_bound >= bound.assignment_bound - 1e-9);
        }
    }

    #[test]
    fn bound_is_tight_without_interference_pressure() {
        // A single user: no interference, no server sharing — the bound
        // must equal the optimum exactly.
        let sc = random_scenario(3, 1, 2, 2);
        let optimum = ExhaustiveSolver::new().solve(&sc).unwrap().utility;
        let bound = upper_bound(&sc);
        assert!((bound.assignment_bound - optimum).abs() < 1e-9);
        assert!((bound.independent_bound - optimum).abs() < 1e-9);
    }

    #[test]
    fn slot_contention_separates_the_two_bounds() {
        // Many users, a single slot: independently everyone takes it, but
        // the matching admits only the single best user.
        let sc = random_scenario(5, 4, 1, 1);
        let bound = upper_bound(&sc);
        assert!(
            bound.independent_bound > bound.assignment_bound + 1e-9,
            "independent {} vs matching {}",
            bound.independent_bound,
            bound.assignment_bound
        );
    }

    #[test]
    fn quality_certificate_behaves() {
        let sc = random_scenario(1, 5, 2, 2);
        let bound = upper_bound(&sc);
        let optimum = ExhaustiveSolver::new().solve(&sc).unwrap().utility;
        let q = bound.quality(optimum);
        assert!((0.0..=1.0).contains(&q));
        assert!(q > 0.5, "the optimum should be within 2x of the bound here");
        // Degenerate bound: doing nothing is 'perfect'.
        let zero = UpperBound {
            assignment_bound: 0.0,
            independent_bound: 0.0,
        };
        assert_eq!(zero.quality(0.0), 1.0);
        assert_eq!(zero.quality(-1.0), 0.0);
    }

    #[test]
    fn bound_is_nonnegative() {
        // Terrible channels: all slot values are negative, so both bounds
        // collapse to 0 (everyone local).
        let gains = ChannelGains::uniform(3, 2, 2, 1e-17).unwrap();
        let sc = Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); 3],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap();
        let bound = upper_bound(&sc);
        assert_eq!(bound.assignment_bound, 0.0);
        assert_eq!(bound.independent_bound, 0.0);
    }
}
