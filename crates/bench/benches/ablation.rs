//! Runtime ablation: threshold-triggered vs plain geometric cooling.
//! (The quality side of this ablation is the `ablation` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_system::Solver;
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use tsajs::{Cooling, TsajsSolver, TtsaConfig};

fn bench_cooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cooling");
    group.sample_size(10);
    let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(30));
    let scenario = generator.generate(1).expect("scenario");

    let schedules: Vec<(&str, Cooling)> = vec![
        (
            "threshold_triggered",
            Cooling::ThresholdTriggered {
                alpha_slow: 0.97,
                alpha_fast: 0.90,
                max_count_factor: 1.75,
            },
        ),
        ("geometric_097", Cooling::Geometric { alpha: 0.97 }),
    ];
    for (name, cooling) in schedules {
        group.bench_with_input(BenchmarkId::new(name, 30), &scenario, |b, sc| {
            b.iter(|| {
                let mut solver = TsajsSolver::new(
                    TtsaConfig::paper_default()
                        .with_cooling(cooling)
                        .with_min_temperature(1e-3)
                        .with_seed(5),
                );
                solver.solve(sc).expect("solve")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cooling);
criterion_main!(benches);
