//! Channel-gain tensor generation (layout + placement + shadowing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_radio::ChannelModel;
use mec_topology::{place_users_uniform, NetworkLayout};
use mec_types::constants;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel");
    let layout = NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE).expect("layout");
    for users in [30usize, 90, 300] {
        group.bench_with_input(BenchmarkId::new("generate", users), &users, |b, &users| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let positions = place_users_uniform(&layout, users, &mut rng);
                ChannelModel::paper_default().generate(&layout, &positions, 3, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
