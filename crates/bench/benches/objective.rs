//! The objective-evaluation hot path: per-proposal cost and data-layout
//! ablation at the paper's largest population (U = 90).
//!
//! Not a criterion bench: the acceptance criterion is a per-proposal
//! speedup ratio of the speculative scoring path over the apply/undo
//! incremental baseline at equal mean quality over fixed seeds, so this
//! is a plain harness that measures both paths over seeds 11/23/47,
//! prints two tables (per-proposal metrics and the SoA layout ablation)
//! and writes the machine-readable verdict to `BENCH_objective.json`
//! (override the path with `TSAJS_BENCH_OUT`).
//!
//! Modes:
//! - `cargo bench --bench objective` — full run, U = 90.
//! - `TSAJS_BENCH_QUICK=1 cargo bench --bench objective` — CI smoke
//!   run, U = 30 with shortened measurement loops.
//! - `cargo test` passes `--test`, which exits immediately so the
//!   tier-1 suite never pays for a benchmark.

use mec_radio::ChannelGains;
use mec_system::pr1_baseline::Pr1IncrementalObjective;
use mec_system::simd::{add_assign_rows, padded_len};
use mec_system::{
    Assignment, CoefficientBlocks, Evaluator, IncrementalObjective, MoveDesc, Scenario, Solver,
};
use mec_types::{ServerId, SubchannelId, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use tsajs::{NeighborhoodKernel, TsajsSolver, TtsaConfig};

const SEEDS: [u64; 3] = [11, 23, 47];

/// The PR-1 `incremental_delta` per-proposal figure at U = 90 recorded
/// in EXPERIMENTS.md (criterion harness, propose included, this
/// machine) — the denominator of the headline speedup. The same-day
/// cross-check lives in the same-harness `incremental_delta` column.
const PR1_RECORDED_NS: f64 = 276.0;

/// One timed pass of `iters` iterations, in nanoseconds per iteration.
///
/// [`measure`] interleaves one pass of *every* metric per repetition
/// and keeps each metric's fastest pass: the container's clock-phase
/// swings last minutes, so timing each metric's repetitions
/// back-to-back would let a phase shift mid-run skew *ratios* between
/// metrics — interleaved, every metric samples every phase and the
/// minima are comparable.
fn time_ns<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Populates roughly half the users, round-robin over servers.
fn half_populated(scenario: &Scenario) -> Assignment {
    let mut x = Assignment::all_local(scenario);
    for u in 0..scenario.num_users() {
        if u % 2 == 0 {
            let s = ServerId::new(u % scenario.num_servers());
            if let Some(j) = x.free_subchannel(s) {
                x.assign(UserId::new(u), s, j).expect("free slot");
            }
        }
    }
    x
}

#[derive(Default, Clone)]
struct Metrics {
    closed_form: f64,
    full_evaluate: f64,
    propose_only: f64,
    cloning_proposal: f64,
    pr1_incremental_delta: f64,
    incremental_delta: f64,
    score_path: f64,
    batched: [f64; 3], // K = 1, 4, 8
    aos_scalar: f64,
    soa_scalar: f64,
    soa_chunked: f64,
}

const BATCH_WIDTHS: [usize; 3] = [1, 4, 8];

fn measure(scenario: &Scenario, reps: u32, iters: u64) -> Metrics {
    let inf = f64::INFINITY;
    let mut m = Metrics {
        closed_form: inf,
        full_evaluate: inf,
        propose_only: inf,
        cloning_proposal: inf,
        pr1_incremental_delta: inf,
        incremental_delta: inf,
        score_path: inf,
        batched: [inf; 3],
        aos_scalar: inf,
        soa_scalar: inf,
        soa_chunked: inf,
    };
    let x = half_populated(scenario);
    let evaluator = Evaluator::new(scenario);
    let kernel = NeighborhoodKernel::new();

    // Persistent per-metric state, set up once so every repetition
    // continues the same walk (and the incremental states stay warm).
    let mut rng_propose = StdRng::seed_from_u64(7);
    let mut scratch = mec_system::EvalScratch::default();
    let mut rng_clone = StdRng::seed_from_u64(7);
    let mut pr1_inc = Pr1IncrementalObjective::new(scenario, x.clone()).expect("feasible");
    let mut rng_pr1 = StdRng::seed_from_u64(7);
    let mut inc_delta = IncrementalObjective::new(scenario, x.clone()).expect("feasible");
    let mut rng_delta = StdRng::seed_from_u64(7);
    let mut inc_score = IncrementalObjective::new(scenario, x.clone()).expect("feasible");
    let mut rng_score = StdRng::seed_from_u64(7);
    struct BatchState<'b> {
        inc: IncrementalObjective<'b>,
        current: f64,
        batch: Vec<MoveDesc>,
        scores: Vec<f64>,
        rng: StdRng,
    }
    let mut batch_states: Vec<BatchState<'_>> = BATCH_WIDTHS
        .iter()
        .map(|&k| {
            let inc = IncrementalObjective::new(scenario, x.clone()).expect("feasible");
            let current = inc.current();
            BatchState {
                inc,
                current,
                batch: Vec::with_capacity(k),
                scores: Vec::with_capacity(k),
                rng: StdRng::seed_from_u64(7),
            }
        })
        .collect();

    // Layout-ablation state: the Γ bookkeeping row-op (add one user's
    // weighted-gain row for subchannel j into the per-server totals),
    //   aos_scalar  — gather `γ_u · g(u,s,j)` from the AoS gain table,
    //   soa_scalar  — plain indexed loop over a precomputed flat row,
    //   soa_chunked — the padded `chunks_exact(4)` kernel.
    let users = scenario.num_users();
    let servers = scenario.num_servers();
    let subs = scenario.num_subchannels();
    let stride = padded_len(servers);
    let gains: &ChannelGains = scenario.gains();
    let blocks = CoefficientBlocks::pack(scenario.user_ids().map(|u| {
        (
            scenario.coefficients(u),
            scenario.tx_powers_watts()[u.index()],
        )
    }));
    // Precomputed SoA rows: wgain[(u·N + j)·stride + s] = γ_u·g(u,s,j).
    let mut wgain = vec![0.0f64; users * subs * stride];
    for u in 0..users {
        for j in 0..subs {
            for s in 0..servers {
                wgain[(u * subs + j) * stride + s] = blocks.gamma_num[u]
                    * gains.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(j));
            }
        }
    }
    let mut totals = vec![0.0f64; subs * stride];
    let rows = (users * subs) as f64;

    for _ in 0..reps {
        m.closed_form = m.closed_form.min(time_ns(iters.min(20_000), || {
            black_box(evaluator.objective(black_box(&x)));
        }));
        m.full_evaluate = m.full_evaluate.min(time_ns(iters.min(20_000), || {
            black_box(evaluator.evaluate(black_box(&x)).expect("evaluate"));
        }));

        // Move generation alone (no evaluation): the cost shared by
        // every proposal path below, so their evaluation-only costs can
        // be separated out.
        m.propose_only = m.propose_only.min(time_ns(iters, || {
            black_box(kernel.propose_move(scenario, &x, &mut rng_propose));
        }));

        // The pre-incremental path (PR-0's baseline): clone the
        // decision, mutate the clone, re-evaluate J*(X) from scratch.
        m.cloning_proposal = m.cloning_proposal.min(time_ns(iters.min(20_000), || {
            let (candidate, _) = kernel.propose(scenario, &x, &mut rng_clone);
            black_box(evaluator.objective_with(&candidate, &mut scratch));
        }));

        // The PR-1 incremental baseline, measured live: the AoS/scalar
        // evaluator exactly as it shipped in PR 1 is vendored into
        // `mec_system::pr1_baseline` so this runs in the same process
        // on the same machine state as the new paths — a same-run
        // denominator immune to the container's clock-phase swings that
        // a recorded number from another day is hostage to.
        m.pr1_incremental_delta = m.pr1_incremental_delta.min(time_ns(iters, || {
            let (mv, _) = kernel.propose_move(scenario, pr1_inc.assignment(), &mut rng_pr1);
            pr1_inc.apply(&mv);
            black_box(pr1_inc.current());
            pr1_inc.undo();
        }));

        // The same loop shape on this tree's evaluator: propose a
        // compact move, apply it to the maintained sums, read the
        // objective, roll it back. Every rejected proposal pays the
        // mutation, the journal and the undo.
        m.incremental_delta = m.incremental_delta.min(time_ns(iters, || {
            let (mv, _) = kernel.propose_move(scenario, inc_delta.assignment(), &mut rng_delta);
            inc_delta.apply(&mv);
            black_box(inc_delta.current());
            inc_delta.undo();
        }));

        // This PR's speculative path: propose, then *score* the move —
        // the same arithmetic as apply, replayed against borrowed
        // state, with no mutation, no journal and no undo.
        m.score_path = m.score_path.min(time_ns(iters, || {
            let (mv, _) = kernel.propose_move(scenario, inc_score.assignment(), &mut rng_score);
            black_box(inc_score.score(&mv));
        }));

        // The full batched draw/score/select step at K ∈ {1, 4, 8},
        // normalized per proposal. Accepted winners mutate the walk,
        // like the real annealing loop; the Metropolis factor is fixed
        // so the accept rate stays representative rather than
        // temperature-swept.
        for (slot, &k) in BATCH_WIDTHS.iter().enumerate() {
            let st = &mut batch_states[slot];
            let step_ns = time_ns(iters / k as u64, || {
                kernel.propose_batch(scenario, st.inc.assignment(), k, &mut st.batch, &mut st.rng);
                st.scores.clear();
                for mv in st.batch.iter() {
                    st.scores.push(st.inc.score(mv));
                }
                for (mv, &candidate) in st.batch.iter().zip(st.scores.iter()) {
                    let delta = candidate - st.current;
                    if delta > 0.0 || (delta * 2.0).exp() > st.rng.gen::<f64>() {
                        st.inc.apply(mv);
                        st.inc.commit();
                        st.current = candidate;
                        break;
                    }
                }
            });
            m.batched[slot] = m.batched[slot].min(step_ns / k as f64);
        }

        totals.fill(0.0);
        m.aos_scalar = m.aos_scalar.min(
            time_ns(iters.min(4_000), || {
                for u in 0..users {
                    let gamma = blocks.gamma_num[u];
                    let uid = UserId::new(u);
                    for j in 0..subs {
                        let jid = SubchannelId::new(j);
                        let row = &mut totals[j * stride..j * stride + servers];
                        for (s, t) in row.iter_mut().enumerate() {
                            *t += gamma * gains.gain(uid, ServerId::new(s), jid);
                        }
                    }
                }
                black_box(&mut totals);
            }) / rows,
        );

        totals.fill(0.0);
        m.soa_scalar = m.soa_scalar.min(
            time_ns(iters.min(4_000), || {
                for u in 0..users {
                    for j in 0..subs {
                        let src =
                            &wgain[(u * subs + j) * stride..(u * subs + j) * stride + servers];
                        let dst = &mut totals[j * stride..j * stride + servers];
                        for (t, w) in dst.iter_mut().zip(src) {
                            *t += w;
                        }
                    }
                }
                black_box(&mut totals);
            }) / rows,
        );

        totals.fill(0.0);
        m.soa_chunked = m.soa_chunked.min(
            time_ns(iters.min(4_000), || {
                for u in 0..users {
                    for j in 0..subs {
                        let base = (u * subs + j) * stride;
                        add_assign_rows(
                            &mut totals[j * stride..(j + 1) * stride],
                            &wgain[base..base + stride],
                        );
                    }
                }
                black_box(&mut totals);
            }) / rows,
        );
    }

    m
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    // `cargo test` executes bench targets with `--test`; there is
    // nothing to smoke-test here beyond compilation.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let quick = std::env::var("TSAJS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let users = if quick { 30 } else { 90 };
    let reps = if quick { 3 } else { 7 };
    let iters: u64 = if quick { 20_000 } else { 100_000 };
    let base = if quick {
        TtsaConfig::paper_default().with_min_temperature(1e-1)
    } else {
        TtsaConfig::paper_default()
    };

    let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(users));
    println!("objective bench: U={users}, seeds {SEEDS:?}, quick={quick}");

    let mut all: Vec<Metrics> = Vec::new();
    let mut utilities: Vec<[f64; 3]> = Vec::new(); // per seed, per K
    for seed in SEEDS {
        let scenario = generator.generate(seed).expect("scenario");
        all.push(measure(&scenario, reps, iters));
        // Solution quality across batch widths: K=1 replays the PR-1
        // trajectory bit for bit (pinned by the determinism tests), so
        // its J IS the baseline J; wider batches walk different but
        // seeded trajectories.
        let mut js = [0.0f64; 3];
        for (slot, &k) in BATCH_WIDTHS.iter().enumerate() {
            let mut solver = TsajsSolver::new(base.with_seed(seed).with_batch_width(k));
            js[slot] = solver.solve(&scenario).expect("solve").utility;
        }
        utilities.push(js);
    }

    let agg = |f: fn(&Metrics) -> f64| mean(all.iter().map(f));
    let closed_form = agg(|m| m.closed_form);
    let full_evaluate = agg(|m| m.full_evaluate);
    let propose_only = agg(|m| m.propose_only);
    let cloning = agg(|m| m.cloning_proposal);
    let pr1_incremental = agg(|m| m.pr1_incremental_delta);
    let incremental = agg(|m| m.incremental_delta);
    let score = agg(|m| m.score_path);
    let batched: Vec<f64> = (0..3)
        .map(|i| mean(all.iter().map(|m| m.batched[i])))
        .collect();
    let aos = agg(|m| m.aos_scalar);
    let soa = agg(|m| m.soa_scalar);
    let chunked = agg(|m| m.soa_chunked);

    println!("\nper-proposal metrics (mean of per-seed fastest, ns):");
    println!("{:<22} {:>12}", "path", "ns/proposal");
    for (name, ns) in [
        ("closed_form", closed_form),
        ("full_evaluate", full_evaluate),
        ("propose_only", propose_only),
        ("cloning_proposal", cloning),
        ("pr1_incremental_delta", pr1_incremental),
        ("incremental_delta", incremental),
        ("score_path", score),
        ("batched_k1", batched[0]),
        ("batched_k4", batched[1]),
        ("batched_k8", batched[2]),
    ] {
        println!("{name:<22} {ns:>12.1}");
    }

    println!("\nlayout ablation (Γ row-op, ns per user-row of S servers):");
    println!("{:<22} {:>12}", "layout", "ns/row");
    for (name, ns) in [
        ("aos_scalar", aos),
        ("soa_scalar", soa),
        ("soa_chunked", chunked),
    ] {
        println!("{name:<22} {ns:>12.2}");
    }

    let speedup_vs_recorded = PR1_RECORDED_NS / score;
    let speedup_same_run = pr1_incremental / score;
    let speedup = incremental / score;
    let speedup_vs_clone = cloning / score;
    let mean_j: Vec<f64> = (0..3)
        .map(|i| mean(utilities.iter().map(|j| j[i])))
        .collect();
    println!(
        "\nspeculative scoring vs the PR-1 incremental baseline: \
         {speedup_vs_recorded:.2}x per proposal vs the {PR1_RECORDED_NS:.0} ns recorded in \
         EXPERIMENTS.md, {speedup_same_run:.2}x vs the vendored PR-1 evaluator measured in \
         this run ({speedup:.2}x vs this tree's apply/undo, {speedup_vs_clone:.0}x vs the \
         cloning path)"
    );
    println!(
        "mean J at K=1/4/8: {:.6} / {:.6} / {:.6} (K=1 is trajectory-identical \
         to the PR-1 baseline, so its J is the baseline J)",
        mean_j[0], mean_j[1], mean_j[2]
    );

    let per_seed: Vec<String> = SEEDS
        .iter()
        .zip(utilities.iter())
        .map(|(seed, js)| {
            format!(
                "{{\"seed\":{},\"utility_k1\":{},\"utility_k4\":{},\"utility_k8\":{}}}",
                seed, js[0], js[1], js[2]
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"users\": {users},\n  \"quick\": {quick},\n  \"seeds\": [11, 23, 47],\n  \
         \"per_proposal_ns\": {{\n    \"closed_form\": {closed_form},\n    \
         \"full_evaluate\": {full_evaluate},\n    \"propose_only\": {propose_only},\n    \
         \"cloning_proposal\": {cloning},\n    \
         \"pr1_incremental_delta\": {pr1_incremental},\n    \
         \"incremental_delta\": {incremental},\n    \
         \"score_path\": {score},\n    \"batched_k1\": {},\n    \"batched_k4\": {},\n    \
         \"batched_k8\": {}\n  }},\n  \
         \"layout_ns_per_row\": {{\n    \"aos_scalar\": {aos},\n    \
         \"soa_scalar\": {soa},\n    \"soa_chunked\": {chunked}\n  }},\n  \
         \"pr1_recorded_baseline_ns\": {PR1_RECORDED_NS},\n  \
         \"speedup_score_vs_pr1_recorded\": {speedup_vs_recorded},\n  \
         \"speedup_score_vs_pr1_same_run\": {speedup_same_run},\n  \
         \"speedup_score_vs_applyundo\": {speedup},\n  \
         \"speedup_score_vs_cloning\": {speedup_vs_clone},\n  \
         \"mean_utility_k1\": {},\n  \"mean_utility_k4\": {},\n  \"mean_utility_k8\": {},\n  \
         \"baseline_note\": \"pr1_recorded_baseline_ns is the U=90 incremental_delta figure \
         recorded by PR 1 in EXPERIMENTS.md on this machine; part of that ratio is \
         methodology (criterion mean there vs keep-fastest here). \
         pr1_incremental_delta is the PR-1 evaluator itself (vendored, bit-exact against \
         this tree, same loop shape) measured live in this run — the same-machine-state \
         denominator. K=1 replays the PR-1 apply/undo trajectory bit-exactly (pinned by \
         determinism tests), so mean_utility_k1 equals the baseline mean J\",\n  \
         \"solves\": [{}]\n}}\n",
        batched[0],
        batched[1],
        batched[2],
        mean_j[0],
        mean_j[1],
        mean_j[2],
        per_seed.join(",")
    );
    let out =
        std::env::var("TSAJS_BENCH_OUT").unwrap_or_else(|_| "BENCH_objective.json".to_string());
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
