//! The objective-evaluation hot path: exact J*(X) at various populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_system::{Assignment, Evaluator};
use mec_types::{ServerId, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective");
    for users in [10usize, 50, 100] {
        let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(users));
        let scenario = generator.generate(1).expect("scenario");
        // Populate roughly half the users.
        let mut x = Assignment::all_local(&scenario);
        for u in 0..users {
            if u % 2 == 0 {
                let s = ServerId::new(u % scenario.num_servers());
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(UserId::new(u), s, j).expect("free slot");
                }
            }
        }
        let evaluator = Evaluator::new(&scenario);
        group.bench_with_input(BenchmarkId::new("closed_form", users), &x, |b, x| {
            b.iter(|| evaluator.objective(x))
        });
        group.bench_with_input(BenchmarkId::new("full_evaluate", users), &x, |b, x| {
            b.iter(|| evaluator.evaluate(x).expect("evaluate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objective);
criterion_main!(benches);
