//! The objective-evaluation hot path: exact J*(X) at various populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_system::{Assignment, Evaluator, IncrementalObjective};
use mec_types::{ServerId, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsajs::NeighborhoodKernel;

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective");
    for users in [10usize, 50, 90, 100] {
        let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(users));
        let scenario = generator.generate(1).expect("scenario");
        // Populate roughly half the users.
        let mut x = Assignment::all_local(&scenario);
        for u in 0..users {
            if u % 2 == 0 {
                let s = ServerId::new(u % scenario.num_servers());
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(UserId::new(u), s, j).expect("free slot");
                }
            }
        }
        let evaluator = Evaluator::new(&scenario);
        group.bench_with_input(BenchmarkId::new("closed_form", users), &x, |b, x| {
            b.iter(|| evaluator.objective(x))
        });
        group.bench_with_input(BenchmarkId::new("full_evaluate", users), &x, |b, x| {
            b.iter(|| evaluator.evaluate(x).expect("evaluate"))
        });
        // Move generation alone (no evaluation): the cost shared by both
        // proposal paths below, so their evaluation-only costs can be
        // separated out.
        group.bench_with_input(BenchmarkId::new("propose_only", users), &x, |b, x| {
            let kernel = NeighborhoodKernel::new();
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| kernel.propose_move(&scenario, x, &mut rng))
        });
        // One full TTSA-style proposal on the historical path: clone the
        // current decision, mutate the clone, and re-evaluate J*(X) from
        // scratch. This is what the annealing inner loop paid per proposal
        // before delta evaluation.
        let kernel = NeighborhoodKernel::new();
        group.bench_with_input(BenchmarkId::new("cloning_proposal", users), &x, |b, x| {
            let mut scratch = mec_system::EvalScratch::default();
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let (candidate, _) = kernel.propose(&scenario, x, &mut rng);
                evaluator.objective_with(&candidate, &mut scratch)
            })
        });
        // One full TTSA-style proposal on the delta-evaluation path:
        // propose a compact move, apply it to the maintained sums, read the
        // objective, and roll it back bit-exactly. This is the per-proposal
        // cost the annealing hot loop actually pays, to be compared against
        // `cloning_proposal` (the historical clone + re-evaluation cost).
        group.bench_with_input(BenchmarkId::new("incremental_delta", users), &x, |b, x| {
            let mut inc = IncrementalObjective::new(&scenario, x.clone()).expect("feasible");
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let (mv, _) = kernel.propose_move(&scenario, inc.assignment(), &mut rng);
                inc.apply(&mv);
                let obj = inc.current();
                inc.undo();
                obj
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objective);
criterion_main!(benches);
