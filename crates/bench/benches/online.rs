//! Online re-solve cost per epoch: cold full anneal vs. warm-started
//! refresh from the patched previous decision, at U = 90 under 10%
//! population churn (9 of 90 users replaced between epochs).
//!
//! Mirrors `mec_online::OnlineEngine`'s epoch pipeline with the raw
//! primitives so the two arms differ only in the re-solve strategy. The
//! achieved utilities of both arms are printed once so the speed/quality
//! trade-off can be read off the same run (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use mec_mobility::RandomWaypoint;
use mec_system::Evaluator;
use mec_types::{Seconds, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsajs::{anneal, anneal_from, NeighborhoodKernel, ResolveMode, TtsaConfig};

const USERS: usize = 90;
const CHURNED: usize = 9; // 10% of the population replaced per epoch
const SEED: u64 = 7;

fn bench_online_resolve(c: &mut Criterion) {
    let params = ExperimentParams::paper_default().with_users(USERS);
    let generator = ScenarioGenerator::new(params);
    let layout = generator.layout().expect("layout");
    let speed_range = (0.5, 2.0);
    let mut motion_rng = StdRng::seed_from_u64(SEED);
    let mut motion = RandomWaypoint::new(&layout, USERS, speed_range, &mut motion_rng);

    // Epoch k: solve the population cold — this is the decision the warm
    // arm patches forward.
    let prev_scenario = generator
        .generate_at(motion.positions(), SEED)
        .expect("epoch-k scenario");
    let base = TtsaConfig::paper_default();
    let kernel = NeighborhoodKernel::new();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5851_F42D_4C95_7F2D);
    let prev = anneal(&prev_scenario, &base, &kernel, &mut rng);

    // Epoch k+1: survivors move 10 s of pedestrian motion; 10% of the
    // population is replaced (departures freeing slots, fresh arrivals).
    motion.step(&layout, Seconds::new(10.0), &mut motion_rng);
    let mut old_of_new: Vec<Option<UserId>> = (0..USERS).map(|u| Some(UserId::new(u))).collect();
    let mut positions = motion.positions().to_vec();
    for k in 0..CHURNED {
        // Spread departures across the population, replace with arrivals
        // at fresh uniform positions.
        let victim = k * (USERS / CHURNED);
        old_of_new[victim] = None;
        let fresh = motion.add_user(&layout, speed_range, &mut motion_rng);
        positions[victim] = motion.positions()[fresh];
        motion.remove_user(fresh);
    }
    let next_scenario = generator
        .generate_at(
            &positions,
            SEED.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
        .expect("epoch-k+1 scenario");
    let patched = prev
        .assignment
        .patched(&old_of_new)
        .expect("patch survivors");
    let refresh = ResolveMode::warm(3_000).refresh_config(&base);

    // Report the utility gap once, outside the timed loops.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5851_F42D_4C95_7F2D);
    let cold_outcome = anneal(&next_scenario, &base, &kernel, &mut rng);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5851_F42D_4C95_7F2D);
    let warm_outcome = anneal_from(&next_scenario, &refresh, &kernel, &mut rng, patched.clone());
    let evaluator = Evaluator::new(&next_scenario);
    eprintln!(
        "online re-solve @ U={USERS}, {CHURNED} churned: cold J = {:.6} ({} proposals), \
         warm J = {:.6} ({} proposals), gap = {:.3}%",
        cold_outcome.objective,
        cold_outcome.proposals,
        warm_outcome.objective,
        warm_outcome.proposals,
        100.0 * (cold_outcome.objective - warm_outcome.objective)
            / cold_outcome.objective.max(f64::MIN_POSITIVE),
    );
    assert!(
        (evaluator.objective(&warm_outcome.assignment) - warm_outcome.objective).abs() <= 1e-9,
        "warm outcome must be self-consistent"
    );

    let mut group = c.benchmark_group("online_resolve");
    group.sample_size(10);
    group.bench_function("cold_u90_churn10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(SEED ^ 0x5851_F42D_4C95_7F2D);
            anneal(&next_scenario, &base, &kernel, &mut rng)
        })
    });
    group.bench_function("warm_u90_churn10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(SEED ^ 0x5851_F42D_4C95_7F2D);
            anneal_from(&next_scenario, &refresh, &kernel, &mut rng, patched.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_online_resolve);
criterion_main!(benches);
