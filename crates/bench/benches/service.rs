//! Service capacity bench: the closed-loop loadtest as a harness.
//!
//! Not a criterion bench: the verdict is the maximum sustainable arrival
//! rate at a p99 decision-latency SLO, measured by `mec-service`'s
//! binary-search loadtest against the full threaded runtime (micro-batch
//! ingestion, lock-free snapshot reads, degradation tiers). The verdict
//! is machine-dependent by design — it measures *this* host — so there is
//! no pass/fail threshold, just the machine-readable report
//! `BENCH_service.json` (override the path with `TSAJS_BENCH_OUT`).
//!
//! Modes:
//! - `cargo bench --bench service` — production-shaped service config,
//!   5 s probes.
//! - `TSAJS_BENCH_QUICK=1 cargo bench --bench service` — CI smoke run,
//!   sub-second probes on the quick service preset.
//! - `cargo test` passes `--test`, which exits immediately so the
//!   tier-1 suite never pays for a benchmark.

use mec_service::{run_loadtest, LoadtestConfig, ServiceConfig};
use mec_workloads::ExperimentParams;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let quick = std::env::var("TSAJS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let seed = 7u64;
    let mut cfg = if quick {
        LoadtestConfig::quick(seed)
    } else {
        let mut cfg = LoadtestConfig::quick(seed);
        cfg.service = ServiceConfig::new(ExperimentParams::paper_default(), seed);
        cfg.initial_users = 20;
        cfg.probe_secs = 5.0;
        cfg.refine_steps = 5;
        cfg
    };
    if quick {
        // Keep the whole smoke run to a couple of probes.
        cfg.probe_secs = 0.4;
        cfg.refine_steps = 2;
    }
    if let Ok(v) = std::env::var("TSAJS_BENCH_THREADS") {
        cfg.service.threads = Some(v.parse().expect("TSAJS_BENCH_THREADS"));
    }

    println!(
        "service loadtest: quick={quick}, slo p99 {:.0} ms, rates [{:.0}, {:.0}] Hz, \
         {:.1} s probes",
        cfg.slo_p99.as_secs() * 1e3,
        cfg.rate_lo_hz,
        cfg.rate_hi_hz,
        cfg.probe_secs
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>20} {:>10}",
        "rate(Hz)", "p99(ms)", "decided", "rejected", "tiers f/s/g (%)", "verdict"
    );
    let outcome = run_loadtest(&cfg, |probe| {
        println!(
            "{:>10.1} {:>10.2} {:>10} {:>10} {:>8.0}/{:>4.0}/{:>4.0} {:>10}",
            probe.rate_hz,
            probe.p99_ms,
            probe.decided,
            probe.rejected,
            probe.tier_occupancy[0] * 100.0,
            probe.tier_occupancy[1] * 100.0,
            probe.tier_occupancy[2] * 100.0,
            if probe.sustained {
                "sustained"
            } else {
                "failed"
            }
        );
    })
    .expect("loadtest");

    println!(
        "max sustainable rate: {:.1} Hz over {} probes ({} snapshot reads in the last probe)",
        outcome.report.max_sustainable_hz,
        outcome.report.probes.len(),
        outcome
            .report
            .probes
            .last()
            .map(|p| p.snapshot_reads)
            .unwrap_or(0)
    );

    let out = std::env::var("TSAJS_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let json = serde_json::to_string_pretty(&outcome.report).expect("serialize report");
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
