//! Cluster-count scaling of the sharded engine at a fixed city-scale
//! population and a fixed *total* proposal budget.
//!
//! Not a criterion bench: the acceptance criterion is a wall-clock
//! speedup over the 1-cluster (monolithic-equivalent) configuration at
//! equal-or-better objective, so this is a plain harness that solves the
//! same scenario at a sweep of cluster counts, prints a scaling table
//! and writes the machine-readable verdict to `BENCH_shard.json`
//! (override the path with `TSAJS_BENCH_OUT`).
//!
//! The comparison holds the total per-cluster proposal budget constant
//! (`TOTAL_BUDGET / clusters` each), so every row spends the same search
//! effort; what changes is whether that effort is spent in one
//! city-wide neighborhood or in per-cluster subproblems reconciled by
//! halo sweeps. Because decomposition also *raises* the objective at
//! equal effort, the headline number is **time-to-quality**: the
//! monolithic configuration re-runs with doubling budgets until it
//! matches the best sharded objective (or hits a 64× cap), and each
//! sharded row's speedup is that baseline's wall clock over its own. On
//! a multi-core host the cluster solves additionally run in parallel
//! (`TSAJS_THREADS` caps the pool), compounding the win.
//!
//! Modes:
//! - `cargo bench --bench shard` — full run, U = 20 000 over 32 cells.
//! - `TSAJS_BENCH_QUICK=1 cargo bench --bench shard` — CI smoke run,
//!   U = 2 000 over 16 cells with fewer repetitions.
//! - `cargo test` passes `--test`, which exits immediately so the
//!   tier-1 suite never pays for a benchmark.

use mec_types::effective_parallelism;
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use std::time::Instant;
use tsajs::{solve_sharded, ShardConfig, TtsaConfig};

const SEED: u64 = 11;

#[derive(Clone)]
struct Run {
    clusters: usize,
    cluster_size: usize,
    utility: f64,
    seconds: f64,
    sweeps: usize,
    converged: bool,
    halo_residual: f64,
    proposals: u64,
}

fn run_shard(
    scenario: &mec_system::Scenario,
    cluster_size: usize,
    budget: u64,
    reps: u32,
    workers: usize,
) -> Run {
    let config = ShardConfig::paper_default()
        .with_seed(SEED)
        .with_cluster_size(cluster_size)
        .with_ttsa(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-2)
                .with_proposal_budget(budget),
        );
    let mut best_seconds = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = solve_sharded(scenario, &config, workers).expect("sharded solve");
        best_seconds = best_seconds.min(start.elapsed().as_secs_f64());
        last = Some(outcome);
    }
    let outcome = last.expect("at least one repetition");
    Run {
        clusters: outcome.clusters,
        cluster_size,
        utility: outcome.objective,
        seconds: best_seconds,
        sweeps: outcome.sweeps,
        converged: outcome.converged,
        halo_residual: outcome.halo_residual,
        proposals: outcome.proposals,
    }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let quick = std::env::var("TSAJS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (users, servers, reps, total_budget) = if quick {
        (2_000usize, 16usize, 2u32, 8_000u64)
    } else {
        (20_000, 32, 3, 32_000)
    };
    let workers = effective_parallelism(None);
    let generator = ScenarioGenerator::new(
        ExperimentParams::paper_default()
            .with_users(users)
            .with_servers(servers),
    );
    let scenario = generator.generate(SEED).expect("scenario");
    println!(
        "shard bench: U={users}, S={servers}, seed {SEED}, workers {workers}, \
         total budget {total_budget}, quick={quick}"
    );
    println!(
        "{:>8} {:>6} {:>8} {:>14} {:>10} {:>7} {:>10} {:>14} {:>9}",
        "clusters",
        "size",
        "budget",
        "utility",
        "time(s)",
        "sweeps",
        "converged",
        "halo_resid",
        "speedup"
    );

    // Cluster sizes chosen to hit cluster counts 1, 2, 4, 8 exactly; the
    // per-cluster budget shrinks with the count so total effort is fixed.
    let mut runs: Vec<Run> = Vec::new();
    for divisor in [1usize, 2, 4, 8] {
        let cluster_size = servers / divisor;
        let budget = total_budget / divisor as u64;
        let run = run_shard(&scenario, cluster_size, budget, reps, workers);
        let baseline = runs.first().map(|r: &Run| r.seconds).unwrap_or(run.seconds);
        println!(
            "{:>8} {:>6} {:>8} {:>14.6} {:>10.3} {:>7} {:>10} {:>14.2e} {:>8.2}x",
            run.clusters,
            run.cluster_size,
            budget,
            run.utility,
            run.seconds,
            run.sweeps,
            run.converged,
            run.halo_residual,
            baseline / run.seconds,
        );
        runs.push(run);
    }

    // Time-to-quality baseline: how long the 1-cluster (monolithic)
    // configuration needs to match the best sharded objective.
    let target = runs
        .iter()
        .map(|r| r.utility)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut matched_budget = total_budget;
    let mut matched = runs[0].clone();
    while matched.utility < target && matched_budget < total_budget * 64 {
        matched_budget *= 2;
        matched = run_shard(&scenario, servers, matched_budget, 1, workers);
    }
    let reached = matched.utility >= target;
    println!(
        "time-to-quality: monolith at budget {matched_budget} reaches J = {:.6} \
         (target {target:.6}, matched: {reached}) in {:.3}s",
        matched.utility, matched.seconds
    );

    let baseline_seconds = runs[0].seconds;
    let baseline_utility = runs[0].utility;
    let best_speedup = runs
        .iter()
        .filter(|r| r.clusters > 1)
        .map(|r| matched.seconds / r.seconds)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "monolithic-equivalent (1 cluster, equal budget): {baseline_utility:.6} in \
         {baseline_seconds:.3}s; best time-to-quality speedup {best_speedup:.2}x"
    );

    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"clusters\":{},\"cluster_size\":{},\"utility\":{},\"seconds\":{},\
                 \"sweeps\":{},\"converged\":{},\"halo_residual\":{},\"proposals\":{},\
                 \"speedup_vs_one_cluster\":{},\"time_to_quality_speedup\":{}}}",
                r.clusters,
                r.cluster_size,
                r.utility,
                r.seconds,
                r.sweeps,
                r.converged,
                r.halo_residual,
                r.proposals,
                baseline_seconds / r.seconds,
                matched.seconds / r.seconds,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"users\": {users},\n  \"servers\": {servers},\n  \"seed\": {SEED},\n  \
         \"workers\": {workers},\n  \"quick\": {quick},\n  \
         \"total_budget\": {total_budget},\n  \"runs\": [{}],\n  \
         \"baseline_seconds\": {baseline_seconds},\n  \
         \"baseline_utility\": {baseline_utility},\n  \
         \"quality_matched\": {{\"budget\": {matched_budget}, \
         \"seconds\": {}, \"utility\": {}, \"target\": {target}, \
         \"matched\": {reached}}},\n  \
         \"best_speedup\": {best_speedup}\n}}\n",
        entries.join(","),
        matched.seconds,
        matched.utility,
    );
    let out = std::env::var("TSAJS_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".to_string());
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
