//! Cluster-count scaling of the sharded engine at a fixed city-scale
//! population and a fixed *total* proposal budget.
//!
//! Not a criterion bench: the acceptance criterion is a wall-clock
//! speedup over the 1-cluster (monolithic-equivalent) configuration at
//! equal-or-better objective, so this is a plain harness that solves the
//! same scenario at a sweep of cluster counts, prints a scaling table
//! and writes the machine-readable verdict to `BENCH_shard.json`
//! (override the path with `TSAJS_BENCH_OUT`).
//!
//! The comparison holds the total per-cluster proposal budget constant
//! (`TOTAL_BUDGET / clusters` each), so every row spends the same search
//! effort; what changes is whether that effort is spent in one
//! city-wide neighborhood or in per-cluster subproblems reconciled by
//! halo sweeps. Because decomposition also *raises* the objective at
//! equal effort, the headline number is **time-to-quality**: the
//! monolithic configuration re-runs with doubling budgets until it
//! matches the best sharded objective (or hits a 64× cap), and each
//! sharded row's speedup is that baseline's wall clock over its own. On
//! a multi-core host the cluster solves additionally run in parallel
//! (`TSAJS_THREADS` caps the pool), compounding the win.
//!
//! Modes:
//! - `cargo bench --bench shard` — full run, U = 20 000 over 32 cells.
//! - `TSAJS_BENCH_QUICK=1 cargo bench --bench shard` — CI smoke run,
//!   U = 2 000 over 16 cells with fewer repetitions.
//! - `cargo test` passes `--test`, which exits immediately so the
//!   tier-1 suite never pays for a benchmark.

use mec_types::{effective_parallelism, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use std::time::Instant;
use tsajs::{resolve_sharded, solve_sharded, Reconcile, ShardConfig, ShardRun, TtsaConfig};

const SEED: u64 = 11;

#[derive(Clone)]
struct Run {
    clusters: usize,
    cluster_size: usize,
    utility: f64,
    seconds: f64,
    sweeps: usize,
    converged: bool,
    halo_residual: f64,
    proposals: u64,
}

fn run_shard(
    scenario: &mec_system::Scenario,
    cluster_size: usize,
    budget: u64,
    reps: u32,
    workers: usize,
) -> Run {
    let config = ShardConfig::paper_default()
        .with_seed(SEED)
        .with_cluster_size(cluster_size)
        .with_ttsa(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-2)
                .with_proposal_budget(budget),
        );
    let mut best_seconds = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = solve_sharded(scenario, &config, workers).expect("sharded solve");
        best_seconds = best_seconds.min(start.elapsed().as_secs_f64());
        last = Some(outcome);
    }
    let outcome = last.expect("at least one repetition");
    Run {
        clusters: outcome.clusters,
        cluster_size,
        utility: outcome.objective,
        seconds: best_seconds,
        sweeps: outcome.sweeps,
        converged: outcome.converged,
        halo_residual: outcome.halo_residual,
        proposals: outcome.proposals,
    }
}

/// One reconciliation-mode measurement of the service steady state: a
/// cold solve (outside the timer — the cluster phase is identical in
/// both modes), then a stream of churned warm re-solves, each through
/// the audited [`resolve_sharded`] path exactly as `Tier::CityScale`
/// drives it. Round `r` churns the users of non-empty cluster
/// `r mod C` (capped), so the active neighborhood moves around the city
/// while the rest of it stays settled — the regime the aging gate
/// exists for, and the one the sequential reconciler pays full
/// `O(U·S)` halo rebuilds on every cluster of every sweep.
struct StreamRun {
    resolve_seconds: f64,
    utility: f64,
    fast_utility: f64,
    sweeps: usize,
    proposals: u64,
    converged: bool,
    halo_residual: f64,
}

fn run_churn_stream(
    scenario: &mec_system::Scenario,
    config: &ShardConfig,
    reps: u32,
    workers: usize,
    rounds: usize,
    churn_cap: usize,
) -> StreamRun {
    let n = scenario.num_users();
    let cold = solve_sharded(scenario, config, workers).expect("cold city solve");
    // The churn schedule comes from the partition alone, which is a pure
    // function of (geometry, cluster_size, seed) — identical every round
    // and across reconcile modes, so it can be drawn up front.
    let populated: Vec<usize> = (0..cold.partition.num_clusters())
        .filter(|&c| !cold.partition.clusters()[c].users.is_empty())
        .collect();
    let maps: Vec<Vec<Option<UserId>>> = (0..rounds)
        .map(|round| {
            let target = populated[round % populated.len()];
            let mut map: Vec<Option<UserId>> = (0..n).map(|v| Some(UserId::new(v))).collect();
            for &u in cold.partition.clusters()[target]
                .users
                .iter()
                .take(churn_cap)
            {
                map[u.index()] = None;
            }
            map
        })
        .collect();
    // Timed stream: each round is a warm `ShardRun` closed by the cheap
    // `finish_fast`, so a measurement point costs only what the warm
    // patch + reconciler cost — never the audited `O(U·S)` resync, which
    // is identical in both modes and would only dilute the comparison.
    let mut best_seconds = f64::INFINITY;
    let mut fast = None;
    for _ in 0..reps {
        let mut prev = cold.clone();
        let mut sweeps = 0usize;
        let mut proposals = 0u64;
        let mut converged = true;
        let start = Instant::now();
        for map in &maps {
            let mut run =
                ShardRun::warm(scenario, *config, workers, &prev, map).expect("warm shard phase");
            while run.sweeps() < config.max_sweeps {
                if !run.sweep().expect("halo sweep") {
                    break;
                }
            }
            prev = run.finish_fast();
            sweeps += prev.sweeps;
            proposals += prev.proposals;
            converged &= prev.converged;
        }
        best_seconds = best_seconds.min(start.elapsed().as_secs_f64());
        fast = Some(StreamRun {
            resolve_seconds: 0.0,
            utility: f64::NAN,
            fast_utility: prev.objective,
            sweeps,
            proposals,
            converged,
            halo_residual: f64::NAN,
        });
    }
    // Audited replay, outside the timer: the same deterministic stream
    // through `resolve_sharded` supplies the true final objective and
    // accounting residual.
    let mut audited = cold;
    for map in &maps {
        audited =
            resolve_sharded(scenario, config, workers, &audited, map).expect("audited re-solve");
    }
    let mut run = fast.expect("at least one repetition");
    run.resolve_seconds = best_seconds;
    run.utility = audited.objective;
    run.halo_residual = audited.halo_residual;
    run
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let quick = std::env::var("TSAJS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (users, servers, reps, total_budget) = if quick {
        (2_000usize, 16usize, 2u32, 8_000u64)
    } else {
        (20_000, 32, 3, 32_000)
    };
    let workers = effective_parallelism(None);
    let generator = ScenarioGenerator::new(
        ExperimentParams::paper_default()
            .with_users(users)
            .with_servers(servers),
    );
    let scenario = generator.generate(SEED).expect("scenario");
    println!(
        "shard bench: U={users}, S={servers}, seed {SEED}, workers {workers}, \
         total budget {total_budget}, quick={quick}"
    );
    println!(
        "{:>8} {:>6} {:>8} {:>14} {:>10} {:>7} {:>10} {:>14} {:>9}",
        "clusters",
        "size",
        "budget",
        "utility",
        "time(s)",
        "sweeps",
        "converged",
        "halo_resid",
        "speedup"
    );

    // Cluster sizes chosen to hit cluster counts 1, 2, 4, 8 exactly; the
    // per-cluster budget shrinks with the count so total effort is fixed.
    let mut runs: Vec<Run> = Vec::new();
    for divisor in [1usize, 2, 4, 8] {
        let cluster_size = servers / divisor;
        let budget = total_budget / divisor as u64;
        let run = run_shard(&scenario, cluster_size, budget, reps, workers);
        let baseline = runs.first().map(|r: &Run| r.seconds).unwrap_or(run.seconds);
        println!(
            "{:>8} {:>6} {:>8} {:>14.6} {:>10.3} {:>7} {:>10} {:>14.2e} {:>8.2}x",
            run.clusters,
            run.cluster_size,
            budget,
            run.utility,
            run.seconds,
            run.sweeps,
            run.converged,
            run.halo_residual,
            baseline / run.seconds,
        );
        runs.push(run);
    }

    // Time-to-quality baseline: how long the 1-cluster (monolithic)
    // configuration needs to match the best sharded objective.
    let target = runs
        .iter()
        .map(|r| r.utility)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut matched_budget = total_budget;
    let mut matched = runs[0].clone();
    while matched.utility < target && matched_budget < total_budget * 64 {
        matched_budget *= 2;
        matched = run_shard(&scenario, servers, matched_budget, 1, workers);
    }
    let reached = matched.utility >= target;
    println!(
        "time-to-quality: monolith at budget {matched_budget} reaches J = {:.6} \
         (target {target:.6}, matched: {reached}) in {:.3}s",
        matched.utility, matched.seconds
    );

    let baseline_seconds = runs[0].seconds;
    let baseline_utility = runs[0].utility;
    let best_speedup = runs
        .iter()
        .filter(|r| r.clusters > 1)
        .map(|r| matched.seconds / r.seconds)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "monolithic-equivalent (1 cluster, equal budget): {baseline_utility:.6} in \
         {baseline_seconds:.3}s; best time-to-quality speedup {best_speedup:.2}x"
    );

    // ── Pipelined vs sequential halo reconciliation (ISSUE 10) ───────
    // The reconciler comparison runs at the city-scale regime the
    // tentpole names (U = 100k over 36 cells; the smaller shared shape
    // in quick mode), in the regime the pipeline exists for: a
    // steady-state churn stream. Both modes first pay an identical cold
    // solve (outside the timer), then absorb the same sequence of
    // geographically clustered churn events — round `r` empties and
    // refills non-empty cluster `r mod C` — through the audited
    // `resolve_sharded` warm path. The churn schedule is mode-independent
    // because `Partition` is a pure function of (geometry, cluster_size,
    // seed). Sequential reconciliation re-walks every cluster with an
    // `O(U·S)` halo rebuild per visit per sweep; the pipelined aging
    // gate settles the untouched city and spends its epochs on the
    // churned neighborhood.
    let (r_users, r_servers, r_budget) = if quick {
        (users, servers, 2_000u64)
    } else {
        (100_000usize, 36usize, 8_000u64)
    };
    // Hotspot placement (one pocket per cluster-sized cell): churn stays
    // geographically coherent, and the damping floor below keeps the
    // boundary users from limit-cycling (see
    // `ShardConfig::descent_floor`), which is what lets both modes reach
    // *certified* fixed points instead of racing the sweep cap.
    let r_cluster = (r_servers / 18).max(2);
    let r_hotspots = (r_servers / r_cluster).max(2);
    // The tentpole's speedup claim is stated at >= 2 workers; the
    // reconciler's determinism contract makes the count observationally
    // irrelevant, so the bench always runs the city-scale sections with
    // at least two even on a single-core host.
    let r_workers = workers.max(2);
    let r_scenario = ScenarioGenerator::new(
        ExperimentParams::paper_default()
            .with_users(r_users)
            .with_servers(r_servers)
            .with_hotspots(r_hotspots, 250.0),
    )
    .generate(SEED)
    .expect("reconcile scenario");
    let base = ShardConfig::paper_default()
        .with_seed(SEED)
        .with_cluster_size(r_cluster)
        .with_max_sweeps(32)
        .with_descent_floor(1e-4)
        .with_ttsa(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-3)
                .with_proposal_budget(r_budget),
        );
    let r_rounds = if quick { 4usize } else { 6usize };
    let r_churn_cap = (r_users / 10).max(1);
    // Steady-state churn keeps re-disturbing the same boundaries, so the
    // stream runs both modes under a stronger hysteresis band (1e-3):
    // marginal boundary shuffles that would add propagation epochs
    // without moving the objective are damped out, and each round
    // settles at its structural floor (two proof sweeps sequential,
    // changed + aged + certification epochs pipelined).
    let stream = base.with_descent_floor(1e-3);
    let sequential = run_churn_stream(
        &r_scenario,
        &stream.with_reconcile(Reconcile::Sequential),
        reps,
        r_workers,
        r_rounds,
        r_churn_cap,
    );
    let pipelined = run_churn_stream(
        &r_scenario,
        &stream.with_reconcile(Reconcile::Pipelined),
        reps,
        r_workers,
        r_rounds,
        r_churn_cap,
    );
    let stream_speedup = sequential.resolve_seconds / pipelined.resolve_seconds;
    // Two damped runs are comparable only up to the hysteresis band:
    // each certified fixed point may sit up to ~descent_floor (relative)
    // below the undamped optimum, so "equal or better" is judged within
    // twice the floor.
    let band = 2.0 * stream.descent_floor * sequential.utility.abs().max(1.0);
    let equal_or_better = pipelined.utility >= sequential.utility - band;
    println!(
        "reconcile stream: U={r_users}, S={r_servers}, cluster budget {r_budget}, \
         {r_rounds} churned re-solves, sequential {:.3}s ({} sweeps, J={:.6}) vs \
         pipelined {:.3}s ({} sweeps, J={:.6}) -> {stream_speedup:.2}x, \
         equal-or-better: {equal_or_better}",
        sequential.resolve_seconds,
        sequential.sweeps,
        sequential.utility,
        pipelined.resolve_seconds,
        pipelined.sweeps,
        pipelined.utility,
    );

    // ── Warm vs cold city-scale re-solve (ISSUE 10) ──────────────────
    // ≤ 10% churn, geographically clustered (one area empties and
    // refills): the users of the first non-empty cluster, capped at 10%
    // of the population, depart and re-arrive; everyone else survives.
    let mut cold_seconds = f64::INFINITY;
    let mut cold = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = solve_sharded(&r_scenario, &base, r_workers).expect("cold city solve");
        cold_seconds = cold_seconds.min(start.elapsed().as_secs_f64());
        cold = Some(outcome);
    }
    let cold = cold.expect("at least one repetition");
    let cap = (r_users / 10).max(1);
    let mut churned = vec![false; r_users];
    let mut churn_count = 0usize;
    for members in cold.partition.clusters() {
        if members.users.is_empty() {
            continue;
        }
        for &u in members.users.iter().take(cap) {
            churned[u.index()] = true;
        }
        churn_count = members.users.len().min(cap);
        break;
    }
    let churn_fraction = churn_count as f64 / r_users as f64;
    let map: Vec<Option<UserId>> = (0..r_users)
        .map(|v| {
            if churned[v] {
                None
            } else {
                Some(UserId::new(v))
            }
        })
        .collect();
    let mut warm_seconds = f64::INFINITY;
    let mut warm = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome =
            resolve_sharded(&r_scenario, &base, r_workers, &cold, &map).expect("warm city resolve");
        warm_seconds = warm_seconds.min(start.elapsed().as_secs_f64());
        warm = Some(outcome);
    }
    let warm = warm.expect("at least one repetition");
    let warm_speedup = cold_seconds / warm_seconds;
    let regression = (cold.objective - warm.objective) / cold.objective.abs().max(1e-300);
    println!(
        "warm: churn {churn_count}/{r_users} ({:.1}%), cold {cold_seconds:.3}s \
         (J={:.6}) vs warm {warm_seconds:.3}s (J={:.6}, resolved {}, reused {}) \
         -> {warm_speedup:.2}x, utility regression {:.4}%",
        churn_fraction * 100.0,
        cold.objective,
        warm.objective,
        warm.resolved_clusters,
        warm.reused_clusters,
        regression * 100.0,
    );

    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"clusters\":{},\"cluster_size\":{},\"utility\":{},\"seconds\":{},\
                 \"sweeps\":{},\"converged\":{},\"halo_residual\":{},\"proposals\":{},\
                 \"speedup_vs_one_cluster\":{},\"time_to_quality_speedup\":{}}}",
                r.clusters,
                r.cluster_size,
                r.utility,
                r.seconds,
                r.sweeps,
                r.converged,
                r.halo_residual,
                r.proposals,
                baseline_seconds / r.seconds,
                matched.seconds / r.seconds,
            )
        })
        .collect();
    let mode_json = |r: &StreamRun| {
        format!(
            "{{\"resolve_seconds\":{},\"utility\":{},\"fast_utility\":{},\
             \"sweeps\":{},\"proposals\":{},\"converged\":{},\"halo_residual\":{}}}",
            r.resolve_seconds,
            r.utility,
            r.fast_utility,
            r.sweeps,
            r.proposals,
            r.converged,
            r.halo_residual,
        )
    };
    let reconcile_json = format!(
        "{{\"users\":{r_users},\"servers\":{r_servers},\"cluster_budget\":{r_budget},\
         \"workers\":{r_workers},\"rounds\":{r_rounds},\"churn_cap\":{r_churn_cap},\
         \"sequential\":{},\"pipelined\":{},\
         \"stream_speedup\":{stream_speedup},\"equal_or_better\":{equal_or_better}}}",
        mode_json(&sequential),
        mode_json(&pipelined),
    );
    let warm_json = format!(
        "{{\"users\":{r_users},\"servers\":{r_servers},\"churned\":{churn_count},\
         \"churn_fraction\":{churn_fraction},\"cold_seconds\":{cold_seconds},\
         \"warm_seconds\":{warm_seconds},\"speedup\":{warm_speedup},\
         \"cold_utility\":{},\"warm_utility\":{},\"utility_regression\":{regression},\
         \"resolved_clusters\":{},\"reused_clusters\":{}}}",
        cold.objective, warm.objective, warm.resolved_clusters, warm.reused_clusters,
    );
    let json = format!(
        "{{\n  \"users\": {users},\n  \"servers\": {servers},\n  \"seed\": {SEED},\n  \
         \"workers\": {workers},\n  \"quick\": {quick},\n  \
         \"total_budget\": {total_budget},\n  \"runs\": [{}],\n  \
         \"baseline_seconds\": {baseline_seconds},\n  \
         \"baseline_utility\": {baseline_utility},\n  \
         \"quality_matched\": {{\"budget\": {matched_budget}, \
         \"seconds\": {}, \"utility\": {}, \"target\": {target}, \
         \"matched\": {reached}}},\n  \
         \"best_speedup\": {best_speedup},\n  \
         \"reconcile\": {reconcile_json},\n  \
         \"warm\": {warm_json}\n}}\n",
        entries.join(","),
        matched.seconds,
        matched.utility,
    );
    let out = std::env::var("TSAJS_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".to_string());
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
