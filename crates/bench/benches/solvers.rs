//! Solver throughput on paper-default scenarios of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_system::Solver;
use mec_workloads::{ExperimentParams, ScenarioGenerator};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    for users in [10usize, 30, 50, 90] {
        let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(users));
        let scenario = generator.generate(1).expect("scenario");

        group.bench_with_input(BenchmarkId::new("tsajs", users), &scenario, |b, sc| {
            b.iter(|| {
                let mut solver = tsajs::TsajsSolver::new(
                    tsajs::TtsaConfig::paper_default()
                        .with_min_temperature(1e-3)
                        .with_seed(7),
                );
                solver.solve(sc).expect("solve")
            })
        });
        group.bench_with_input(BenchmarkId::new("hjtora", users), &scenario, |b, sc| {
            b.iter(|| mec_baselines::HJtoraSolver::new().solve(sc).expect("solve"))
        });
        group.bench_with_input(
            BenchmarkId::new("local_search", users),
            &scenario,
            |b, sc| {
                b.iter(|| {
                    mec_baselines::LocalSearchSolver::with_seed(7)
                        .solve(sc)
                        .expect("solve")
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy", users), &scenario, |b, sc| {
            b.iter(|| mec_baselines::GreedySolver::new().solve(sc).expect("solve"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
