//! Microbenches for the core data structures: assignment mutations, the
//! KKT allocation, and topology/placement primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_baselines::max_weight_assignment;
use mec_system::{kkt_allocation, Assignment};
use mec_topology::{place_users_uniform, NetworkLayout};
use mec_types::{constants, ServerId, SubchannelId, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_assignment_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    for users in [30usize, 90] {
        let scenario = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(users))
            .generate(1)
            .expect("scenario");
        group.bench_with_input(
            BenchmarkId::new("assign_release_cycle", users),
            &scenario,
            |b, sc| {
                let mut x = Assignment::all_local(sc);
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| {
                    let u = UserId::new(rng.gen_range(0..sc.num_users()));
                    let s = ServerId::new(rng.gen_range(0..sc.num_servers()));
                    let j = SubchannelId::new(rng.gen_range(0..sc.num_subchannels()));
                    let _ = x.assign_evicting(u, s, j);
                    x.release(u);
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("clone", users), &scenario, |b, sc| {
            let mut x = Assignment::all_local(sc);
            for i in 0..sc.num_servers().min(sc.num_users()) {
                let _ = x.assign(
                    UserId::new(i),
                    ServerId::new(i % sc.num_servers()),
                    SubchannelId::new(0),
                );
            }
            b.iter(|| x.clone())
        });
    }
    group.finish();
}

fn bench_kkt(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    for users in [30usize, 90] {
        let scenario = ScenarioGenerator::new(
            ExperimentParams::paper_default()
                .with_users(users)
                .with_subchannels(12)
                .with_beta_time_spread(0.4),
        )
        .generate(1)
        .expect("scenario");
        let mut x = Assignment::all_local(&scenario);
        let mut rng = StdRng::seed_from_u64(2);
        for u in scenario.user_ids() {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            if let Some(j) = x.free_subchannel(s) {
                let _ = x.assign(u, s, j);
            }
        }
        group.bench_with_input(BenchmarkId::new("kkt", users), &x, |b, x| {
            b.iter(|| kkt_allocation(&scenario, x))
        });
    }
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    let layout = NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE).expect("layout");
    group.bench_function("place_100_users", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| place_users_uniform(&layout, 100, &mut rng))
    });
    group.bench_function("nearest_station", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let points = place_users_uniform(&layout, 1000, &mut rng);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % points.len();
            layout.nearest_station(points[i])
        })
    });
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for (rows, cols) in [(30usize, 27usize), (90, 27), (90, 450)] {
        let mut rng = StdRng::seed_from_u64(6);
        let weights: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("max_weight", format!("{rows}x{cols}")),
            &weights,
            |b, w| b.iter(|| max_weight_assignment(w)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assignment_ops,
    bench_kkt,
    bench_topology,
    bench_hungarian
);
criterion_main!(benches);
