//! Head-to-head: paper single-chain TTSA vs the parallel-tempering
//! engine at the paper's largest population (U = 90).
//!
//! Not a criterion bench: the acceptance criterion is a wall-clock
//! speedup ratio at equal-or-better mean quality over fixed seeds, so
//! this is a plain harness that runs both engines over seeds 11/23/47,
//! prints a table and writes the machine-readable verdict to
//! `BENCH_tempering.json` (override the path with `TSAJS_BENCH_OUT`).
//!
//! Modes:
//! - `cargo bench --bench tempering` — full run, U = 90.
//! - `TSAJS_BENCH_QUICK=1 cargo bench --bench tempering` — CI smoke
//!   run, U = 30 with a shortened ladder.
//! - `cargo test` passes `--test`, which exits immediately so the
//!   tier-1 suite never pays for a benchmark.

use mec_system::Solver;
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use std::time::Instant;
use tsajs::{TemperingConfig, TsajsSolver, TtsaConfig};

const SEEDS: [u64; 3] = [11, 23, 47];

struct Run {
    seed: u64,
    utility: f64,
    seconds: f64,
    proposals: u64,
}

/// Runs the same solve `REPS` times and keeps the fastest wall-clock
/// (the run least disturbed by the OS); the result itself is seeded and
/// identical across repetitions.
const REPS: u32 = 40;

fn run_solver(make: impl Fn() -> TsajsSolver, scenario: &mec_system::Scenario, seed: u64) -> Run {
    let mut best_seconds = f64::INFINITY;
    let mut utility = f64::NEG_INFINITY;
    let mut proposals = 0;
    for _ in 0..REPS {
        let mut solver = make();
        let start = Instant::now();
        let solution = solver.solve(scenario).expect("solve");
        best_seconds = best_seconds.min(start.elapsed().as_secs_f64());
        utility = solution.utility;
        proposals = solution.stats.objective_evaluations;
    }
    Run {
        seed,
        utility,
        seconds: best_seconds,
        proposals,
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn json_runs(runs: &[Run]) -> String {
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"seed\":{},\"utility\":{},\"seconds\":{},\"proposals\":{},\"proposals_per_sec\":{}}}",
                r.seed,
                r.utility,
                r.seconds,
                r.proposals,
                r.proposals as f64 / r.seconds
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn main() {
    // `cargo test` executes bench targets with `--test`; there is
    // nothing to smoke-test here beyond compilation.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let quick = std::env::var("TSAJS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let users = if quick { 30 } else { 90 };
    let base = if quick {
        TtsaConfig::paper_default().with_min_temperature(1e-3)
    } else {
        TtsaConfig::paper_default()
    };
    // Tuning overrides, so a ladder sweep doesn't need a recompile:
    // TSAJS_BENCH_REPLICAS / _LADDER / _FACTOR / _QUENCH / _INTERVAL.
    let mut tempering = TemperingConfig::paper_default();
    if let Ok(v) = std::env::var("TSAJS_BENCH_REPLICAS") {
        tempering.replicas = v.parse().expect("TSAJS_BENCH_REPLICAS");
    }
    if let Ok(v) = std::env::var("TSAJS_BENCH_LADDER") {
        tempering.ladder_ratio = v.parse().expect("TSAJS_BENCH_LADDER");
    }
    if let Ok(v) = std::env::var("TSAJS_BENCH_FACTOR") {
        tempering.schedule_factor = v.parse().expect("TSAJS_BENCH_FACTOR");
    }
    if let Ok(v) = std::env::var("TSAJS_BENCH_QUENCH") {
        tempering.quench_epochs = v.parse().expect("TSAJS_BENCH_QUENCH");
    }
    if let Ok(v) = std::env::var("TSAJS_BENCH_INTERVAL") {
        tempering.exchange_interval = v.parse().expect("TSAJS_BENCH_INTERVAL");
    }
    if let Ok(v) = std::env::var("TSAJS_BENCH_BIAS") {
        tempering.cold_bias = v.parse().expect("TSAJS_BENCH_BIAS");
    }

    let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(users));
    let mut single = Vec::new();
    let mut tempered = Vec::new();
    println!("tempering bench: U={users}, seeds {SEEDS:?}, quick={quick}");
    println!(
        "{:<10} {:>6} {:>14} {:>10} {:>12} {:>12}",
        "engine", "seed", "utility", "time(s)", "proposals", "prop/s"
    );
    for seed in SEEDS {
        let scenario = generator.generate(seed).expect("scenario");
        let run = run_solver(|| TsajsSolver::new(base.with_seed(seed)), &scenario, seed);
        println!(
            "{:<10} {:>6} {:>14.6} {:>10.3} {:>12} {:>12.0}",
            "single",
            seed,
            run.utility,
            run.seconds,
            run.proposals,
            run.proposals as f64 / run.seconds
        );
        single.push(run);
        let run = run_solver(
            || TsajsSolver::new(base.with_seed(seed)).with_tempering(tempering),
            &scenario,
            seed,
        );
        println!(
            "{:<10} {:>6} {:>14.6} {:>10.3} {:>12} {:>12.0}",
            "tempering",
            seed,
            run.utility,
            run.seconds,
            run.proposals,
            run.proposals as f64 / run.seconds
        );
        tempered.push(run);
    }

    let single_time = mean(single.iter().map(|r| r.seconds));
    let tempered_time = mean(tempered.iter().map(|r| r.seconds));
    let single_j = mean(single.iter().map(|r| r.utility));
    let tempered_j = mean(tempered.iter().map(|r| r.utility));
    let single_tp = mean(single.iter().map(|r| r.proposals as f64 / r.seconds));
    let tempered_tp = mean(tempered.iter().map(|r| r.proposals as f64 / r.seconds));
    let speedup = single_time / tempered_time;
    println!(
        "mean: single {single_j:.6} in {single_time:.3}s, \
         tempering {tempered_j:.6} in {tempered_time:.3}s \
         => speedup {speedup:.2}x, quality delta {:+.6}",
        tempered_j - single_j
    );

    let json = format!(
        "{{\n  \"users\": {users},\n  \"quick\": {quick},\n  \
         \"replicas\": {},\n  \"seeds\": [11, 23, 47],\n  \
         \"single_chain\": {},\n  \"tempering\": {},\n  \
         \"mean_utility_single\": {single_j},\n  \
         \"mean_utility_tempering\": {tempered_j},\n  \
         \"mean_seconds_single\": {single_time},\n  \
         \"mean_seconds_tempering\": {tempered_time},\n  \
         \"mean_proposals_per_sec_single\": {single_tp},\n  \
         \"mean_proposals_per_sec_tempering\": {tempered_tp},\n  \
         \"speedup\": {speedup}\n}}\n",
        tempering.replicas,
        json_runs(&single),
        json_runs(&tempered)
    );
    let out =
        std::env::var("TSAJS_BENCH_OUT").unwrap_or_else(|_| "BENCH_tempering.json".to_string());
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
