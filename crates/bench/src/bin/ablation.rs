//! Ablation study for the design choices DESIGN.md calls out — delegates
//! to `mec_workloads::experiments::ablation` and appends the baselines'
//! utilities on the same scenario for context. Pass `--full` for more
//! trials and the full annealing schedule.

use mec_workloads::experiments::ablation::{self, AblationConfig};
use mec_workloads::experiments::Scheme;
use mec_workloads::{run_trials, SampleStats, ScenarioGenerator, Table};

fn baseline_context(config: &AblationConfig, preset: mec_workloads::Preset) -> Table {
    let generator = ScenarioGenerator::new(config.params);
    let mut table = Table::new(
        "Context: baseline utilities on the ablation scenario",
        vec!["scheme".into(), "avg utility".into()],
    );
    for scheme in [Scheme::HJtora, Scheme::LocalSearch, Scheme::Greedy] {
        let outcomes = run_trials(&generator, config.trials, config.base_seed, |seed| {
            scheme.build(preset, seed)
        })
        .expect("trials failed");
        let stats =
            SampleStats::from_sample(&outcomes.iter().map(|o| o.utility).collect::<Vec<_>>());
        table.push_row(vec![scheme.name(), stats.display(3)]);
    }
    table
}

fn main() {
    let preset = mec_bench::preset_from_args();
    let config = AblationConfig::paper(preset);
    let mut tables = ablation::run(&config).expect("ablation failed");
    tables.push(baseline_context(&config, preset));
    mec_bench::emit(&tables, "ablation").expect("failed to write results");
}
