//! Certified-quality study: TSAJS against the interference-free matching
//! upper bound across user scales. Pass `--full` for more trials.

fn main() {
    let preset = mec_bench::preset_from_args();
    let tables = mec_workloads::experiments::bound_gap::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "bound_gap").expect("failed to write results");
}
