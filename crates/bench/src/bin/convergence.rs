//! Emits convergence curves (best J vs epoch) comparing the paper's
//! threshold-triggered schedule with plain geometric cooling — as a
//! markdown/CSV table and as an SVG chart under `results/`.

use mec_viz::{LineChart, Series};
use mec_workloads::experiments::convergence::{run, ConvergenceConfig};

fn main() {
    let config = ConvergenceConfig::default_comparison();
    let tables = run(&config).expect("experiment failed");
    mec_bench::emit(&tables, "convergence").expect("failed to write results");

    // Chart the (clipped) curves: the first epochs sit at J ≈ -10^5 and
    // would flatten everything else, so clip to the interesting range.
    let table = &tables[0];
    let mut chart = LineChart::new("TTSA convergence (best J vs epoch)", "epoch", "best J");
    for (col, name) in table.headers.iter().enumerate().skip(1) {
        let points: Vec<(f64, f64)> = table
            .rows
            .iter()
            .filter_map(|row| {
                let x: f64 = row[0].parse().ok()?;
                let y: f64 = row[col].parse().ok()?;
                (y > -10.0).then_some((x, y))
            })
            .collect();
        if !points.is_empty() {
            chart = chart.with_series(Series {
                label: name.clone(),
                points,
            });
        }
    }
    let svg = chart.render();
    let path = mec_bench::results_dir().join("convergence.svg");
    std::fs::write(&path, svg).expect("failed to write chart");
    eprintln!("saved {}", path.display());
}
