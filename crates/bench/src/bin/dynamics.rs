//! Mobility study (extension, not a paper figure): TSAJS full-resolve vs
//! incremental refresh vs Greedy, under pedestrian and vehicular mobility.
//! Pass `--full` for more epochs.

use mec_mobility::study::{run, StudyConfig};

fn main() {
    let preset = mec_bench::preset_from_args();
    let mut config = StudyConfig::default_study();
    config.epochs = if preset.is_full() { 40 } else { 10 };
    let tables = run(&config).expect("study failed");
    mec_bench::emit(&tables, "dynamics").expect("failed to write results");
}
