//! Regenerates Fig. 3 of the paper. Pass `--full` for paper-faithful
//! trial counts; the default quick preset smoke-tests the pipeline.

fn main() {
    let preset = mec_bench::preset_from_args();
    eprintln!("running fig3 with preset {preset:?} ...");
    let tables = mec_workloads::experiments::fig3::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "fig3").expect("failed to write results");
}
