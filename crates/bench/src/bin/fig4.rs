//! Regenerates Fig. 4 of the paper. Pass `--full` for paper-faithful
//! trial counts; the default quick preset smoke-tests the pipeline.

fn main() {
    let preset = mec_bench::preset_from_args();
    eprintln!("running fig4 with preset {preset:?} ...");
    let tables = mec_workloads::experiments::fig4::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "fig4").expect("failed to write results");
}
