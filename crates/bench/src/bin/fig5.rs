//! Regenerates Fig. 5 of the paper. Pass `--full` for paper-faithful
//! trial counts; the default quick preset smoke-tests the pipeline.

fn main() {
    let preset = mec_bench::preset_from_args();
    eprintln!("running fig5 with preset {preset:?} ...");
    let tables = mec_workloads::experiments::fig5::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "fig5").expect("failed to write results");
}
