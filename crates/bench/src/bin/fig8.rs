//! Regenerates Fig. 8 of the paper. Pass `--full` for paper-faithful
//! trial counts; the default quick preset smoke-tests the pipeline.

fn main() {
    let preset = mec_bench::preset_from_args();
    eprintln!("running fig8 with preset {preset:?} ...");
    let tables = mec_workloads::experiments::fig8::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "fig8").expect("failed to write results");
}
