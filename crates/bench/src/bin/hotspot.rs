//! Hotspot-placement sensitivity study. Pass `--full` for more trials.

fn main() {
    let preset = mec_bench::preset_from_args();
    let tables = mec_workloads::experiments::hotspot::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "hotspot").expect("failed to write results");
}
