//! Provider-priority (first responder) study. Pass `--full` for more
//! trials.

fn main() {
    let preset = mec_bench::preset_from_args();
    let tables = mec_workloads::experiments::priority::paper(preset).expect("experiment failed");
    mec_bench::emit(&tables, "priority").expect("failed to write results");
}
