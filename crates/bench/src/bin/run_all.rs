//! Regenerates every table and figure of the paper's evaluation in one go.
//! Pass `--full` for the paper-faithful preset.

type FigureFn = fn(mec_workloads::Preset) -> Result<Vec<mec_workloads::Table>, mec_types::Error>;

fn main() {
    let preset = mec_bench::preset_from_args();
    eprintln!("regenerating all figures with preset {preset:?} ...");
    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig3", mec_workloads::experiments::fig3::paper),
        ("fig4", mec_workloads::experiments::fig4::paper),
        ("fig5", mec_workloads::experiments::fig5::paper),
        ("fig6", mec_workloads::experiments::fig6::paper),
        ("fig7", mec_workloads::experiments::fig7::paper),
        ("fig8", mec_workloads::experiments::fig8::paper),
        ("fig9", mec_workloads::experiments::fig9::paper),
        (
            "convergence",
            mec_workloads::experiments::convergence::paper,
        ),
        ("bound_gap", mec_workloads::experiments::bound_gap::paper),
        ("hotspot", mec_workloads::experiments::hotspot::paper),
        ("ablation", mec_workloads::experiments::ablation::paper),
    ];
    for (id, run) in figures {
        eprintln!("=== {id} ===");
        let start = std::time::Instant::now();
        let tables = run(preset).expect("experiment failed");
        mec_bench::emit(&tables, id).expect("failed to write results");
        eprintln!("{id} done in {:.1}s", start.elapsed().as_secs_f64());
    }
}
