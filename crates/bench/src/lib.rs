//! # mec-bench
//!
//! Criterion benchmarks and per-figure regeneration binaries.
//!
//! Run `cargo run -p mec-bench --release --bin run_all` to regenerate
//! every table of the paper (markdown to stdout, CSVs under `results/`),
//! or `--bin fig3` … `--bin fig9` for a single figure. Pass `--full` for
//! the paper-faithful trial counts and annealing schedule (the default is
//! the quick preset).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mec_workloads::{Preset, Table};
use std::path::PathBuf;

/// Parses the effort preset from process arguments: `--full` selects
/// [`Preset::Full`], anything else (including nothing) the quick preset.
pub fn preset_from_args() -> Preset {
    if std::env::args().any(|a| a == "--full") {
        Preset::Full
    } else {
        Preset::Quick
    }
}

/// The workspace-level `results/` directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}

/// Prints each table as markdown and saves it as
/// `results/<figure_id>_<index>.csv`.
///
/// # Errors
///
/// Propagates I/O errors from creating the results directory or writing
/// files.
pub fn emit(tables: &[Table], figure_id: &str) -> std::io::Result<()> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    for (i, table) in tables.iter().enumerate() {
        println!("{}", table.to_markdown());
        let path = dir.join(format!("{figure_id}_{i}.csv"));
        table.save_csv(&path)?;
        eprintln!("saved {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_points_into_the_workspace() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn emit_writes_csvs() {
        let mut t = Table::new("test", vec!["a".into()]);
        t.push_row(vec!["1".into()]);
        emit(&[t], "unit_test_fig").unwrap();
        let path = results_dir().join("unit_test_fig_0.csv");
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
