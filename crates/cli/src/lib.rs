//! # tsajs-cli
//!
//! The `tsajs-sim` command-line front end:
//!
//! ```text
//! tsajs-sim generate --users 20 --seed 7 --out scenario.json
//! tsajs-sim solve    --scenario scenario.json --solver tsajs --seed 7
//! tsajs-sim compare  --scenario scenario.json --seed 7
//! ```
//!
//! Scenarios are stored as JSON [`ScenarioSpec`]s, so a run is fully
//! reproducible from the file alone. The library half of the crate holds
//! the argument parsing and command logic so it is unit-testable; `main`
//! is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mec_baselines::{
    AllLocalSolver, ExhaustiveSolver, GreedySolver, HJtoraSolver, LocalSearchSolver, RandomSolver,
};
use mec_conformance::{run_conformance, write_violation_artifacts, ConformanceConfig};
use mec_mobility::{DynamicSimulation, MobilityConfig};
use mec_online::{AdmissionPolicy, AdmitAll, CapacityGate, OnlineConfig, OnlineEngine, TraceChurn};
use mec_scenario_spec::SpecError;
use mec_system::{Assignment, Scenario, ScenarioSpec, Solver, SystemEvaluation};
use mec_types::{Bits, BitsPerSecond, Cycles, Seconds, UserId};
use mec_viz::SvgScene;
use mec_workloads::{ExperimentParams, PoissonChurn, ScenarioGenerator};
use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};
use tsajs::{ResolveMode, ShardConfig, ShardSolver, TemperingConfig, TsajsSolver, TtsaConfig};

/// Errors the CLI reports to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (unknown command/flag, missing value, parse error).
    Usage(String),
    /// Model-level failure (invalid scenario, solver error).
    Model(mec_types::Error),
    /// File I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Declarative scenario-spec failure (decode, validate, materialize).
    Spec(SpecError),
    /// A conformance sweep found invariant violations.
    Conformance(u64),
    /// A corpus run had failing or unloadable specs.
    Corpus(usize),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Model(e) => write!(f, "model error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Spec(e) => write!(f, "scenario spec error: {e}"),
            CliError::Conformance(n) => {
                write!(
                    f,
                    "conformance failed: {n} invariant violation(s), see report"
                )
            }
            CliError::Corpus(n) => write!(f, "corpus failed: {n} failing spec(s)"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<mec_types::Error> for CliError {
    fn from(e: mec_types::Error) -> Self {
        CliError::Model(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::Spec(e)
    }
}

/// The JSON report written by `solve --report`: the scheme, its score,
/// the chosen decision and the full per-user evaluation.
#[derive(Debug, Serialize)]
pub struct SolveReport {
    /// Solver display name.
    pub solver: String,
    /// Achieved system utility `J*(X)`.
    pub utility: f64,
    /// The offloading decision.
    pub decision: Assignment,
    /// Per-user metrics under the KKT allocation.
    pub evaluation: SystemEvaluation,
}

/// The usage banner.
pub const USAGE: &str = "\
tsajs-sim — multi-server MEC joint task scheduling (TSAJS reproduction)

USAGE:
  tsajs-sim generate [--users N] [--servers S] [--subchannels N]
                     [--workload-mcycles W] [--data-kb D] [--beta-time B]
                     [--output-kb D --downlink-mbps R]
                     [--seed SEED] --out FILE
  tsajs-sim solve    --scenario FILE [--solver NAME] [--seed SEED]
                     [--threads N] [--batch K] [--warm-resolves K]
                     [--report FILE]
  tsajs-sim compare  --scenario FILE [--seed SEED] [--threads N]
                     [--batch K]
  tsajs-sim render   --scenario FILE --out FILE.svg
                     [--solver NAME] [--seed SEED] [--threads N]
  tsajs-sim inspect  --scenario FILE
  tsajs-sim simulate [--users N] [--epochs E]
                     [--mobility pedestrian|vehicular]
                     [--solver NAME] [--seed SEED] [--threads N]
  tsajs-sim online   [--scenario FILE.toml | --users N [--servers S]
                     [--arrival-rate HZ] [--mean-sojourn SECS]
                     [--epoch-secs SECS] [--budget P] [--cold]
                     [--capacity N] [--admission reject|force-local]]
                     [--epochs E] [--seed SEED] [--threads N]
  tsajs-sim loadtest [--scenario FILE.toml] [--users N] [--slo-ms MS]
                     [--rate-lo HZ] [--rate-hi HZ] [--probe-secs S]
                     [--refine K] [--batch-size N] [--batch-age-ms MS]
                     [--queue-capacity N] [--threads N] [--seed SEED]
                     [--quick] [--out FILE] [--jsonl FILE]
                     [--metrics FILE]
  tsajs-sim conformance [--seeds N] [--seed BASE] [--deep]
                     [--out FILE] [--artifacts DIR]
  tsajs-sim corpus   [--dir DIR] [--verbose]

SOLVERS: tsajs (default), tempering, shard, hjtora, greedy,
         localsearch, random, exhaustive, alllocal

The `shard` solver is the city-scale engine: it partitions the cell
topology into clusters, solves each cluster on the worker pool, and
reconciles cross-cluster interference with halo sweeps — pipelined
Jacobi-with-aging by default, sequential Gauss–Seidel as a library
option. Use it for populations the monolithic annealer cannot hold
(U >= 100k). `--warm-resolves K` (shard only) chains K warm re-solves
after the cold solve under a deterministic rolling ~10% churn and
prints each objective; output is bit-identical at any thread count.

SCENARIO FILES: `--scenario` accepts either a legacy JSON snapshot
(written by `generate`) or a declarative spec — `.toml`, or `.json`
with a `schema_version` field. Declarative specs materialize from
`--seed`, so the same file plus the same seed is the same run.

`--threads N` caps the worker pool of the parallel solvers (tempering,
multi-start, exhaustive); the TSAJS_THREADS environment variable does
the same when no flag is given. Results are bit-identical at any
thread count.

`--batch K` sets the speculative proposal batch width of the annealing
solvers (tsajs, tempering): K candidate moves are drawn and scored per
step and the first Metropolis acceptance wins. K=1 (the default) is the
paper's one-proposal-at-a-time walk; results are deterministic per seed
at any K and any thread count.

The `online` command runs the event-driven engine (Poisson arrivals,
exponential sojourns, per-epoch warm-started re-solves) and writes one
JSON epoch report per line to stdout.

The `online` command either takes engine flags directly or a declarative
`--scenario` spec, whose `[online]` section, churn, admission and
`[[timeline]]` events (outages, flash crowds, load ramps, hotspot
drift) drive the run.

The `loadtest` command runs the closed-loop service harness: it
binary-searches the maximum sustainable arrival rate at a p99
decision-latency SLO against the micro-batching scheduler service
(lock-free snapshot reads, degradation tiers) and writes the verdict
to `--out` (default `BENCH_service.json`). `--scenario` supplies the
scenario template from a declarative spec; `--quick` (or the
`TSAJS_BENCH_QUICK` environment variable) selects the CI-scale preset.
`--jsonl` streams the chosen probe's per-batch reports; `--metrics`
dumps the Prometheus text exposition.

The `conformance` command sweeps seeded fuzzed instances through the
invariant oracle, the solver differential panel and online seed-replay,
prints a JSON verdict report and exits non-zero on any violation.
With `--artifacts DIR`, every violation is written as a replayable
explicit `.toml` spec under DIR.

The `corpus` command runs every `*.toml` spec in a directory (default
`scenarios/`) and checks each spec's `[expect]` assertions.";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a scenario JSON file.
    Generate {
        /// Generation parameters.
        params: ExperimentParams,
        /// RNG seed.
        seed: u64,
        /// Output path.
        out: PathBuf,
    },
    /// Solve a scenario file with one solver.
    Solve {
        /// Scenario JSON path.
        scenario: PathBuf,
        /// Solver name.
        solver: String,
        /// Solver seed.
        seed: u64,
        /// Worker-pool cap for parallel solvers (`None` = auto).
        threads: Option<usize>,
        /// Speculative batch width for the annealing solvers (`None` = 1).
        batch: Option<usize>,
        /// Warm shard re-solves to chain after the cold solve under a
        /// deterministic ~10% churn per repeat (shard solver only).
        warm_resolves: Option<usize>,
        /// Optional JSON report path.
        report: Option<PathBuf>,
    },
    /// Run every solver on a scenario file.
    Compare {
        /// Scenario JSON path.
        scenario: PathBuf,
        /// Solver seed.
        seed: u64,
        /// Worker-pool cap for parallel solvers (`None` = auto).
        threads: Option<usize>,
        /// Speculative batch width for the annealing solvers (`None` = 1).
        batch: Option<usize>,
    },
    /// Solve a scenario file and write the schedule as an SVG figure.
    Render {
        /// Scenario JSON path (must carry user positions).
        scenario: PathBuf,
        /// SVG output path.
        out: PathBuf,
        /// Solver name.
        solver: String,
        /// Solver seed.
        seed: u64,
        /// Worker-pool cap for parallel solvers (`None` = auto).
        threads: Option<usize>,
    },
    /// Summarize a scenario file (dimensions, radio health, local costs).
    Inspect {
        /// Scenario file path (snapshot JSON or declarative spec).
        scenario: PathBuf,
        /// Materialization seed for declarative specs.
        seed: u64,
    },
    /// Event-driven online run with churn; one JSON epoch report per line.
    Online {
        /// Declarative spec driving the run (conflicts with the engine
        /// flags below; `--epochs`/`--seed` stay available).
        scenario: Option<PathBuf>,
        /// Initial population (arrives at t = 0).
        users: usize,
        /// Scheduling epochs to run (`None` = 20, or the spec's count).
        epochs: Option<usize>,
        /// Number of cells / MEC servers.
        servers: usize,
        /// Poisson arrival rate in users per second.
        arrival_rate: f64,
        /// Mean exponential sojourn in seconds.
        mean_sojourn: f64,
        /// Simulated seconds between scheduling epochs.
        epoch_secs: f64,
        /// Warm-refresh proposal budget.
        budget: u64,
        /// Cold-solve every epoch instead of warm-starting.
        cold: bool,
        /// Scheduled-population cap (admission control); `None` admits all.
        capacity: Option<usize>,
        /// Overflow handling at the cap: `reject` or `force-local`.
        admission: String,
        /// Seed.
        seed: u64,
        /// Worker-pool cap for tempered warm re-solves (`None` = auto).
        threads: Option<usize>,
    },
    /// Closed-loop service loadtest: binary-search the maximum
    /// sustainable arrival rate at a p99 decision-latency SLO.
    Loadtest {
        /// Declarative spec supplying the scenario template (`None` =
        /// paper defaults).
        scenario: Option<PathBuf>,
        /// Standing population prefilled before the clock starts.
        users: Option<usize>,
        /// p99 decision-latency SLO in milliseconds.
        slo_ms: Option<f64>,
        /// Rate-search floor in Hz.
        rate_lo: Option<f64>,
        /// Rate-search ceiling in Hz.
        rate_hi: Option<f64>,
        /// Wall-clock seconds per probe.
        probe_secs: Option<f64>,
        /// Binary-search refinement probes.
        refine: Option<usize>,
        /// Micro-batch size bound.
        batch_size: Option<usize>,
        /// Micro-batch age bound in milliseconds.
        batch_age_ms: Option<f64>,
        /// Ingestion-queue bound (the backpressure surface).
        queue_capacity: Option<usize>,
        /// Worker-pool cap for the service solve loop (`None` = auto).
        threads: Option<usize>,
        /// Seed for the offered-load processes and the service.
        seed: u64,
        /// Force the CI-scale preset (also via `TSAJS_BENCH_QUICK`).
        quick: bool,
        /// Verdict path (default `BENCH_service.json`).
        out: PathBuf,
        /// Stream the chosen probe's per-batch JSONL reports here.
        jsonl: Option<PathBuf>,
        /// Dump the Prometheus text exposition here.
        metrics: Option<PathBuf>,
    },
    /// Seeded conformance sweep; emits a JSON verdict report.
    Conformance {
        /// Number of fuzzed scenario seeds to sweep.
        seeds: u64,
        /// First seed of the sweep.
        base_seed: u64,
        /// Use the nightly deep profile instead of the standard gate.
        deep: bool,
        /// Optional JSON report path (also printed to stdout).
        out: Option<PathBuf>,
        /// Directory for replayable violation artifacts (`.toml` specs).
        artifacts: Option<PathBuf>,
    },
    /// Run a directory of scenario specs and check their expectations.
    Corpus {
        /// Directory holding `*.toml` specs.
        dir: PathBuf,
        /// Print per-spec assertion counts even when green.
        verbose: bool,
    },
    /// Dynamic mobility simulation with per-epoch re-scheduling.
    Simulate {
        /// Number of users.
        users: usize,
        /// Scheduling epochs to run.
        epochs: usize,
        /// Mobility profile name.
        mobility: String,
        /// Solver name.
        solver: String,
        /// Seed.
        seed: u64,
        /// Worker-pool cap for parallel solvers (`None` = auto).
        threads: Option<usize>,
    },
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, CliError> {
    iter.next()
        .ok_or_else(|| CliError::Usage(format!("flag {flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid value `{value}` for {flag}")))
}

fn parse_threads(value: &str) -> Result<usize, CliError> {
    let n: usize = parse_num("--threads", value)?;
    if n == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    Ok(n)
}

fn parse_batch(value: &str) -> Result<usize, CliError> {
    let n: usize = parse_num("--batch", value)?;
    if n == 0 {
        return Err(CliError::Usage("--batch must be at least 1".into()));
    }
    Ok(n)
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown commands/flags, missing values
/// or unparseable numbers.
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<Command, CliError> {
    let mut iter = args.iter().map(|s| s.as_ref());
    let command = iter
        .next()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    match command {
        "generate" => {
            let mut params = ExperimentParams::paper_default().with_users(20);
            let mut seed = 0u64;
            let mut out: Option<PathBuf> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--users" => params.num_users = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--servers" => {
                        params.num_servers = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--subchannels" => {
                        params.num_subchannels = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--workload-mcycles" => {
                        let w: f64 = parse_num(flag, take_value(flag, &mut iter)?)?;
                        params.task_workload = Cycles::from_mega(w);
                    }
                    "--data-kb" => {
                        let d: f64 = parse_num(flag, take_value(flag, &mut iter)?)?;
                        params.task_data = Bits::from_kilobytes(d);
                    }
                    "--beta-time" => {
                        params.beta_time = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--output-kb" => {
                        let d: f64 = parse_num(flag, take_value(flag, &mut iter)?)?;
                        params.task_output = Some(Bits::from_kilobytes(d));
                    }
                    "--downlink-mbps" => {
                        let r: f64 = parse_num(flag, take_value(flag, &mut iter)?)?;
                        params.downlink_rate = Some(BitsPerSecond::new(r * 1e6));
                    }
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            let out = out.ok_or_else(|| CliError::Usage("generate requires --out".into()))?;
            if params.task_output.is_some() != params.downlink_rate.is_some() {
                return Err(CliError::Usage(
                    "--output-kb and --downlink-mbps must be given together".into(),
                ));
            }
            Ok(Command::Generate { params, seed, out })
        }
        "solve" => {
            let mut scenario: Option<PathBuf> = None;
            let mut solver = "tsajs".to_string();
            let mut seed = 0u64;
            let mut threads: Option<usize> = None;
            let mut batch: Option<usize> = None;
            let mut warm_resolves: Option<usize> = None;
            let mut report: Option<PathBuf> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--scenario" => scenario = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--solver" => solver = take_value(flag, &mut iter)?.to_string(),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--threads" => threads = Some(parse_threads(take_value(flag, &mut iter)?)?),
                    "--batch" => batch = Some(parse_batch(take_value(flag, &mut iter)?)?),
                    "--warm-resolves" => {
                        let k: usize = parse_num(flag, take_value(flag, &mut iter)?)?;
                        if k == 0 {
                            return Err(CliError::Usage(
                                "--warm-resolves must be at least 1".into(),
                            ));
                        }
                        warm_resolves = Some(k);
                    }
                    "--report" => report = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            let scenario =
                scenario.ok_or_else(|| CliError::Usage("solve requires --scenario".into()))?;
            if warm_resolves.is_some()
                && !matches!(
                    solver.to_ascii_lowercase().as_str(),
                    "shard" | "tsajs-shard"
                )
            {
                return Err(CliError::Usage(
                    "--warm-resolves is only supported by the shard solver".into(),
                ));
            }
            Ok(Command::Solve {
                scenario,
                solver,
                seed,
                threads,
                batch,
                warm_resolves,
                report,
            })
        }
        "compare" => {
            let mut scenario: Option<PathBuf> = None;
            let mut seed = 0u64;
            let mut threads: Option<usize> = None;
            let mut batch: Option<usize> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--scenario" => scenario = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--threads" => threads = Some(parse_threads(take_value(flag, &mut iter)?)?),
                    "--batch" => batch = Some(parse_batch(take_value(flag, &mut iter)?)?),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            let scenario =
                scenario.ok_or_else(|| CliError::Usage("compare requires --scenario".into()))?;
            Ok(Command::Compare {
                scenario,
                seed,
                threads,
                batch,
            })
        }
        "render" => {
            let mut scenario: Option<PathBuf> = None;
            let mut out: Option<PathBuf> = None;
            let mut solver = "tsajs".to_string();
            let mut seed = 0u64;
            let mut threads: Option<usize> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--scenario" => scenario = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--solver" => solver = take_value(flag, &mut iter)?.to_string(),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--threads" => threads = Some(parse_threads(take_value(flag, &mut iter)?)?),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Render {
                scenario: scenario
                    .ok_or_else(|| CliError::Usage("render requires --scenario".into()))?,
                out: out.ok_or_else(|| CliError::Usage("render requires --out".into()))?,
                solver,
                seed,
                threads,
            })
        }
        "inspect" => {
            let mut scenario: Option<PathBuf> = None;
            let mut seed = 0u64;
            while let Some(flag) = iter.next() {
                match flag {
                    "--scenario" => scenario = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            let scenario =
                scenario.ok_or_else(|| CliError::Usage("inspect requires --scenario".into()))?;
            Ok(Command::Inspect { scenario, seed })
        }
        "simulate" => {
            let mut users = 20usize;
            let mut epochs = 10usize;
            let mut mobility = "pedestrian".to_string();
            let mut solver = "tsajs".to_string();
            let mut seed = 0u64;
            let mut threads: Option<usize> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--users" => users = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--epochs" => epochs = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--mobility" => mobility = take_value(flag, &mut iter)?.to_string(),
                    "--solver" => solver = take_value(flag, &mut iter)?.to_string(),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--threads" => threads = Some(parse_threads(take_value(flag, &mut iter)?)?),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Simulate {
                users,
                epochs,
                mobility,
                solver,
                seed,
                threads,
            })
        }
        "online" => {
            let mut scenario: Option<PathBuf> = None;
            let mut users = 30usize;
            let mut epochs: Option<usize> = None;
            let mut servers = ExperimentParams::paper_default().num_servers;
            let mut arrival_rate = 0.3f64;
            let mut mean_sojourn = 100.0f64;
            let mut epoch_secs = 10.0f64;
            let mut budget = 3_000u64;
            let mut cold = false;
            let mut capacity: Option<usize> = None;
            let mut admission = "reject".to_string();
            let mut seed = 0u64;
            let mut threads: Option<usize> = None;
            // Engine flags a declarative spec supersedes; mixing them with
            // --scenario is ambiguous and rejected below. Execution knobs
            // (--epochs, --seed, --threads) combine freely with a spec.
            let mut engine_flags: Vec<&str> = Vec::new();
            while let Some(flag) = iter.next() {
                match flag {
                    "--scenario" => scenario = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--users" => users = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--epochs" => epochs = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--servers" => servers = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--arrival-rate" => {
                        arrival_rate = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--mean-sojourn" => {
                        mean_sojourn = parse_num(flag, take_value(flag, &mut iter)?)?
                    }
                    "--epoch-secs" => epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--budget" => budget = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--cold" => cold = true,
                    "--capacity" => capacity = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--admission" => admission = take_value(flag, &mut iter)?.to_string(),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--threads" => threads = Some(parse_threads(take_value(flag, &mut iter)?)?),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
                if !matches!(flag, "--scenario" | "--epochs" | "--seed" | "--threads") {
                    engine_flags.push(flag);
                }
            }
            if scenario.is_some() && !engine_flags.is_empty() {
                return Err(CliError::Usage(format!(
                    "--scenario conflicts with {}: the spec defines the run \
                     (only --epochs, --seed and --threads combine with it)",
                    engine_flags.join(", ")
                )));
            }
            if !matches!(admission.as_str(), "reject" | "force-local") {
                return Err(CliError::Usage(format!(
                    "unknown admission policy `{admission}` (reject|force-local)"
                )));
            }
            Ok(Command::Online {
                scenario,
                users,
                epochs,
                servers,
                arrival_rate,
                mean_sojourn,
                epoch_secs,
                budget,
                cold,
                capacity,
                admission,
                seed,
                threads,
            })
        }
        "loadtest" => {
            let mut scenario: Option<PathBuf> = None;
            let mut users: Option<usize> = None;
            let mut slo_ms: Option<f64> = None;
            let mut rate_lo: Option<f64> = None;
            let mut rate_hi: Option<f64> = None;
            let mut probe_secs: Option<f64> = None;
            let mut refine: Option<usize> = None;
            let mut batch_size: Option<usize> = None;
            let mut batch_age_ms: Option<f64> = None;
            let mut queue_capacity: Option<usize> = None;
            let mut threads: Option<usize> = None;
            let mut seed = 0u64;
            let mut quick = false;
            let mut out = PathBuf::from("BENCH_service.json");
            let mut jsonl: Option<PathBuf> = None;
            let mut metrics: Option<PathBuf> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--scenario" => scenario = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--users" => users = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--slo-ms" => slo_ms = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--rate-lo" => rate_lo = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--rate-hi" => rate_hi = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--probe-secs" => {
                        probe_secs = Some(parse_num(flag, take_value(flag, &mut iter)?)?)
                    }
                    "--refine" => refine = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--batch-size" => {
                        batch_size = Some(parse_num(flag, take_value(flag, &mut iter)?)?)
                    }
                    "--batch-age-ms" => {
                        batch_age_ms = Some(parse_num(flag, take_value(flag, &mut iter)?)?)
                    }
                    "--queue-capacity" => {
                        queue_capacity = Some(parse_num(flag, take_value(flag, &mut iter)?)?)
                    }
                    "--threads" => threads = Some(parse_threads(take_value(flag, &mut iter)?)?),
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--quick" => quick = true,
                    "--out" => out = PathBuf::from(take_value(flag, &mut iter)?),
                    "--jsonl" => jsonl = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--metrics" => metrics = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Loadtest {
                scenario,
                users,
                slo_ms,
                rate_lo,
                rate_hi,
                probe_secs,
                refine,
                batch_size,
                batch_age_ms,
                queue_capacity,
                threads,
                seed,
                quick,
                out,
                jsonl,
                metrics,
            })
        }
        "conformance" => {
            let mut seeds: Option<u64> = None;
            let mut base_seed = 0u64;
            let mut deep = false;
            let mut out: Option<PathBuf> = None;
            let mut artifacts: Option<PathBuf> = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--seeds" => seeds = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
                    "--seed" => base_seed = parse_num(flag, take_value(flag, &mut iter)?)?,
                    "--deep" => deep = true,
                    "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    "--artifacts" => artifacts = Some(PathBuf::from(take_value(flag, &mut iter)?)),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            // Default seed count follows the chosen profile.
            let seeds = seeds.unwrap_or_else(|| {
                if deep {
                    ConformanceConfig::deep().seeds
                } else {
                    ConformanceConfig::standard().seeds
                }
            });
            if seeds == 0 {
                return Err(CliError::Usage("--seeds must be at least 1".into()));
            }
            Ok(Command::Conformance {
                seeds,
                base_seed,
                deep,
                out,
                artifacts,
            })
        }
        "corpus" => {
            let mut dir = PathBuf::from("scenarios");
            let mut verbose = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--dir" => dir = PathBuf::from(take_value(flag, &mut iter)?),
                    "--verbose" => verbose = true,
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Corpus { dir, verbose })
        }
        "--help" | "-h" | "help" => Err(CliError::Usage("help requested".into())),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Builds a solver by name.
///
/// `threads` caps the worker pool of the parallel solvers (tempering,
/// multi-start, exhaustive); `None` defers to `TSAJS_THREADS` and the
/// machine's available parallelism. Thread count never changes results.
///
/// `batch` sets the speculative proposal batch width of the annealing
/// solvers (tsajs, tempering); `None` keeps the paper's one-proposal-at-
/// a-time walk (K=1). The flag is ignored by the non-annealing baselines.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for an unknown solver name.
pub fn build_solver(
    name: &str,
    seed: u64,
    threads: Option<usize>,
    batch: Option<usize>,
) -> Result<Box<dyn Solver>, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "tsajs" => {
            let mut config = TtsaConfig::paper_default().with_seed(seed);
            if let Some(k) = batch {
                config = config.with_batch_width(k);
            }
            let mut solver = TsajsSolver::new(config);
            if let Some(n) = threads {
                solver = solver.with_threads(n);
            }
            Box::new(solver)
        }
        "tempering" | "tsajs-pt" => {
            let mut config = TtsaConfig::paper_default().with_seed(seed);
            if let Some(k) = batch {
                config = config.with_batch_width(k);
            }
            let mut solver =
                TsajsSolver::new(config).with_tempering(TemperingConfig::paper_default());
            if let Some(n) = threads {
                solver = solver.with_threads(n);
            }
            Box::new(solver)
        }
        "shard" | "tsajs-shard" => {
            // The shard engine has no batched-proposal mode; its inner
            // cluster solves run the tempering engine at K=1.
            if batch.is_some() {
                return Err(CliError::Usage(
                    "--batch is not supported by the shard solver".into(),
                ));
            }
            let mut solver = ShardSolver::new(ShardConfig::paper_default().with_seed(seed));
            if let Some(n) = threads {
                solver = solver.with_threads(n);
            }
            Box::new(solver)
        }
        "hjtora" => Box::new(HJtoraSolver::new()),
        "greedy" => Box::new(GreedySolver::new()),
        "localsearch" | "local-search" => Box::new(LocalSearchSolver::with_seed(seed)),
        "random" => Box::new(RandomSolver::with_seed(seed)),
        "exhaustive" => {
            let mut solver = ExhaustiveSolver::new();
            if let Some(n) = threads {
                solver = solver.with_threads(n);
            }
            Box::new(solver)
        }
        "alllocal" | "all-local" => Box::new(AllLocalSolver::new()),
        other => return Err(CliError::Usage(format!("unknown solver `{other}`"))),
    })
}

/// Whether a scenario file holds a *declarative* spec (the versioned
/// TOML/JSON `ScenarioSpec`) rather than a legacy JSON snapshot: `.toml`
/// always does, `.json` does iff it carries a `schema_version` field.
fn is_declarative(path: &Path, text: &str) -> bool {
    if path.extension().and_then(|e| e.to_str()) == Some("toml") {
        return true;
    }
    match serde_json::from_str::<serde_json::Value>(text) {
        Ok(serde_json::Value::Object(entries)) => {
            entries.iter().any(|(k, _)| k == "schema_version")
        }
        _ => false,
    }
}

/// Loads a declarative spec from a TOML or JSON file.
///
/// # Errors
///
/// I/O and spec decode/validation errors.
pub fn load_declarative_spec(path: &Path) -> Result<mec_scenario_spec::ScenarioSpec, CliError> {
    Ok(mec_scenario_spec::load_spec(path)?)
}

/// Loads a scenario file: a declarative spec (materialized at `seed`) or
/// a legacy JSON snapshot (seed-independent).
///
/// # Errors
///
/// I/O, JSON, spec and model-validation errors.
pub fn load_scenario(path: &Path, seed: u64) -> Result<Scenario, CliError> {
    let text = std::fs::read_to_string(path)?;
    if is_declarative(path, &text) {
        let spec = load_declarative_spec(path)?;
        return Ok(spec.materialize(seed)?);
    }
    let spec: ScenarioSpec = serde_json::from_str(&text)?;
    Ok(spec.into_scenario()?)
}

/// `solve --solver shard --warm-resolves K`: one cold sharded solve,
/// then `K` warm re-solves through [`ShardSolver::resolve_from`] under a
/// deterministic rolling ~10% churn — in repeat `r`, every user whose
/// index is ≡ `r` (mod 10) departs and re-arrives, everyone else
/// survives in place. The printed objectives are a pure function of the
/// scenario and seed, bit-identical at any `--threads` value; the CI
/// shard-smoke job diffs exactly that.
fn run_warm_resolves(
    scenario: &Scenario,
    seed: u64,
    threads: Option<usize>,
    repeats: usize,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut solver = ShardSolver::new(ShardConfig::paper_default().with_seed(seed));
    if let Some(n) = threads {
        solver = solver.with_threads(n);
    }
    let cold = solver.solve(scenario)?;
    writeln!(out, "solver      : {}", solver.name())?;
    writeln!(out, "cold        : {:.6}", cold.utility)?;
    for r in 1..=repeats {
        let prev = solver
            .last_outcome()
            .expect("solve records an outcome")
            .clone();
        let map: Vec<Option<UserId>> = (0..scenario.num_users())
            .map(|v| {
                if v % 10 == r % 10 {
                    None
                } else {
                    Some(UserId::new(v))
                }
            })
            .collect();
        let solution = solver.resolve_from(scenario, &prev, &map)?;
        let stats = solver.last_stats().expect("stats recorded");
        writeln!(
            out,
            "warm {r:<3}    : {:.6} (resolved {}, reused {})",
            solution.utility, stats.resolved_clusters, stats.reused_clusters
        )?;
    }
    Ok(())
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Propagates usage, model, I/O and JSON errors.
pub fn run(command: Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match command {
        Command::Generate {
            params,
            seed,
            out: path,
        } => {
            let (scenario, positions) =
                ScenarioGenerator::new(params).generate_with_positions(seed)?;
            let spec = ScenarioSpec::from_scenario(&scenario).with_positions(positions)?;
            std::fs::write(&path, serde_json::to_string_pretty(&spec)?)?;
            writeln!(
                out,
                "wrote scenario (U={}, S={}, N={}, seed={}) to {}",
                scenario.num_users(),
                scenario.num_servers(),
                scenario.num_subchannels(),
                seed,
                path.display()
            )?;
            Ok(())
        }
        Command::Solve {
            scenario,
            solver,
            seed,
            threads,
            batch,
            warm_resolves,
            report,
        } => {
            let scenario = load_scenario(&scenario, seed)?;
            if let Some(repeats) = warm_resolves {
                return run_warm_resolves(&scenario, seed, threads, repeats, out);
            }
            let mut solver = build_solver(&solver, seed, threads, batch)?;
            let solution = solver.solve(&scenario)?;
            let evaluation = solution.evaluate(&scenario)?;
            writeln!(out, "solver      : {}", solver.name())?;
            writeln!(out, "utility     : {:.6}", solution.utility)?;
            writeln!(
                out,
                "offloaded   : {}/{}",
                evaluation.num_offloaded,
                scenario.num_users()
            )?;
            writeln!(
                out,
                "avg delay   : {:.4} s",
                evaluation.average_completion_time().as_secs()
            )?;
            writeln!(
                out,
                "avg energy  : {:.4} J",
                evaluation.average_energy().as_joules()
            )?;
            writeln!(
                out,
                "evals/time  : {} in {:.1} ms",
                solution.stats.objective_evaluations,
                solution.stats.elapsed.as_secs_f64() * 1e3
            )?;
            if let Some(path) = report {
                let report = SolveReport {
                    solver: solver.name().to_string(),
                    utility: solution.utility,
                    decision: solution.assignment.clone(),
                    evaluation,
                };
                std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
                writeln!(out, "report      : {}", path.display())?;
            }
            Ok(())
        }
        Command::Render {
            scenario,
            out: out_path,
            solver,
            seed,
            threads,
        } => {
            let text = std::fs::read_to_string(&scenario)?;
            let spec: ScenarioSpec = serde_json::from_str(&text)?;
            let positions = spec.positions.clone().ok_or_else(|| {
                CliError::Usage(
                    "this scenario file carries no user positions; regenerate it with \
                     a current `tsajs-sim generate`"
                        .into(),
                )
            })?;
            let scenario = spec.into_scenario()?;
            let mut solver = build_solver(&solver, seed, threads, None)?;
            let solution = solver.solve(&scenario)?;
            // Rebuild the layout from the paper's ISD; stations in specs
            // always come from the hexagonal generator.
            let layout = mec_topology::NetworkLayout::hexagonal(
                scenario.num_servers(),
                mec_types::constants::INTER_SITE_DISTANCE,
            )?;
            let svg = SvgScene::new(&layout)
                .with_users(&positions)
                .with_assignment(&solution.assignment)
                .render();
            std::fs::write(&out_path, &svg)?;
            writeln!(
                out,
                "wrote {} ({} bytes), J = {:.4}, {}/{} offloaded",
                out_path.display(),
                svg.len(),
                solution.utility,
                solution.assignment.num_offloaded(),
                scenario.num_users()
            )?;
            Ok(())
        }
        Command::Inspect { scenario, seed } => {
            let scenario = load_scenario(&scenario, seed)?;
            writeln!(out, "users        : {}", scenario.num_users())?;
            writeln!(out, "servers      : {}", scenario.num_servers())?;
            writeln!(out, "subchannels  : {}", scenario.num_subchannels())?;
            writeln!(
                out,
                "bandwidth    : {:.1} MHz ({:.2} MHz per subchannel)",
                scenario.ofdma().bandwidth().as_mega(),
                scenario.ofdma().subchannel_width().as_mega()
            )?;
            writeln!(
                out,
                "noise        : {:.1} dBm",
                scenario.noise().to_dbm().as_dbm()
            )?;
            match scenario.downlink() {
                Some(rate) => writeln!(out, "downlink     : {:.1} Mbit/s", rate.as_bps() / 1e6)?,
                None => writeln!(out, "downlink     : not modeled")?,
            }
            let gains = scenario.gains();
            writeln!(
                out,
                "best-link dB : p10 {:.1} / p50 {:.1} / p90 {:.1}",
                gains.best_gain_percentile_db(0.1),
                gains.best_gain_percentile_db(0.5),
                gains.best_gain_percentile_db(0.9)
            )?;
            // Aggregate local costs.
            let (mut t_sum, mut e_sum) = (0.0, 0.0);
            for u in scenario.user_ids() {
                let lc = scenario.local_cost(u);
                t_sum += lc.time.as_secs();
                e_sum += lc.energy.as_joules();
            }
            let n = scenario.num_users() as f64;
            writeln!(
                out,
                "local cost   : avg {:.3} s / {:.3} J per task",
                t_sum / n,
                e_sum / n
            )?;
            Ok(())
        }
        Command::Simulate {
            users,
            epochs,
            mobility,
            solver,
            seed,
            threads,
        } => {
            let profile = match mobility.as_str() {
                "pedestrian" => MobilityConfig::pedestrian(),
                "vehicular" => MobilityConfig::vehicular(),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown mobility profile `{other}` (pedestrian|vehicular)"
                    )))
                }
            };
            // Validate the name eagerly so a bad one errors before the run.
            build_solver(&solver, seed, threads, None)?;
            let params = ExperimentParams::paper_default().with_users(users);
            let mut sim = DynamicSimulation::new(params, profile, seed)?;
            let solver_name = solver.clone();
            let history = sim.run(epochs, |epoch_seed| {
                build_solver(&solver_name, epoch_seed, threads, None)
                    .expect("solver name validated before the run")
            })?;
            writeln!(
                out,
                "epoch | utility | offloaded | handovers | reassignments"
            )?;
            for e in &history.epochs {
                writeln!(
                    out,
                    "{:>5} | {:>7.3} | {:>9} | {:>9} | {:>13}",
                    e.epoch, e.utility, e.num_offloaded, e.handovers, e.reassignments
                )?;
            }
            writeln!(out, "avg utility: {:.3}", history.average_utility())?;
            Ok(())
        }
        Command::Online {
            scenario,
            users,
            epochs,
            servers,
            arrival_rate,
            mean_sojourn,
            epoch_secs,
            budget,
            cold,
            capacity,
            admission,
            seed,
            threads,
        } => {
            if let Some(path) = scenario {
                // A declarative spec carries the whole run: population,
                // churn, admission, SLA and the event timeline.
                let spec = load_declarative_spec(&path)?;
                let mut plan = spec.online_plan(seed)?;
                if threads.is_some() {
                    plan.engine.set_threads(threads);
                }
                let epochs = epochs.unwrap_or(plan.epochs);
                for _ in 0..epochs {
                    let report = plan.engine.step()?;
                    writeln!(out, "{}", serde_json::to_string(&report)?)?;
                }
                return Ok(());
            }
            let epochs = epochs.unwrap_or(20);
            let policy: Box<dyn AdmissionPolicy> = match (capacity, admission.as_str()) {
                (None, _) => Box::new(AdmitAll),
                (Some(cap), "reject") => Box::new(CapacityGate::rejecting(cap)),
                (Some(cap), "force-local") => Box::new(CapacityGate::forcing_local(cap)),
                (_, other) => {
                    return Err(CliError::Usage(format!(
                        "unknown admission policy `{other}` (reject|force-local)"
                    )))
                }
            };
            let mut params = ExperimentParams::paper_default();
            params.num_servers = servers;
            let mode = if cold {
                ResolveMode::Cold
            } else {
                ResolveMode::warm(budget)
            };
            let config = OnlineConfig::pedestrian()
                .with_epoch_duration(Seconds::new(epoch_secs))
                .with_mode(mode)
                .with_threads(threads);
            let churn = PoissonChurn::new(users, arrival_rate, Seconds::new(mean_sojourn))?;
            let horizon = Seconds::new(epoch_secs * epochs as f64);
            let mut engine = OnlineEngine::new(
                params,
                config,
                Box::new(TraceChurn::poisson(&churn, horizon, seed)),
                policy,
                seed,
            )?;
            for _ in 0..epochs {
                let report = engine.step()?;
                writeln!(out, "{}", serde_json::to_string(&report)?)?;
            }
            Ok(())
        }
        Command::Loadtest {
            scenario,
            users,
            slo_ms,
            rate_lo,
            rate_hi,
            probe_secs,
            refine,
            batch_size,
            batch_age_ms,
            queue_capacity,
            threads,
            seed,
            quick,
            out: report_path,
            jsonl,
            metrics,
        } => {
            use mec_service::{run_loadtest, BatchPolicy, LoadtestConfig, ServiceConfig};
            // The quick preset (CI scale) engages via --quick or the
            // bench harness's TSAJS_BENCH_QUICK convention.
            let quick = quick || std::env::var("TSAJS_BENCH_QUICK").is_ok();
            let mut cfg = if quick {
                LoadtestConfig::quick(seed)
            } else {
                let mut cfg = LoadtestConfig::quick(seed);
                cfg.service = ServiceConfig::new(ExperimentParams::paper_default(), seed);
                cfg.initial_users = 20;
                cfg.probe_secs = 5.0;
                cfg.refine_steps = 5;
                cfg
            };
            if let Some(path) = &scenario {
                // A declarative spec supplies the scenario template
                // (topology, radio, task, preferences); the service
                // re-solves it at the live population per batch.
                let spec = load_declarative_spec(path)?;
                cfg.service.params = spec.to_experiment_params()?;
            }
            cfg.service.threads = threads;
            cfg.service.seed = seed;
            if let Some(n) = batch_size {
                cfg.service.batch.max_size = n;
            }
            if let Some(ms) = batch_age_ms {
                cfg.service.batch = BatchPolicy {
                    max_size: cfg.service.batch.max_size,
                    max_age: Seconds::new(ms / 1e3),
                };
            }
            if let Some(n) = users {
                cfg.initial_users = n;
            }
            if let Some(ms) = slo_ms {
                cfg.slo_p99 = Seconds::new(ms / 1e3);
            }
            if let Some(hz) = rate_lo {
                cfg.rate_lo_hz = hz;
            }
            if let Some(hz) = rate_hi {
                cfg.rate_hi_hz = hz;
            }
            if let Some(s) = probe_secs {
                cfg.probe_secs = s;
            }
            if let Some(k) = refine {
                cfg.refine_steps = k;
            }
            if let Some(n) = queue_capacity {
                cfg.queue_capacity = n;
            }
            let mut lines: Vec<String> = Vec::new();
            let outcome = run_loadtest(&cfg, |probe| {
                lines.push(format!(
                    "probe {:>8.1} Hz : p99 {:>8.2} ms, {} decided, {} rejected, \
                     tiers {:.0}/{:.0}/{:.0}% -> {}",
                    probe.rate_hz,
                    probe.p99_ms,
                    probe.decided,
                    probe.rejected,
                    probe.tier_occupancy[0] * 100.0,
                    probe.tier_occupancy[1] * 100.0,
                    probe.tier_occupancy[2] * 100.0,
                    if probe.sustained {
                        "sustained"
                    } else {
                        "failed"
                    }
                ));
            })?;
            for line in &lines {
                writeln!(out, "{line}")?;
            }
            writeln!(
                out,
                "max sustainable rate: {:.1} Hz at p99 <= {:.1} ms ({} probes)",
                outcome.report.max_sustainable_hz,
                outcome.report.slo_p99_ms,
                outcome.report.probes.len()
            )?;
            std::fs::write(&report_path, serde_json::to_string_pretty(&outcome.report)?)?;
            writeln!(out, "verdict     : {}", report_path.display())?;
            if let Some(path) = jsonl {
                let mut text = String::new();
                for report in &outcome.final_reports {
                    text.push_str(&report.to_jsonl());
                    text.push('\n');
                }
                std::fs::write(&path, text)?;
                writeln!(out, "jsonl       : {}", path.display())?;
            }
            if let Some(path) = metrics {
                std::fs::write(&path, outcome.final_metrics.prometheus_text())?;
                writeln!(out, "metrics     : {}", path.display())?;
            }
            Ok(())
        }
        Command::Conformance {
            seeds,
            base_seed,
            deep,
            out: report_path,
            artifacts,
        } => {
            let base = if deep {
                ConformanceConfig::deep()
            } else {
                ConformanceConfig::standard()
            };
            let config = base.with_seeds(seeds).with_base_seed(base_seed);
            let report = run_conformance(&config);
            let json = serde_json::to_string_pretty(&report)?;
            writeln!(out, "{json}")?;
            if let Some(path) = report_path {
                std::fs::write(&path, &json)?;
            }
            if let Some(dir) = artifacts {
                let written = write_violation_artifacts(&report, &config, &dir)?;
                for path in &written {
                    writeln!(out, "artifact: {}", path.display())?;
                }
            }
            if report.passed {
                Ok(())
            } else {
                Err(CliError::Conformance(report.total_violations))
            }
        }
        Command::Corpus { dir, verbose } => {
            let report = mec_scenario_spec::run_corpus(&dir)?;
            if report.is_empty() {
                return Err(CliError::Usage(format!(
                    "no *.toml specs found under {}",
                    dir.display()
                )));
            }
            let mut failing = 0usize;
            for outcome in &report.outcomes {
                match &outcome.report {
                    Ok(r) if r.passed() => {
                        if verbose {
                            writeln!(out, "PASS {} ({} checks)", outcome.file, r.checks)?;
                        } else {
                            writeln!(out, "PASS {}", outcome.file)?;
                        }
                    }
                    _ => {
                        failing += 1;
                        writeln!(out, "FAIL {}", outcome.file)?;
                        for line in outcome.failure_lines() {
                            writeln!(out, "     {line}")?;
                        }
                    }
                }
            }
            writeln!(
                out,
                "{}/{} specs passed",
                report.len() - failing,
                report.len()
            )?;
            if failing == 0 {
                Ok(())
            } else {
                Err(CliError::Corpus(failing))
            }
        }
        Command::Compare {
            scenario,
            seed,
            threads,
            batch,
        } => {
            let scenario = load_scenario(&scenario, seed)?;
            writeln!(
                out,
                "{:<12} {:>12} {:>10} {:>12} {:>12} {:>12}",
                "solver", "utility", "offloaded", "time(ms)", "proposals", "prop/s"
            )?;
            for name in [
                "tsajs",
                "tempering",
                "hjtora",
                "localsearch",
                "greedy",
                "random",
                "alllocal",
            ] {
                let mut solver = build_solver(name, seed, threads, batch)?;
                let solution = solver.solve(&scenario)?;
                let secs = solution.stats.elapsed.as_secs_f64();
                let throughput = if secs > 0.0 {
                    solution.stats.iterations as f64 / secs
                } else {
                    0.0
                };
                writeln!(
                    out,
                    "{:<12} {:>12.6} {:>10} {:>12.2} {:>12} {:>12.0}",
                    solver.name(),
                    solution.utility,
                    solution.assignment.num_offloaded(),
                    secs * 1e3,
                    solution.stats.iterations,
                    throughput
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsajs-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&[
            "generate",
            "--users",
            "8",
            "--servers",
            "3",
            "--subchannels",
            "2",
            "--workload-mcycles",
            "2000",
            "--data-kb",
            "210",
            "--beta-time",
            "0.7",
            "--seed",
            "42",
            "--out",
            "x.json",
        ])
        .unwrap();
        match cmd {
            Command::Generate { params, seed, out } => {
                assert_eq!(params.num_users, 8);
                assert_eq!(params.num_servers, 3);
                assert_eq!(params.num_subchannels, 2);
                assert_eq!(params.task_workload.as_mega(), 2000.0);
                assert!((params.task_data.as_kilobytes() - 210.0).abs() < 1e-9);
                assert_eq!(params.beta_time, 0.7);
                assert_eq!(seed, 42);
                assert_eq!(out, PathBuf::from("x.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_solve_and_compare() {
        let cmd = parse_args(&[
            "solve",
            "--scenario",
            "s.json",
            "--solver",
            "greedy",
            "--seed",
            "3",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                scenario: PathBuf::from("s.json"),
                solver: "greedy".into(),
                seed: 3,
                threads: None,
                batch: None,
                warm_resolves: None,
                report: None,
            }
        );
        let cmd = parse_args(&["compare", "--scenario", "s.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Compare {
                scenario: PathBuf::from("s.json"),
                seed: 0,
                threads: None,
                batch: None,
            }
        );
    }

    #[test]
    fn parses_batch_and_rejects_zero() {
        let cmd = parse_args(&["solve", "--scenario", "s.json", "--batch", "8"]).unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                scenario: PathBuf::from("s.json"),
                solver: "tsajs".into(),
                seed: 0,
                threads: None,
                batch: Some(8),
                warm_resolves: None,
                report: None,
            }
        );
        let cmd = parse_args(&["compare", "--scenario", "s.json", "--batch", "4"]).unwrap();
        assert_eq!(
            cmd,
            Command::Compare {
                scenario: PathBuf::from("s.json"),
                seed: 0,
                threads: None,
                batch: Some(4),
            }
        );
        assert!(matches!(
            parse_args(&["solve", "--scenario", "s.json", "--batch", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&["compare", "--scenario", "s.json", "--batch", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_threads_and_rejects_zero() {
        let cmd = parse_args(&[
            "solve",
            "--scenario",
            "s.json",
            "--solver",
            "tempering",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                scenario: PathBuf::from("s.json"),
                solver: "tempering".into(),
                seed: 0,
                threads: Some(4),
                batch: None,
                warm_resolves: None,
                report: None,
            }
        );
        assert!(matches!(
            parse_args(&["solve", "--scenario", "s.json", "--threads", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&["compare", "--scenario", "s.json", "--threads", "nope"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_downlink_flags_as_a_pair() {
        let cmd = parse_args(&[
            "generate",
            "--users",
            "4",
            "--output-kb",
            "100",
            "--downlink-mbps",
            "50",
            "--out",
            "x.json",
        ])
        .unwrap();
        match cmd {
            Command::Generate { params, .. } => {
                assert!(params.task_output.is_some());
                assert_eq!(params.downlink_rate, Some(BitsPerSecond::new(50.0e6)));
            }
            other => panic!("wrong command {other:?}"),
        }
        // One without the other is a usage error.
        assert!(matches!(
            parse_args(&["generate", "--output-kb", "100", "--out", "x.json"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(matches!(parse_args::<&str>(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(&["frobnicate"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_args(&["solve"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(&["generate", "--users"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&["generate", "--users", "abc", "--out", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&["generate", "--users", "5"]),
            Err(CliError::Usage(_)),
        ));
        assert!(matches!(
            build_solver("nope", 0, None, None),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn generate_solve_compare_end_to_end() {
        let dir = tmp_dir();
        let scenario_path = dir.join("scenario.json");
        let report_path = dir.join("report.json");

        // generate
        let mut buf = Vec::new();
        run(
            parse_args(&[
                "generate",
                "--users",
                "6",
                "--servers",
                "3",
                "--seed",
                "9",
                "--out",
                scenario_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(scenario_path.exists());
        assert!(String::from_utf8(buf).unwrap().contains("U=6"));

        // solve with report
        let mut buf = Vec::new();
        run(
            parse_args(&[
                "solve",
                "--scenario",
                scenario_path.to_str().unwrap(),
                "--solver",
                "greedy",
                "--report",
                report_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Greedy"));
        assert!(text.contains("utility"));
        assert!(report_path.exists());
        // The JSON report parses back, including the decision matrix.
        let text = std::fs::read_to_string(&report_path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["solver"], "Greedy");
        let decision: Assignment = serde_json::from_value(value["decision"].clone()).unwrap();
        assert_eq!(decision.num_users(), 6);
        let eval: mec_system::SystemEvaluation =
            serde_json::from_value(value["evaluation"].clone()).unwrap();
        assert_eq!(eval.users.len(), 6);

        // compare
        let mut buf = Vec::new();
        run(
            parse_args(&["compare", "--scenario", scenario_path.to_str().unwrap()]).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        for name in [
            "TSAJS",
            "TSAJS-PT",
            "hJTORA",
            "LocalSearch",
            "Greedy",
            "Random",
            "AllLocal",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn render_command_writes_an_svg() {
        let dir = tmp_dir();
        let scenario_path = dir.join("render.json");
        let svg_path = dir.join("out.svg");
        run(
            parse_args(&[
                "generate",
                "--users",
                "6",
                "--seed",
                "2",
                "--out",
                scenario_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            parse_args(&[
                "render",
                "--scenario",
                scenario_path.to_str().unwrap(),
                "--solver",
                "greedy",
                "--out",
                svg_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<circle").count(), 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn inspect_command_summarizes_a_scenario() {
        let dir = tmp_dir();
        let path = dir.join("inspect.json");
        run(
            parse_args(&[
                "generate",
                "--users",
                "7",
                "--seed",
                "3",
                "--out",
                path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            parse_args(&["inspect", "--scenario", path.to_str().unwrap()]).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("users        : 7"));
        assert!(text.contains("best-link dB"));
        assert!(text.contains("downlink     : not modeled"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_command_runs_end_to_end() {
        let cmd = parse_args(&[
            "simulate",
            "--users",
            "5",
            "--epochs",
            "3",
            "--mobility",
            "vehicular",
            "--solver",
            "greedy",
            "--seed",
            "2",
        ])
        .unwrap();
        let mut buf = Vec::new();
        run(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("avg utility"));
        assert_eq!(text.lines().count(), 3 + 2, "header + 3 epochs + summary");
        // Bad profile / solver are usage errors before any work happens.
        assert!(matches!(
            run(
                parse_args(&["simulate", "--mobility", "teleport"]).unwrap(),
                &mut Vec::new()
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(
                parse_args(&["simulate", "--solver", "nope"]).unwrap(),
                &mut Vec::new()
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_online() {
        let cmd = parse_args(&[
            "online",
            "--users",
            "12",
            "--epochs",
            "5",
            "--servers",
            "4",
            "--arrival-rate",
            "0.5",
            "--mean-sojourn",
            "80",
            "--epoch-secs",
            "5",
            "--budget",
            "500",
            "--capacity",
            "10",
            "--admission",
            "force-local",
            "--seed",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        match cmd {
            Command::Online {
                scenario,
                users,
                epochs,
                servers,
                arrival_rate,
                mean_sojourn,
                epoch_secs,
                budget,
                cold,
                capacity,
                admission,
                seed,
                threads,
            } => {
                assert_eq!(scenario, None);
                assert_eq!(users, 12);
                assert_eq!(epochs, Some(5));
                assert_eq!(servers, 4);
                assert_eq!(arrival_rate, 0.5);
                assert_eq!(mean_sojourn, 80.0);
                assert_eq!(epoch_secs, 5.0);
                assert_eq!(budget, 500);
                assert!(!cold);
                assert_eq!(capacity, Some(10));
                assert_eq!(admission, "force-local");
                assert_eq!(seed, 3);
                assert_eq!(threads, Some(2));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults and the --cold switch.
        match parse_args(&["online", "--cold"]).unwrap() {
            Command::Online {
                epochs,
                cold,
                capacity,
                admission,
                ..
            } => {
                assert_eq!(epochs, None);
                assert!(cold);
                assert_eq!(capacity, None);
                assert_eq!(admission, "reject");
            }
            other => panic!("wrong command {other:?}"),
        }
        // Bad admission names fail at parse time.
        assert!(matches!(
            parse_args(&["online", "--admission", "teleport"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn online_scenario_flag_conflicts_with_engine_flags() {
        // --scenario plus the execution knobs (--epochs/--seed/--threads)
        // is fine: they change how the run executes, not what it means.
        match parse_args(&[
            "online",
            "--scenario",
            "x.toml",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--threads",
            "1",
        ])
        .unwrap()
        {
            Command::Online {
                scenario,
                epochs,
                seed,
                threads,
                ..
            } => {
                assert_eq!(scenario, Some(PathBuf::from("x.toml")));
                assert_eq!(epochs, Some(3));
                assert_eq!(seed, 7);
                assert_eq!(threads, Some(1));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --scenario plus an engine flag is rejected with a clear message.
        let err = parse_args(&["online", "--scenario", "x.toml", "--users", "9"]).unwrap_err();
        match err {
            CliError::Usage(msg) => {
                assert!(msg.contains("--scenario conflicts with --users"), "{msg}");
            }
            other => panic!("wrong error {other:?}"),
        }
        assert!(matches!(
            parse_args(&["online", "--cold", "--scenario", "x.toml"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn online_command_emits_one_json_report_per_line() {
        let run_once = || {
            let mut buf = Vec::new();
            run(
                parse_args(&[
                    "online",
                    "--users",
                    "5",
                    "--epochs",
                    "3",
                    "--servers",
                    "3",
                    "--seed",
                    "8",
                    "--budget",
                    "150",
                ])
                .unwrap(),
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        };
        let text = run_once();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one line per epoch:\n{text}");
        for (i, line) in lines.iter().enumerate() {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(value["epoch"].as_u64(), Some(i as u64));
            assert!(value["utility"].as_f64().unwrap().is_finite());
            assert!(value.get("warm_started").is_some());
        }
        // Seeded: the JSONL stream reproduces byte-for-byte.
        assert_eq!(text, run_once());
    }

    #[test]
    fn online_jsonl_matches_the_report_schema() {
        use mec_online::OnlineEpochReport;
        let mut buf = Vec::new();
        run(
            parse_args(&[
                "online",
                "--users",
                "4",
                "--epochs",
                "3",
                "--servers",
                "3",
                "--seed",
                "5",
                "--budget",
                "150",
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let counts = [
            "epoch",
            "active_users",
            "scheduled",
            "forced_local",
            "arrivals",
            "departures",
            "rejected",
            "num_offloaded",
            "reassignments",
            "proposals",
            "events_applied",
            "servers_up",
        ];
        let floats = ["time_s", "utility", "deadline_hit_rate"];
        for line in text.lines() {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            let serde_json::Value::Object(entries) = value else {
                panic!("epoch report is not a JSON object: {line}");
            };
            // Field set and order are the declared schema, exactly.
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, OnlineEpochReport::FIELD_NAMES, "in line: {line}");
            for (key, field) in &entries {
                if counts.contains(&key.as_str()) {
                    assert!(field.as_u64().is_some(), "{key} not a count in: {line}");
                } else if floats.contains(&key.as_str()) {
                    assert!(field.as_f64().is_some(), "{key} not numeric in: {line}");
                } else {
                    assert_eq!(key, "warm_started");
                    assert!(
                        matches!(field, serde_json::Value::Bool(_)),
                        "{key} not a bool in: {line}"
                    );
                }
            }
        }
    }

    fn write_spec(path: &Path, spec: &mec_scenario_spec::ScenarioSpec) {
        std::fs::write(path, spec.to_toml_string().unwrap()).unwrap();
    }

    #[test]
    fn solve_and_inspect_accept_declarative_toml_specs() {
        use mec_scenario_spec::ScenarioBuilder;
        let dir = tmp_dir();
        let path = dir.join("declarative.toml");
        let spec = ScenarioBuilder::new("cli-solve")
            .servers(4)
            .users(6)
            .build();
        write_spec(&path, &spec);

        let mut buf = Vec::new();
        run(
            parse_args(&[
                "solve",
                "--scenario",
                path.to_str().unwrap(),
                "--solver",
                "greedy",
                "--seed",
                "11",
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Greedy"), "{text}");
        assert!(text.contains("offloaded   : "), "{text}");

        let mut buf = Vec::new();
        run(
            parse_args(&["inspect", "--scenario", path.to_str().unwrap()]).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("users        : 6"), "{text}");
        assert!(text.contains("servers      : 4"), "{text}");

        // A broken spec surfaces as a spec error with a field path.
        let bad = dir.join("bad.toml");
        std::fs::write(
            &bad,
            "schema_version = 1\nname = \"x\"\n[radio]\nbandwith_hz = 1.0\n",
        )
        .unwrap();
        let err = run(
            parse_args(&["solve", "--scenario", bad.to_str().unwrap()]).unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        match err {
            CliError::Spec(e) => assert!(e.path.contains("bandwith_hz"), "{e}"),
            other => panic!("wrong error {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn online_scenario_spec_drives_the_timeline_end_to_end() {
        use mec_scenario_spec::ScenarioBuilder;
        let dir = tmp_dir();
        let path = dir.join("outage.toml");
        let spec = ScenarioBuilder::new("cli-outage")
            .servers(4)
            .users(6)
            .poisson_churn(0.05, 120.0)
            .online(|o| {
                o.epochs = 4;
                o.warm_budget = Some(150);
                o.min_temperature = Some(1e-2);
            })
            .server_outage(15.0, 1)
            .server_recovery(25.0, 1)
            .try_build()
            .unwrap();
        write_spec(&path, &spec);

        let mut buf = Vec::new();
        run(
            parse_args(&[
                "online",
                "--scenario",
                path.to_str().unwrap(),
                "--seed",
                "5",
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "spec epochs drive the run:\n{text}");
        let servers_up: Vec<u64> = lines
            .iter()
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l).unwrap();
                v["servers_up"].as_u64().unwrap()
            })
            .collect();
        // The outage fires at t=15s (epoch 2's resolve at t=20) and the
        // recovery at t=25s (epoch 3's resolve at t=30).
        assert_eq!(servers_up, vec![4, 4, 3, 4], "in:\n{text}");
        let events: u64 = lines
            .iter()
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l).unwrap();
                v["events_applied"].as_u64().unwrap()
            })
            .sum();
        assert_eq!(events, 2, "in:\n{text}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corpus_command_runs_a_directory_of_specs() {
        use mec_scenario_spec::ScenarioBuilder;
        let dir = tmp_dir().join("corpus");
        std::fs::create_dir_all(&dir).unwrap();
        let good = ScenarioBuilder::new("good")
            .servers(4)
            .users(5)
            .expect(|e| e.users = Some(5))
            .build();
        let bad = ScenarioBuilder::new("bad")
            .servers(4)
            .users(5)
            .expect(|e| e.users = Some(99))
            .build();
        write_spec(&dir.join("good.toml"), &good);
        write_spec(&dir.join("bad.toml"), &bad);

        let mut buf = Vec::new();
        let err = run(
            parse_args(&["corpus", "--dir", dir.to_str().unwrap()]).unwrap(),
            &mut buf,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Corpus(1)), "{err:?}");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("PASS good.toml"), "{text}");
        assert!(text.contains("FAIL bad.toml"), "{text}");
        assert!(text.contains("1/2 specs passed"), "{text}");

        // An empty directory is a usage error, not a silent pass.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            run(
                parse_args(&["corpus", "--dir", empty.to_str().unwrap()]).unwrap(),
                &mut Vec::new()
            ),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn corpus_exit_code_pins_unloadable_and_invalid_specs_as_failures() {
        // Regression pin (ISSUE 8): a spec that cannot even load —
        // malformed TOML or one that fails validation — must surface as a
        // per-case FAIL line and a non-zero exit, exactly like an
        // `[expect]` miss. A corpus run that silently skipped broken
        // files would green-light a rotted corpus.
        use mec_scenario_spec::ScenarioBuilder;
        let dir = tmp_dir().join("corpus-broken");
        std::fs::create_dir_all(&dir).unwrap();
        let good = ScenarioBuilder::new("good")
            .servers(4)
            .users(5)
            .expect(|e| e.users = Some(5))
            .build();
        write_spec(&dir.join("good.toml"), &good);
        std::fs::write(dir.join("malformed.toml"), "schema_version = [not toml").unwrap();
        std::fs::write(
            dir.join("invalid.toml"),
            "schema_version = 1\nname = \"invalid\"\n[topology]\nservers = 4\n\
             [population]\nusers = 0\n",
        )
        .unwrap();

        let mut buf = Vec::new();
        let err = run(
            parse_args(&["corpus", "--dir", dir.to_str().unwrap()]).unwrap(),
            &mut buf,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Corpus(2)), "{err:?}");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("PASS good.toml"), "{text}");
        assert!(text.contains("FAIL malformed.toml"), "{text}");
        assert!(text.contains("FAIL invalid.toml"), "{text}");
        assert!(text.contains("1/3 specs passed"), "{text}");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn parses_loadtest() {
        match parse_args(&[
            "loadtest",
            "--users",
            "9",
            "--slo-ms",
            "150",
            "--rate-lo",
            "5",
            "--rate-hi",
            "500",
            "--probe-secs",
            "0.5",
            "--refine",
            "2",
            "--batch-size",
            "8",
            "--batch-age-ms",
            "25",
            "--queue-capacity",
            "64",
            "--threads",
            "2",
            "--seed",
            "11",
            "--quick",
            "--out",
            "verdict.json",
            "--jsonl",
            "batches.jsonl",
            "--metrics",
            "metrics.prom",
        ])
        .unwrap()
        {
            Command::Loadtest {
                scenario,
                users,
                slo_ms,
                rate_lo,
                rate_hi,
                probe_secs,
                refine,
                batch_size,
                batch_age_ms,
                queue_capacity,
                threads,
                seed,
                quick,
                out,
                jsonl,
                metrics,
            } => {
                assert_eq!(scenario, None);
                assert_eq!(users, Some(9));
                assert_eq!(slo_ms, Some(150.0));
                assert_eq!(rate_lo, Some(5.0));
                assert_eq!(rate_hi, Some(500.0));
                assert_eq!(probe_secs, Some(0.5));
                assert_eq!(refine, Some(2));
                assert_eq!(batch_size, Some(8));
                assert_eq!(batch_age_ms, Some(25.0));
                assert_eq!(queue_capacity, Some(64));
                assert_eq!(threads, Some(2));
                assert_eq!(seed, 11);
                assert!(quick);
                assert_eq!(out, PathBuf::from("verdict.json"));
                assert_eq!(jsonl, Some(PathBuf::from("batches.jsonl")));
                assert_eq!(metrics, Some(PathBuf::from("metrics.prom")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: BENCH_service.json, no side artifacts.
        match parse_args(&["loadtest"]).unwrap() {
            Command::Loadtest {
                out, jsonl, quick, ..
            } => {
                assert_eq!(out, PathBuf::from("BENCH_service.json"));
                assert_eq!(jsonl, None);
                assert!(!quick);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse_args(&["loadtest", "--threads", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&["loadtest", "--frobnicate"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn loadtest_command_writes_the_verdict_and_side_artifacts() {
        let dir = tmp_dir().join("loadtest");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_service.json");
        let jsonl = dir.join("batches.jsonl");
        let metrics = dir.join("metrics.prom");
        let mut buf = Vec::new();
        run(
            parse_args(&[
                "loadtest",
                "--quick",
                "--probe-secs",
                "0.15",
                "--rate-lo",
                "10",
                "--rate-hi",
                "40",
                "--refine",
                "1",
                "--seed",
                "7",
                "--out",
                out.to_str().unwrap(),
                "--jsonl",
                jsonl.to_str().unwrap(),
                "--metrics",
                metrics.to_str().unwrap(),
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("max sustainable rate"), "{text}");

        let verdict: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(verdict["max_sustainable_hz"].as_f64().is_some());
        assert!(!verdict["probes"].as_array().unwrap().is_empty());
        assert_eq!(verdict["seed"].as_u64(), Some(7));

        // Every JSONL line parses and carries the pinned schema.
        let lines = std::fs::read_to_string(&jsonl).unwrap();
        for line in lines.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["tier"].as_str().is_some(), "{line}");
            assert!(v["utility"].as_f64().is_some(), "{line}");
        }
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("tsajs_service_batches_total"), "{prom}");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn parses_conformance() {
        match parse_args(&["conformance", "--seeds", "9", "--seed", "3"]).unwrap() {
            Command::Conformance {
                seeds,
                base_seed,
                deep,
                out,
                artifacts,
            } => {
                assert_eq!(seeds, 9);
                assert_eq!(base_seed, 3);
                assert!(!deep);
                assert_eq!(out, None);
                assert_eq!(artifacts, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&["conformance", "--artifacts", "failures"]).unwrap() {
            Command::Conformance { artifacts, .. } => {
                assert_eq!(artifacts, Some(PathBuf::from("failures")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults follow the chosen profile.
        match parse_args(&["conformance"]).unwrap() {
            Command::Conformance { seeds, deep, .. } => {
                assert_eq!(seeds, ConformanceConfig::standard().seeds);
                assert!(!deep);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&["conformance", "--deep"]).unwrap() {
            Command::Conformance { seeds, deep, .. } => {
                assert_eq!(seeds, ConformanceConfig::deep().seeds);
                assert!(deep);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse_args(&["conformance", "--seeds", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&["conformance", "--frobnicate"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn conformance_command_emits_a_clean_json_verdict() {
        let dir = tmp_dir();
        let report_path = dir.join("verdict.json");
        let mut buf = Vec::new();
        run(
            parse_args(&[
                "conformance",
                "--seeds",
                "2",
                "--out",
                report_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["passed"], serde_json::Value::Bool(true));
        assert_eq!(value["seeds"].as_u64(), Some(2));
        assert_eq!(value["invariants"].as_array().unwrap().len(), 13);
        // The --out file carries the same report.
        let file = std::fs::read_to_string(&report_path).unwrap();
        assert_eq!(text.trim_end(), file);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_reproduces_under_identical_seeds() {
        let dir = tmp_dir();
        let scenario_path = dir.join("repro.json");
        run(
            parse_args(&[
                "generate",
                "--users",
                "5",
                "--seed",
                "4",
                "--out",
                scenario_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let run_once = || {
            let mut buf = Vec::new();
            run(
                parse_args(&[
                    "solve",
                    "--scenario",
                    scenario_path.to_str().unwrap(),
                    "--solver",
                    "tsajs",
                    "--seed",
                    "11",
                ])
                .unwrap(),
                &mut buf,
            )
            .unwrap();
            // Drop the wall-clock line; timing is inherently nondeterministic.
            String::from_utf8(buf)
                .unwrap()
                .lines()
                .filter(|l| !l.starts_with("evals/time"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(run_once(), run_once());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shard_solver_runs_from_the_registry_and_rejects_batching() {
        let dir = tmp_dir();
        let scenario_path = dir.join("shard.json");
        run(
            parse_args(&[
                "generate",
                "--users",
                "12",
                "--servers",
                "4",
                "--seed",
                "9",
                "--out",
                scenario_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let run_once = || {
            let mut buf = Vec::new();
            run(
                parse_args(&[
                    "solve",
                    "--scenario",
                    scenario_path.to_str().unwrap(),
                    "--solver",
                    "shard",
                    "--seed",
                    "11",
                ])
                .unwrap(),
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf)
                .unwrap()
                .lines()
                .filter(|l| !l.starts_with("evals/time"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let text = run_once();
        assert!(text.contains("TSAJS-SHARD"), "{text}");
        // Same seed, same run — the shard engine is fully deterministic.
        assert_eq!(text, run_once());
        assert!(matches!(
            build_solver("shard", 0, None, Some(4)),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn warm_resolves_flag_is_shard_only_and_rejects_zero() {
        let cmd = parse_args(&[
            "solve",
            "--scenario",
            "s.json",
            "--solver",
            "shard",
            "--warm-resolves",
            "3",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                scenario: PathBuf::from("s.json"),
                solver: "shard".into(),
                seed: 0,
                threads: None,
                batch: None,
                warm_resolves: Some(3),
                report: None,
            }
        );
        assert!(matches!(
            parse_args(&[
                "solve",
                "--scenario",
                "s.json",
                "--solver",
                "shard",
                "--warm-resolves",
                "0"
            ]),
            Err(CliError::Usage(_))
        ));
        // Defaults to the tsajs solver → not shard → rejected.
        assert!(matches!(
            parse_args(&["solve", "--scenario", "s.json", "--warm-resolves", "2"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn warm_resolves_output_is_thread_count_independent() {
        let dir = tmp_dir();
        let scenario_path = dir.join("warm.json");
        run(
            parse_args(&[
                "generate",
                "--users",
                "12",
                "--servers",
                "4",
                "--seed",
                "9",
                "--out",
                scenario_path.to_str().unwrap(),
            ])
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let run_with_threads = |threads: &str| {
            let mut buf = Vec::new();
            run(
                parse_args(&[
                    "solve",
                    "--scenario",
                    scenario_path.to_str().unwrap(),
                    "--solver",
                    "shard",
                    "--seed",
                    "11",
                    "--threads",
                    threads,
                    "--warm-resolves",
                    "2",
                ])
                .unwrap(),
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        };
        let narrow = run_with_threads("1");
        assert!(narrow.contains("cold"), "{narrow}");
        assert!(narrow.contains("warm 1"), "{narrow}");
        assert!(narrow.contains("warm 2"), "{narrow}");
        // The whole transcript — cold + every warm objective and the
        // resolved/reused cluster counts — is thread-count independent.
        assert_eq!(narrow, run_with_threads("2"));
        assert_eq!(narrow, run_with_threads("4"));
        std::fs::remove_dir_all(dir).ok();
    }
}
