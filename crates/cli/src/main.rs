//! Thin binary shim over the `tsajs-cli` library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match tsajs_cli::parse_args(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = tsajs_cli::run(command, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
