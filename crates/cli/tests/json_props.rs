//! Property tests: scenario specs and solve reports survive JSON
//! round-trips for arbitrary geometries.

use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{Assignment, Evaluator, Scenario, ScenarioSpec, UserSpec};
use mec_types::{constants, Cycles, ServerId, ServerProfile, SubchannelId, UserId};
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=6, 1usize..=3, 1usize..=3, 0u64..500).prop_map(|(u, s, n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let gains =
            ChannelGains::from_fn(u, s, n, |_, _, _| 10.0_f64.powf(rng.gen_range(-14.0..-9.0)))
                .unwrap();
        Scenario::new(
            vec![
                UserSpec::paper_default_with_workload(Cycles::from_mega(
                    rng.gen_range(100.0..5000.0)
                ))
                .unwrap();
                u
            ],
            vec![ServerProfile::paper_default(); s],
            OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, n).unwrap(),
            gains,
            constants::DEFAULT_NOISE.to_watts(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ScenarioSpec → JSON → ScenarioSpec → Scenario preserves the model
    /// exactly (objective values included).
    #[test]
    fn scenario_spec_json_roundtrip(scenario in arb_scenario(), seed in 0u64..100) {
        let spec = ScenarioSpec::from_scenario(&scenario);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &spec);
        let rebuilt = back.into_scenario().unwrap();

        // Identical objective on a shared random decision.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::all_local(&scenario);
        for u in scenario.user_ids() {
            if rng.gen_bool(0.5) {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(u, s, j).unwrap();
                }
            }
        }
        let a = Evaluator::new(&scenario).objective(&x);
        let b = Evaluator::new(&rebuilt).objective(&x);
        prop_assert_eq!(a, b);
    }

    /// Assignment → JSON → Assignment is exact, and corrupting the JSON to
    /// double-book a slot is rejected.
    #[test]
    fn assignment_json_roundtrip(scenario in arb_scenario(), seed in 0u64..100) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::all_local(&scenario);
        for u in scenario.user_ids() {
            if rng.gen_bool(0.6) {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(u, s, j).unwrap();
                }
            }
        }
        let json = serde_json::to_string(&x).unwrap();
        let back: Assignment = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &x);
        back.verify_feasible(&scenario).unwrap();
    }
}

#[test]
fn double_booked_assignment_json_is_rejected() {
    // Hand-craft a corrupted decision: two users on the same (s, j).
    let json = r#"{
        "num_servers": 2,
        "num_subchannels": 1,
        "slots": [[0, 0], [0, 0], null]
    }"#;
    let result: Result<Assignment, _> = serde_json::from_str(json);
    let err = result.unwrap_err().to_string();
    assert!(err.contains("invalid assignment"), "got: {err}");
}

#[test]
fn out_of_range_slot_json_is_rejected() {
    let json = r#"{
        "num_servers": 1,
        "num_subchannels": 1,
        "slots": [[5, 0]]
    }"#;
    let result: Result<Assignment, _> = serde_json::from_str(json);
    assert!(result.is_err());
}

#[test]
fn valid_assignment_json_parses() {
    let json = r#"{
        "num_servers": 2,
        "num_subchannels": 2,
        "slots": [[1, 0], null, [0, 1]]
    }"#;
    let x: Assignment = serde_json::from_str(json).unwrap();
    assert_eq!(x.num_users(), 3);
    assert_eq!(
        x.slot(UserId::new(0)),
        Some((ServerId::new(1), SubchannelId::new(0)))
    );
    assert_eq!(x.slot(UserId::new(1)), None);
    assert_eq!(
        x.occupant(ServerId::new(0), SubchannelId::new(1)),
        Some(UserId::new(2))
    );
}
