//! Differential and metamorphic checks across the whole solver zoo.
//!
//! On instances small enough for [`ExhaustiveSolver`] the true optimum
//! is known, so solver quality stops being a matter of taste and becomes
//! a partial order that must hold exactly:
//!
//! ```text
//! independent_bound ≥ assignment_bound ≥ exhaustive
//!     ≥ { TTSA, hJTORA, LocalSearch, greedy, hungarian, random, all-local }
//! ```
//!
//! On top of that, two metamorphic transforms with known effect on the
//! optimum: relabeling users (invariant) and uniformly rescaling every
//! provider priority `λ_u` (scales `J*` by the factor, argmax preserved).

use mec_baselines::{
    max_weight_assignment, upper_bound, AllLocalSolver, ExhaustiveSolver, GreedySolver,
    HJtoraSolver, LocalSearchSolver, RandomSolver,
};
use mec_system::{Assignment, Evaluator, IncrementalObjective, Scenario, Solution, Solver};
use mec_types::{ServerId, SubchannelId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsajs::{
    resolve_sharded, solve_sharded, temper, NeighborhoodKernel, Reconcile, ShardConfig,
    ShardOutcome, TemperingConfig, TsajsSolver, TtsaConfig,
};

/// An interference-free matching heuristic: assigns users to pairwise
/// distinct slots by maximum-weight bipartite matching over the same
/// optimistic per-slot values the upper bound uses, keeping only
/// positive-value matches, then scores the result under the *true*
/// (interference-coupled) objective. Feasible by construction, so the
/// exhaustive optimum always dominates it.
///
/// # Errors
///
/// Returns a description of the failure if the matched assignment cannot
/// be built (which would itself be a bug in the matching).
pub fn hungarian_solution(scenario: &Scenario) -> Result<(Assignment, f64), String> {
    let n = scenario.num_subchannels();
    let mut weights = Vec::with_capacity(scenario.num_users());
    for u in scenario.user_ids() {
        let c = scenario.coefficients(u);
        let p = scenario.tx_powers_watts()[u.index()];
        let mut row = Vec::with_capacity(scenario.num_servers() * n);
        for s in scenario.server_ids() {
            for j in 0..n {
                let snr = p * scenario.gains().gain(u, s, SubchannelId::new(j))
                    / scenario.noise().as_watts();
                let uplink = (c.phi + c.psi * p) / (1.0 + snr).log2();
                let exec = c.eta / scenario.server(s).capacity().as_hz();
                row.push(c.gain_constant - c.download_cost - uplink - exec);
            }
        }
        weights.push(row);
    }
    let (_, matching) = max_weight_assignment(&weights);
    let mut x = Assignment::all_local(scenario);
    for (u, slot) in matching.iter().enumerate() {
        if let Some(k) = slot {
            if weights[u][*k] > 0.0 {
                x.assign(
                    UserId::new(u),
                    ServerId::new(k / n),
                    SubchannelId::new(k % n),
                )
                .map_err(|e| format!("matching produced a colliding slot: {e}"))?;
            }
        }
    }
    let utility = Evaluator::new(scenario).objective(&x);
    Ok((x, utility))
}

/// Runs the full solver panel on one instance and asserts the partial
/// order, plus internal consistency of every run: each reported utility
/// must match a fresh re-evaluation of its assignment, and each
/// assignment must be feasible.
///
/// Returns the worst relative residual observed (consistency residuals
/// and the margin by which any heuristic approaches the optimum from
/// above, which must stay within tolerance).
///
/// # Errors
///
/// Returns a description of the first ordering or consistency violation,
/// or of a solver error.
pub fn check_partial_order(
    scenario: &Scenario,
    seed: u64,
    ttsa_budget: u64,
    tolerance: f64,
) -> Result<f64, String> {
    let bound = upper_bound(scenario);
    let optimum = ExhaustiveSolver::new()
        .solve(scenario)
        .map_err(|e| format!("exhaustive solve failed: {e}"))?;
    let scale = optimum.utility.abs().max(1.0);
    let slack = tolerance * scale;
    if bound.independent_bound + slack < bound.assignment_bound {
        return Err(format!(
            "independent bound {} below matching bound {}",
            bound.independent_bound, bound.assignment_bound
        ));
    }
    if bound.assignment_bound + slack < optimum.utility {
        return Err(format!(
            "matching bound {} below the exhaustive optimum {}",
            bound.assignment_bound, optimum.utility
        ));
    }

    let evaluator = Evaluator::new(scenario);
    let mut worst = 0.0f64;
    let mut audit = |name: &str, solution: Solution| -> Result<(), String> {
        solution
            .assignment
            .verify_feasible(scenario)
            .map_err(|e| format!("{name} returned an infeasible assignment: {e}"))?;
        let recomputed = evaluator.objective(&solution.assignment);
        let residual = (recomputed - solution.utility).abs() / scale;
        worst = worst.max(residual);
        if residual > tolerance {
            return Err(format!(
                "{name} reported {} but its assignment re-evaluates to \
                 {recomputed} (residual {residual:.3e})",
                solution.utility
            ));
        }
        let excess = (solution.utility - optimum.utility) / scale;
        worst = worst.max(excess.max(0.0));
        if excess > tolerance {
            return Err(format!(
                "{name} scored {} above the exhaustive optimum {}",
                solution.utility, optimum.utility
            ));
        }
        Ok(())
    };

    let ttsa_config = TtsaConfig::paper_default()
        .with_min_temperature(1e-2)
        .with_proposal_budget(ttsa_budget)
        .with_seed(seed);
    audit("TSAJS", {
        let mut s = TsajsSolver::new(ttsa_config);
        s.solve(scenario)
            .map_err(|e| format!("TSAJS failed: {e}"))?
    })?;
    // The tempering engine must obey the same order:
    // upper bounds ≥ exhaustive ≥ TSAJS-PT.
    audit("TSAJS-PT", {
        let mut s = TsajsSolver::new(ttsa_config)
            .with_tempering(TemperingConfig::paper_default().with_replicas(4));
        s.solve(scenario)
            .map_err(|e| format!("TSAJS-PT failed: {e}"))?
    })?;
    audit("hJTORA", {
        HJtoraSolver::new()
            .solve(scenario)
            .map_err(|e| format!("hJTORA failed: {e}"))?
    })?;
    audit("LocalSearch", {
        LocalSearchSolver::with_seed(seed)
            .solve(scenario)
            .map_err(|e| format!("LocalSearch failed: {e}"))?
    })?;
    audit("Greedy", {
        GreedySolver::new()
            .solve(scenario)
            .map_err(|e| format!("Greedy failed: {e}"))?
    })?;
    audit("Random", {
        RandomSolver::with_seed(seed)
            .solve(scenario)
            .map_err(|e| format!("Random failed: {e}"))?
    })?;
    audit("AllLocal", {
        AllLocalSolver::new()
            .solve(scenario)
            .map_err(|e| format!("AllLocal failed: {e}"))?
    })?;

    let (hungarian_x, hungarian_utility) = hungarian_solution(scenario)?;
    audit(
        "Hungarian",
        Solution {
            assignment: hungarian_x,
            utility: hungarian_utility,
            stats: Default::default(),
        },
    )?;
    Ok(worst)
}

/// Determinism check: the tempering engine must return bit-identical
/// results at 1, 2 and 4 worker threads — the worker pool is a
/// wall-clock knob, never a semantic one.
///
/// Returns `0.0` (the check is exact; any divergence is a failure, not
/// a residual).
///
/// # Errors
///
/// Returns a description of the first divergence between thread counts.
pub fn check_thread_independence(
    scenario: &Scenario,
    seed: u64,
    ttsa_budget: u64,
) -> Result<f64, String> {
    let base = TtsaConfig::paper_default()
        .with_min_temperature(1e-2)
        .with_proposal_budget(ttsa_budget)
        .with_seed(seed);
    let tempering = TemperingConfig::paper_default().with_replicas(4);
    let kernel = NeighborhoodKernel::new();
    let solve_at = |workers: usize| {
        let mut rng = StdRng::seed_from_u64(seed);
        temper(scenario, &tempering, &base, &kernel, &mut rng, workers)
    };
    let reference = solve_at(1);
    for workers in [2usize, 4] {
        let outcome = solve_at(workers);
        if outcome.objective.to_bits() != reference.objective.to_bits() {
            return Err(format!(
                "objective diverges with the thread count: {} at 1 worker \
                 vs {} at {workers}",
                reference.objective, outcome.objective
            ));
        }
        if outcome.assignment != reference.assignment {
            return Err(format!(
                "assignment diverges between 1 and {workers} workers \
                 despite equal objectives"
            ));
        }
        if outcome.proposals != reference.proposals || outcome.epochs != reference.epochs {
            return Err(format!(
                "search effort diverges between 1 and {workers} workers: \
                 {}/{} proposals, {}/{} epochs",
                reference.proposals, outcome.proposals, reference.epochs, outcome.epochs
            ));
        }
    }
    Ok(0.0)
}

/// Determinism check for the batched proposal step: at every batch
/// width K the tempering engine must return bit-identical results at 1,
/// 2 and 8 worker threads, and repeated same-seed runs must agree
/// exactly. Different widths walk different (but each reproducible)
/// trajectories, because a batch draws its K candidates up front; the
/// contract is determinism per `(seed, K)`, not equality across K.
///
/// Returns `0.0` (the check is exact; any divergence is a failure, not
/// a residual).
///
/// # Errors
///
/// Returns a description of the first divergence between worker counts
/// or repeated runs at the same batch width.
pub fn check_batched_proposal_determinism(
    scenario: &Scenario,
    seed: u64,
    ttsa_budget: u64,
) -> Result<f64, String> {
    let tempering = TemperingConfig::paper_default().with_replicas(4);
    let kernel = NeighborhoodKernel::new();
    for k in [1usize, 4, 8] {
        let base = TtsaConfig::paper_default()
            .with_min_temperature(1e-2)
            .with_proposal_budget(ttsa_budget)
            .with_batch_width(k)
            .with_seed(seed);
        let solve_at = |workers: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            temper(scenario, &tempering, &base, &kernel, &mut rng, workers)
        };
        let reference = solve_at(1);
        // Same seed, same width, same worker count → bit-identical rerun.
        let rerun = solve_at(1);
        if rerun.objective.to_bits() != reference.objective.to_bits()
            || rerun.assignment != reference.assignment
            || rerun.proposals != reference.proposals
        {
            return Err(format!(
                "batch width {k}: same-seed rerun diverges ({} vs {})",
                reference.objective, rerun.objective
            ));
        }
        for workers in [2usize, 8] {
            let outcome = solve_at(workers);
            if outcome.objective.to_bits() != reference.objective.to_bits() {
                return Err(format!(
                    "batch width {k}: objective diverges with the thread \
                     count: {} at 1 worker vs {} at {workers}",
                    reference.objective, outcome.objective
                ));
            }
            if outcome.assignment != reference.assignment {
                return Err(format!(
                    "batch width {k}: assignment diverges between 1 and \
                     {workers} workers despite equal objectives"
                ));
            }
            if outcome.proposals != reference.proposals {
                return Err(format!(
                    "batch width {k}: proposal count diverges between 1 and \
                     {workers} workers: {} vs {}",
                    reference.proposals, outcome.proposals
                ));
            }
        }
    }
    Ok(0.0)
}

/// Conformance check for the sharded city-scale engine on small fuzzed
/// instances: the converged sharded objective must equal a monolithic
/// [`IncrementalObjective`] resync of the final assignment bit for bit,
/// the per-cluster objective sum must agree with that monolith within
/// tolerance (the `halo_residual`), the decomposition must be
/// bit-identical at 1 and 4 workers, and the final assignment must pass
/// the feasibility and KKT oracles.
///
/// Clusters are forced to single servers so every instance exercises the
/// maximum amount of cross-cluster halo exchange the topology allows.
///
/// Returns the worst relative residual observed across the halo
/// accounting and the oracle checks.
///
/// # Errors
///
/// Returns a description of the first equivalence or oracle violation,
/// or of a solver error.
pub fn check_shard_equivalence(
    scenario: &Scenario,
    seed: u64,
    tolerance: f64,
) -> Result<f64, String> {
    let config = quick_shard_config(seed);
    let outcome =
        solve_sharded(scenario, &config, 1).map_err(|e| format!("sharded solve failed: {e}"))?;
    let mut worst = outcome.halo_residual;
    if outcome.halo_residual > tolerance {
        return Err(format!(
            "per-cluster objective sum disagrees with the monolithic \
             resync: residual {:.3e}",
            outcome.halo_residual
        ));
    }
    let mono = IncrementalObjective::new(scenario, outcome.assignment.clone())
        .map_err(|e| format!("monolithic resync failed: {e}"))?
        .current();
    if outcome.objective.to_bits() != mono.to_bits() {
        return Err(format!(
            "sharded objective {} is not the monolithic resync {mono} \
             bit for bit",
            outcome.objective
        ));
    }
    // The worker pool must stay a wall-clock knob for the shard engine
    // too: same seed, more workers, bit-identical outcome.
    let wide =
        solve_sharded(scenario, &config, 4).map_err(|e| format!("sharded solve failed: {e}"))?;
    if wide.objective.to_bits() != outcome.objective.to_bits()
        || wide.assignment != outcome.assignment
        || wide.proposals != outcome.proposals
    {
        return Err(format!(
            "sharded outcome diverges between 1 and 4 workers: {} vs {}",
            outcome.objective, wide.objective
        ));
    }
    let oracle = crate::oracle::Oracle::with_tolerance(tolerance);
    worst = worst.max(
        oracle
            .check_feasibility(scenario, &outcome.assignment)
            .map_err(|e| format!("sharded assignment fails feasibility: {e}"))?,
    );
    worst = worst.max(
        oracle
            .check_kkt(scenario, &outcome.assignment)
            .map_err(|e| format!("sharded assignment fails the KKT oracle: {e}"))?,
    );
    Ok(worst)
}

/// The small, fast shard configuration shared by every shard invariant:
/// single-server clusters (maximum halo exchange), short tempered
/// ladders, tight budgets.
fn quick_shard_config(seed: u64) -> ShardConfig {
    ShardConfig::paper_default()
        .with_seed(seed)
        .with_cluster_size(1)
        .with_max_sweeps(4)
        .with_ttsa(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-1)
                .with_proposal_budget(400),
        )
        .with_tempering(
            TemperingConfig::paper_default()
                .with_replicas(2)
                .with_rounds(2),
        )
}

/// Conformance check for the warm shard path (ISSUE 10): warm-resolving
/// from an **empty** previous decision (zero users, all arrivals) must
/// be bit-for-bit identical to the cold sharded solve — assignment,
/// objective bits, proposal count and sweeps all equal — and the warm
/// path itself must stay bit-identical between 1 and 4 workers. The
/// warm assignment must also pass the feasibility and KKT oracles.
///
/// This is the conformance anchor for `ShardSolver::resolve_from`: the
/// warm path is an *optimization*, never a different solver.
///
/// Returns the worst relative residual observed.
///
/// # Errors
///
/// Returns a description of the first equivalence or oracle violation,
/// or of a solver error.
pub fn check_shard_warm_equivalence(
    scenario: &Scenario,
    seed: u64,
    tolerance: f64,
) -> Result<f64, String> {
    let config = quick_shard_config(seed);
    let cold =
        solve_sharded(scenario, &config, 1).map_err(|e| format!("cold sharded solve: {e}"))?;
    let empty =
        ShardOutcome::empty(scenario, &config).map_err(|e| format!("empty shard outcome: {e}"))?;
    let all_arrivals = vec![None; scenario.num_users()];
    let warm = resolve_sharded(scenario, &config, 1, &empty, &all_arrivals)
        .map_err(|e| format!("warm sharded solve: {e}"))?;
    if warm.assignment != cold.assignment || warm.objective.to_bits() != cold.objective.to_bits() {
        return Err(format!(
            "warm resolve from an empty prior diverges from the cold \
             solve: {} vs {}",
            warm.objective, cold.objective
        ));
    }
    if warm.proposals != cold.proposals || warm.sweeps != cold.sweeps {
        return Err(format!(
            "warm resolve from an empty prior spends differently than the \
             cold solve: {} vs {} proposals, {} vs {} sweeps",
            warm.proposals, cold.proposals, warm.sweeps, cold.sweeps
        ));
    }
    if warm.reused_clusters != 0 {
        return Err(format!(
            "warm resolve from an empty prior claims {} reused clusters",
            warm.reused_clusters
        ));
    }
    let wide = resolve_sharded(scenario, &config, 4, &empty, &all_arrivals)
        .map_err(|e| format!("warm sharded solve: {e}"))?;
    if wide.assignment != warm.assignment || wide.objective.to_bits() != warm.objective.to_bits() {
        return Err(format!(
            "warm resolve diverges between 1 and 4 workers: {} vs {}",
            warm.objective, wide.objective
        ));
    }
    let mut worst = warm.halo_residual;
    if warm.halo_residual > tolerance {
        return Err(format!(
            "warm halo accounting residual {:.3e} above tolerance",
            warm.halo_residual
        ));
    }
    let oracle = crate::oracle::Oracle::with_tolerance(tolerance);
    worst = worst.max(
        oracle
            .check_feasibility(scenario, &warm.assignment)
            .map_err(|e| format!("warm assignment fails feasibility: {e}"))?,
    );
    worst = worst.max(
        oracle
            .check_kkt(scenario, &warm.assignment)
            .map_err(|e| format!("warm assignment fails the KKT oracle: {e}"))?,
    );
    Ok(worst)
}

/// Conformance check for the pipelined Jacobi-with-aging reconciler
/// (ISSUE 10): at each of three fixed config seeds (11/23/47) the
/// pipelined solve must be bit-identical — assignment, objective bits,
/// proposal count — across 1, 2 and 8 workers, its reported objective
/// must equal a monolithic [`IncrementalObjective`] resync bit for bit,
/// and the halo accounting residual must stay within tolerance.
///
/// Returns the worst halo residual observed across the three seeds.
///
/// # Errors
///
/// Returns a description of the first determinism or accounting
/// violation, or of a solver error.
pub fn check_pipelined_halo_determinism(
    scenario: &Scenario,
    tolerance: f64,
) -> Result<f64, String> {
    let mut worst = 0.0f64;
    for config_seed in [11u64, 23, 47] {
        let config = quick_shard_config(config_seed).with_reconcile(Reconcile::Pipelined);
        let reference = solve_sharded(scenario, &config, 1)
            .map_err(|e| format!("pipelined solve (seed {config_seed}): {e}"))?;
        for workers in [2usize, 8] {
            let outcome = solve_sharded(scenario, &config, workers)
                .map_err(|e| format!("pipelined solve (seed {config_seed}): {e}"))?;
            if outcome.assignment != reference.assignment
                || outcome.objective.to_bits() != reference.objective.to_bits()
                || outcome.proposals != reference.proposals
            {
                return Err(format!(
                    "pipelined outcome (seed {config_seed}) diverges between \
                     1 and {workers} workers: {} vs {}",
                    reference.objective, outcome.objective
                ));
            }
        }
        let mono = IncrementalObjective::new(scenario, reference.assignment.clone())
            .map_err(|e| format!("monolithic resync failed: {e}"))?
            .current();
        if reference.objective.to_bits() != mono.to_bits() {
            return Err(format!(
                "pipelined objective {} (seed {config_seed}) is not the \
                 monolithic resync {mono} bit for bit",
                reference.objective
            ));
        }
        if reference.halo_residual > tolerance {
            return Err(format!(
                "pipelined halo residual {:.3e} (seed {config_seed}) above \
                 tolerance",
                reference.halo_residual
            ));
        }
        worst = worst.max(reference.halo_residual);
    }
    Ok(worst)
}

/// Metamorphic check: relabeling users must leave the optimal objective
/// unchanged, and the permuted optimum mapped back to the original ids
/// must achieve the original optimum.
///
/// # Errors
///
/// Returns a description of the first residual above tolerance.
pub fn check_permutation(scenario: &Scenario, seed: u64, tolerance: f64) -> Result<f64, String> {
    let num_users = scenario.num_users();
    let mut perm: Vec<UserId> = (0..num_users).map(UserId::new).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..num_users).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    let permuted = scenario
        .permute_users(&perm)
        .map_err(|e| format!("permute_users failed: {e}"))?;
    let original_opt = ExhaustiveSolver::new()
        .solve(scenario)
        .map_err(|e| format!("exhaustive solve failed: {e}"))?;
    let permuted_opt = ExhaustiveSolver::new()
        .solve(&permuted)
        .map_err(|e| format!("exhaustive solve on the permuted instance failed: {e}"))?;
    let scale = original_opt.utility.abs().max(1.0);
    let mut worst = (original_opt.utility - permuted_opt.utility).abs() / scale;
    if worst > tolerance {
        return Err(format!(
            "optimal objective moved under relabeling: {} vs {}",
            original_opt.utility, permuted_opt.utility
        ));
    }
    // Map the permuted argmax back to original user ids and re-score it.
    let mut back = Assignment::all_local(scenario);
    for (v, &old) in perm.iter().enumerate() {
        if let Some((s, j)) = permuted_opt.assignment.slot(UserId::new(v)) {
            back.assign(old, s, j)
                .map_err(|e| format!("mapped-back argmax is infeasible: {e}"))?;
        }
    }
    let mapped = Evaluator::new(scenario).objective(&back);
    let residual = (mapped - original_opt.utility).abs() / scale;
    worst = worst.max(residual);
    if residual > tolerance {
        return Err(format!(
            "mapped-back argmax scores {mapped}, not the optimum {}",
            original_opt.utility
        ));
    }
    Ok(worst)
}

/// Metamorphic check: uniformly rescaling every `λ_u` by `factor` must
/// scale the optimal objective by `factor` and leave the argmax
/// optimal — the rescaled optimum's decision must still achieve the
/// original optimum on the original instance, and vice versa.
///
/// # Errors
///
/// Returns a description of the first residual above tolerance.
pub fn check_lambda_rescale(
    scenario: &Scenario,
    factor: f64,
    tolerance: f64,
) -> Result<f64, String> {
    let scaled = scenario
        .with_scaled_lambdas(factor)
        .map_err(|e| format!("with_scaled_lambdas failed: {e}"))?;
    let original_opt = ExhaustiveSolver::new()
        .solve(scenario)
        .map_err(|e| format!("exhaustive solve failed: {e}"))?;
    let scaled_opt = ExhaustiveSolver::new()
        .solve(&scaled)
        .map_err(|e| format!("exhaustive solve on the rescaled instance failed: {e}"))?;
    let scale = original_opt.utility.abs().max(1.0);
    let mut worst = (scaled_opt.utility - factor * original_opt.utility).abs() / (factor * scale);
    if worst > tolerance {
        return Err(format!(
            "optimum did not scale linearly: {} vs {factor}·{}",
            scaled_opt.utility, original_opt.utility
        ));
    }
    // Argmax preservation, robust to ties: each instance's optimal
    // decision must be optimal for the other.
    let cross = Evaluator::new(scenario).objective(&scaled_opt.assignment);
    let residual = (cross - original_opt.utility).abs() / scale;
    worst = worst.max(residual);
    if residual > tolerance {
        return Err(format!(
            "rescaled argmax scores {cross} on the original instance, \
             not the optimum {}",
            original_opt.utility
        ));
    }
    let cross = Evaluator::new(&scaled).objective(&original_opt.assignment);
    let residual = (cross - scaled_opt.utility).abs() / (factor * scale);
    worst = worst.max(residual);
    if residual > tolerance {
        return Err(format!(
            "original argmax scores {cross} on the rescaled instance, \
             not the optimum {}",
            scaled_opt.utility
        ));
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{self, FuzzConfig};

    #[test]
    fn the_partial_order_holds_on_fuzzed_instances() {
        for seed in 0..8 {
            let sc = fuzz::scenario(&FuzzConfig::smoke(), seed);
            let worst = check_partial_order(&sc, seed, 1500, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(worst <= 1e-9, "seed {seed}: residual {worst}");
        }
    }

    #[test]
    fn hungarian_heuristic_is_feasible_and_dominated_by_the_optimum() {
        for seed in 0..10 {
            let sc = fuzz::scenario(&FuzzConfig::smoke(), seed);
            let (x, utility) = hungarian_solution(&sc).unwrap();
            x.verify_feasible(&sc).unwrap();
            let opt = ExhaustiveSolver::new().solve(&sc).unwrap();
            assert!(utility <= opt.utility + 1e-9 * opt.utility.abs().max(1.0));
        }
    }

    #[test]
    fn sharded_solving_matches_the_monolith_on_fuzzed_instances() {
        for seed in 0..12 {
            let sc = fuzz::scenario(&FuzzConfig::smoke(), seed);
            let worst = check_shard_equivalence(&sc, seed, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(worst <= 1e-9, "seed {seed}: residual {worst}");
        }
    }

    #[test]
    fn warm_sharded_solving_matches_the_cold_path_on_fuzzed_instances() {
        for seed in 0..4 {
            let sc = fuzz::scenario(&FuzzConfig::smoke(), seed);
            let worst = check_shard_warm_equivalence(&sc, seed, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(worst <= 1e-9, "seed {seed}: residual {worst}");
        }
    }

    #[test]
    fn pipelined_reconciler_is_deterministic_on_fuzzed_instances() {
        for seed in 0..4 {
            let sc = fuzz::scenario(&FuzzConfig::smoke(), seed);
            let worst = check_pipelined_halo_determinism(&sc, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(worst <= 1e-9, "seed {seed}: residual {worst}");
        }
    }

    #[test]
    fn metamorphic_transforms_hold_on_fuzzed_instances() {
        for seed in 0..6 {
            let sc = fuzz::scenario(&FuzzConfig::smoke(), seed);
            check_permutation(&sc, seed, 1e-9).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_lambda_rescale(&sc, 0.5, 1e-9).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
