//! Turning fuzzed scenarios into replayable scenario specs.
//!
//! A conformance violation only matters if someone can reproduce it. This
//! module converts any [`Scenario`] — including the fuzzer's — into a
//! fully-*explicit* [`ScenarioSpec`] (every coefficient and channel gain
//! written out literally), so the artifact replays bit-for-bit with
//! `tsajs-sim solve --scenario artifact.toml` regardless of fuzzer or
//! generator changes. [`write_violation_artifacts`] walks a verdict
//! report, re-derives each violating seed's scenario and writes one
//! `.toml` per violation.

use crate::fuzz;
use crate::report::VerdictReport;
use crate::ConformanceConfig;
use mec_scenario_spec::{
    ExplicitSpec, ExplicitUser, ProvenanceSpec, ScenarioSpec, SpecMode, SCHEMA_VERSION,
};
use mec_system::Scenario;
use mec_types::SubchannelId;
use std::io;
use std::path::{Path, PathBuf};

/// Converts a scenario into a seed-independent explicit spec. All values
/// are taken through the raw unit getters, so `spec.materialize(seed)`
/// rebuilds the scenario bit-for-bit at any seed.
pub fn explicit_spec(scenario: &Scenario, name: &str) -> ScenarioSpec {
    let users = scenario
        .user_ids()
        .map(|u| {
            let spec = scenario.user(u);
            let output = spec.task.output().as_bits();
            ExplicitUser {
                task_data_bits: spec.task.data().as_bits(),
                task_cycles: spec.task.workload().as_cycles(),
                task_output_bits: (output > 0.0).then_some(output),
                beta_time: spec.preferences.beta_time(),
                lambda: spec.lambda.value(),
                user_cpu_hz: spec.device.cpu().as_hz(),
                kappa: spec.device.kappa(),
                tx_power_dbm: spec.device.tx_power().as_dbm(),
                gains: scenario
                    .server_ids()
                    .map(|s| {
                        (0..scenario.num_subchannels())
                            .map(|j| scenario.gains().gain(u, s, SubchannelId::new(j)))
                            .collect()
                    })
                    .collect(),
            }
        })
        .collect();
    ScenarioSpec {
        schema_version: SCHEMA_VERSION,
        name: name.to_string(),
        description: None,
        mode: SpecMode::Explicit(ExplicitSpec {
            bandwidth_hz: scenario.ofdma().bandwidth().as_hz(),
            subchannels: scenario.num_subchannels(),
            noise_w: scenario.noise().as_watts(),
            server_cpu_hz: scenario
                .servers()
                .iter()
                .map(|s| s.capacity().as_hz())
                .collect(),
            downlink_bps: scenario.downlink().map(|r| r.as_bps()),
            users,
        }),
        churn: None,
        admission: None,
        sla: None,
        online: None,
        timeline: Vec::new(),
        expect: None,
        provenance: None,
        effort: None,
    }
}

/// A stable fingerprint of everything the objective depends on: the raw
/// f64 bits of every coefficient, gain, capacity and the noise floor.
/// Two scenarios with equal fingerprints produce identical objectives for
/// every assignment.
pub fn scenario_fingerprint(scenario: &Scenario) -> u64 {
    // FNV-1a over the exact bit patterns — no tolerance, no rounding.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: f64| {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(scenario.ofdma().bandwidth().as_hz());
    eat(scenario.noise().as_watts());
    eat(scenario.downlink().map(|r| r.as_bps()).unwrap_or(-1.0));
    for s in scenario.servers() {
        eat(s.capacity().as_hz());
    }
    for u in scenario.user_ids() {
        let spec = scenario.user(u);
        eat(spec.task.data().as_bits());
        eat(spec.task.workload().as_cycles());
        eat(spec.task.output().as_bits());
        eat(spec.preferences.beta_time());
        eat(spec.lambda.value());
        eat(spec.device.cpu().as_hz());
        eat(spec.device.kappa());
        eat(spec.device.tx_power().as_dbm());
        for s in scenario.server_ids() {
            for j in 0..scenario.num_subchannels() {
                eat(scenario.gains().gain(u, s, SubchannelId::new(j)));
            }
        }
    }
    hash
}

/// Extracts the violating seeds recorded in a verdict report, with the
/// invariant that flagged each. Examples are prefixed `"seed N: ..."` by
/// [`crate::report::InvariantVerdict::record`]; anything else is skipped.
fn violating_seeds(report: &VerdictReport) -> Vec<(String, u64)> {
    let mut seeds = Vec::new();
    for verdict in &report.invariants {
        for example in &verdict.examples {
            let Some(rest) = example.strip_prefix("seed ") else {
                continue;
            };
            let Some((num, _)) = rest.split_once(':') else {
                continue;
            };
            if let Ok(seed) = num.trim().parse::<u64>() {
                let entry = (verdict.invariant.to_string(), seed);
                if !seeds.contains(&entry) {
                    seeds.push(entry);
                }
            }
        }
    }
    seeds
}

/// Rebuilds each violating seed's fuzzed scenario and returns one
/// replayable explicit spec per `(invariant, seed)` pair, tagged with
/// provenance.
pub fn violation_specs(
    report: &VerdictReport,
    config: &ConformanceConfig,
) -> Vec<(String, ScenarioSpec)> {
    violating_seeds(report)
        .into_iter()
        .map(|(invariant, seed)| {
            let scenario = fuzz::scenario(&config.fuzz, seed);
            let name = format!("violation_{invariant}_seed_{seed}");
            let mut spec = explicit_spec(&scenario, &name);
            spec.description = Some(format!(
                "fuzzed instance that violated `{invariant}`; replay with \
                 `tsajs-sim solve --scenario {name}.toml`"
            ));
            spec.provenance = Some(ProvenanceSpec {
                invariant: Some(invariant),
                seed: Some(seed),
                offload_probability: Some(config.fuzz.offload_probability),
                source: Some("tsajs-sim conformance fuzzer".to_string()),
            });
            (format!("{name}.toml"), spec)
        })
        .collect()
}

/// Writes every violation in `report` as a replayable `.toml` under
/// `dir` (created if missing) and returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors; spec-encoding failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn write_violation_artifacts(
    report: &VerdictReport,
    config: &ConformanceConfig,
    dir: &Path,
) -> io::Result<Vec<PathBuf>> {
    let specs = violation_specs(report, config);
    if !specs.is_empty() {
        std::fs::create_dir_all(dir)?;
    }
    let mut paths = Vec::with_capacity(specs.len());
    for (file, spec) in specs {
        let toml = spec
            .to_toml_string()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = dir.join(file);
        std::fs::write(&path, toml)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::InvariantVerdict;

    #[test]
    fn explicit_specs_replay_fuzzed_scenarios_bit_for_bit() {
        let config = crate::FuzzConfig::smoke();
        for seed in 0..10 {
            let original = fuzz::scenario(&config, seed);
            let spec = explicit_spec(&original, "replay");
            // Round-trip through the TOML text, like a real artifact.
            let toml = spec.to_toml_string().unwrap();
            let parsed = ScenarioSpec::from_toml_str(&toml).unwrap();
            // Explicit specs are seed-independent: any seed reproduces.
            let replayed = parsed.materialize(seed ^ 0xABCD).unwrap();
            assert_eq!(
                scenario_fingerprint(&original),
                scenario_fingerprint(&replayed),
                "seed {seed} did not replay bit-for-bit"
            );
        }
    }

    #[test]
    fn fingerprints_separate_different_scenarios() {
        let config = crate::FuzzConfig::smoke();
        let a = scenario_fingerprint(&fuzz::scenario(&config, 1));
        let b = scenario_fingerprint(&fuzz::scenario(&config, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn violation_artifacts_name_the_invariant_and_seed() {
        let mut verdict = InvariantVerdict::new("kkt_allocation_eq22");
        verdict.record(7, Err("objective mismatch".into()));
        verdict.record(7, Err("still mismatched".into()));
        verdict.record(9, Err("worse".into()));
        let report = VerdictReport::new(10, 0, 1e-9, vec![verdict]);
        let config = ConformanceConfig::smoke();

        let specs = violation_specs(&report, &config);
        assert_eq!(specs.len(), 2, "duplicate seeds collapse to one artifact");
        assert_eq!(specs[0].0, "violation_kkt_allocation_eq22_seed_7.toml");
        assert_eq!(specs[1].0, "violation_kkt_allocation_eq22_seed_9.toml");
        let provenance = specs[0].1.provenance.as_ref().unwrap();
        assert_eq!(provenance.seed, Some(7));
        assert_eq!(provenance.invariant.as_deref(), Some("kkt_allocation_eq22"));

        let dir =
            std::env::temp_dir().join(format!("mec-conformance-artifacts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_violation_artifacts(&report, &config, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        for path in &paths {
            let spec = mec_scenario_spec::load_spec(path).unwrap();
            spec.validate().unwrap();
            let replay = spec.materialize(0).unwrap();
            let seed = spec.provenance.unwrap().seed.unwrap();
            assert_eq!(
                scenario_fingerprint(&replay),
                scenario_fingerprint(&fuzz::scenario(&config.fuzz, seed))
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_clean_report_writes_nothing() {
        let report = VerdictReport::new(10, 0, 1e-9, vec![InvariantVerdict::new("clean")]);
        let config = ConformanceConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("mec-conformance-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_violation_artifacts(&report, &config, &dir).unwrap();
        assert!(paths.is_empty());
        assert!(!dir.exists(), "no artifact dir for a clean run");
    }
}
