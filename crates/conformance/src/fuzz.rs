//! Seeded generation of small random problem instances and decisions.
//!
//! Everything here is a pure function of its seed: the same `(config,
//! seed)` pair always produces the same scenario, assignment or move
//! sequence, so a failing verdict can be replayed bit-for-bit from the
//! seed printed in its report.

use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{Assignment, MoveDesc, Scenario, UserSpec};
use mec_types::{
    Bits, Cycles, DeviceProfile, Hertz, ProviderPreference, ServerId, ServerProfile, SubchannelId,
    Task, UserId, UserPreferences, Watts,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size and shape ranges for fuzzed scenarios. All ranges are inclusive
/// `(lo, hi)` bounds; keep `(S·N + 1)^U` small enough for exhaustive
/// search, since the differential driver solves every instance exactly.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// User count range.
    pub users: (usize, usize),
    /// Server count range.
    pub servers: (usize, usize),
    /// Subchannel count range.
    pub subchannels: (usize, usize),
    /// Probability that [`assignment`] tries to offload each user.
    pub offload_probability: f64,
}

impl FuzzConfig {
    /// Small instances for the fast tier-1 smoke sweep
    /// (worst case `(3·2+1)^5 ≈ 1.7·10⁴` leaves).
    pub fn smoke() -> Self {
        Self {
            users: (2, 5),
            servers: (2, 3),
            subchannels: (1, 2),
            offload_probability: 0.6,
        }
    }

    /// Larger instances for the nightly deep sweep
    /// (worst case `(4·2+1)^6 ≈ 5.3·10⁵` leaves, the Fig. 3 scale).
    pub fn deep() -> Self {
        Self {
            users: (3, 6),
            servers: (2, 4),
            subchannels: (1, 2),
            offload_probability: 0.6,
        }
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self::smoke()
    }
}

fn range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    rng.gen_range(lo..hi + 1)
}

/// Generates a random, validated scenario: heterogeneous tasks,
/// preferences and priorities over log-uniform channel gains.
///
/// # Panics
///
/// Panics if the configured ranges are empty or produce invalid model
/// parameters — a misconfigured harness, not a property under test.
pub fn scenario(config: &FuzzConfig, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_users = range(&mut rng, config.users);
    let num_servers = range(&mut rng, config.servers);
    let num_subchannels = range(&mut rng, config.subchannels);
    let users: Vec<UserSpec> = (0..num_users)
        .map(|_| UserSpec {
            task: Task::new(
                Bits::from_kilobytes(rng.gen_range(100.0..500.0)),
                Cycles::from_mega(rng.gen_range(500.0..3000.0)),
            )
            .expect("fuzzed task parameters are positive"),
            device: DeviceProfile::paper_default(),
            // Keep β_time strictly positive so every user has η > 0 and
            // the KKT square-root rule is exercised on every server.
            preferences: UserPreferences::new(rng.gen_range(0.1..0.9))
                .expect("fuzzed beta_time is in [0, 1]"),
            lambda: ProviderPreference::new(rng.gen_range(0.2..1.0))
                .expect("fuzzed lambda is in (0, 1]"),
        })
        .collect();
    let gains = ChannelGains::from_fn(num_users, num_servers, num_subchannels, |_, _, _| {
        10.0_f64.powf(rng.gen_range(-12.0..-9.0))
    })
    .expect("fuzzed gains are positive and finite");
    Scenario::new(
        users,
        vec![ServerProfile::paper_default(); num_servers],
        OfdmaConfig::new(Hertz::from_mega(20.0), num_subchannels)
            .expect("fuzzed band plan is valid"),
        gains,
        Watts::new(1e-13),
    )
    .expect("fuzzed scenario dimensions are consistent")
}

/// Generates a random feasible assignment for a scenario: each user
/// independently tries (with `probability`) to grab a free slot on a
/// random server, and stays local when its chosen server is full.
pub fn assignment(scenario: &Scenario, probability: f64, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Assignment::all_local(scenario);
    for u in scenario.user_ids() {
        if rng.gen_bool(probability) {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            if let Some(j) = x.free_subchannel(s) {
                x.assign(u, s, j).expect("free slot was just checked");
            }
        }
    }
    x
}

/// Draws one random structured move against the current assignment:
/// relocations to local or to a free slot, evictions, and swaps — the
/// same move families the TTSA neighborhood kernel uses.
pub fn random_move(x: &Assignment, scenario: &Scenario, rng: &mut StdRng) -> MoveDesc {
    let u = UserId::new(rng.gen_range(0..scenario.num_users()));
    match rng.gen_range(0..4u32) {
        0 => MoveDesc::relocate(x, u, None),
        1 => {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            let j = SubchannelId::new(rng.gen_range(0..scenario.num_subchannels()));
            MoveDesc::relocate_evicting(x, u, s, j)
        }
        2 => {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            match x.free_subchannel(s) {
                Some(j) => MoveDesc::relocate(x, u, Some((s, j))),
                None => MoveDesc::relocate(x, u, None),
            }
        }
        _ => {
            let v = UserId::new(rng.gen_range(0..scenario.num_users()));
            MoveDesc::swap(x, u, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let cfg = FuzzConfig::smoke();
        for seed in 0..20 {
            let a = scenario(&cfg, seed);
            let b = scenario(&cfg, seed);
            assert_eq!(a.num_users(), b.num_users());
            assert_eq!(a.num_servers(), b.num_servers());
            assert_eq!(a.num_subchannels(), b.num_subchannels());
            for u in a.user_ids() {
                assert_eq!(a.user(u), b.user(u));
                for s in a.server_ids() {
                    for j in 0..a.num_subchannels() {
                        let j = SubchannelId::new(j);
                        assert_eq!(a.gains().gain(u, s, j), b.gains().gain(u, s, j));
                    }
                }
            }
            assert_eq!(assignment(&a, 0.6, seed), assignment(&b, 0.6, seed));
        }
    }

    #[test]
    fn sizes_stay_inside_the_configured_ranges() {
        let cfg = FuzzConfig::smoke();
        for seed in 0..50 {
            let sc = scenario(&cfg, seed);
            assert!((cfg.users.0..=cfg.users.1).contains(&sc.num_users()));
            assert!((cfg.servers.0..=cfg.servers.1).contains(&sc.num_servers()));
            assert!((cfg.subchannels.0..=cfg.subchannels.1).contains(&sc.num_subchannels()));
        }
    }

    #[test]
    fn fuzzed_assignments_are_feasible() {
        let cfg = FuzzConfig::smoke();
        for seed in 0..50 {
            let sc = scenario(&cfg, seed);
            assignment(&sc, cfg.offload_probability, seed)
                .verify_feasible(&sc)
                .unwrap();
        }
    }

    #[test]
    fn random_moves_stay_applicable() {
        let cfg = FuzzConfig::smoke();
        let sc = scenario(&cfg, 3);
        let mut x = assignment(&sc, cfg.offload_probability, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let mv = random_move(&x, &sc, &mut rng);
            mv.apply_to(&mut x).unwrap();
            x.verify_feasible(&sc).unwrap();
        }
    }
}
