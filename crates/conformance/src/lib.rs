//! # mec-conformance
//!
//! Conformance and differential-testing harness for the TSAJS
//! reproduction: a seeded scenario fuzzer ([`fuzz`]), an invariant
//! oracle tying any `(Scenario, Assignment)` pair back to the paper's
//! equations ([`oracle`]), a differential driver pitting every solver
//! against the exhaustive optimum and the certified upper bounds plus
//! metamorphic transforms ([`differential`]), and seed-replay
//! verification of the online engine ([`replay`]).
//!
//! The entry point is [`run_conformance`], which sweeps a range of
//! seeds and produces a JSON-serializable [`VerdictReport`] — the same
//! artifact the `tsajs-sim conformance` subcommand emits. Every check
//! is a pure function of its seed, so any failure in the report can be
//! replayed from the seed it names.
//!
//! ## Example
//!
//! ```
//! use mec_conformance::{run_conformance, ConformanceConfig};
//!
//! let report = run_conformance(&ConformanceConfig::smoke().with_seeds(3));
//! assert!(report.passed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod emit;
pub mod fuzz;
pub mod oracle;
pub mod replay;
pub mod report;

pub use emit::{explicit_spec, scenario_fingerprint, write_violation_artifacts};
pub use fuzz::FuzzConfig;
pub use oracle::Oracle;
pub use replay::ReplayConfig;
pub use report::{InvariantVerdict, VerdictReport};

/// Everything one conformance run does, in one knob set.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Number of fuzzed scenario seeds to sweep.
    pub seeds: u64,
    /// First seed of the sweep (checks for seed `i` use `base_seed + i`).
    pub base_seed: u64,
    /// Relative tolerance for every residual check.
    pub tolerance: f64,
    /// Length of each random apply/undo/commit walk.
    pub moves_per_walk: usize,
    /// Proposal budget handed to the TTSA solver in differential runs.
    pub ttsa_budget: u64,
    /// Run the solver-panel differential on every `k`-th seed.
    pub differential_stride: u64,
    /// Run the metamorphic transforms on every `k`-th seed.
    pub metamorphic_stride: u64,
    /// Number of independent online replays.
    pub online_replays: u64,
    /// Epochs per online replay.
    pub online_epochs: usize,
    /// Scenario shape ranges.
    pub fuzz: FuzzConfig,
    /// Online run shape.
    pub replay: ReplayConfig,
}

impl ConformanceConfig {
    /// The fast tier-1 sweep: 200 seeds over small instances, with the
    /// expensive solver panel and metamorphic transforms strided so the
    /// whole run stays well under a minute.
    pub fn smoke() -> Self {
        Self {
            seeds: 200,
            base_seed: 0,
            tolerance: 1e-9,
            moves_per_walk: 48,
            ttsa_budget: 1500,
            differential_stride: 4,
            metamorphic_stride: 8,
            online_replays: 2,
            online_epochs: 4,
            fuzz: FuzzConfig::smoke(),
            replay: ReplayConfig::default(),
        }
    }

    /// The standalone-gate default (`tsajs-sim conformance`): every seed
    /// gets the full solver panel, every other seed the metamorphic
    /// transforms.
    pub fn standard() -> Self {
        Self {
            seeds: 50,
            differential_stride: 1,
            metamorphic_stride: 2,
            moves_per_walk: 64,
            online_replays: 3,
            online_epochs: 5,
            ..Self::smoke()
        }
    }

    /// The nightly deep sweep: more seeds, larger instances, longer
    /// walks, bigger budgets.
    pub fn deep() -> Self {
        Self {
            seeds: 400,
            moves_per_walk: 256,
            ttsa_budget: 5000,
            differential_stride: 1,
            metamorphic_stride: 1,
            online_replays: 6,
            online_epochs: 8,
            fuzz: FuzzConfig::deep(),
            ..Self::smoke()
        }
    }

    /// Overrides the number of seeds.
    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Overrides the first seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }
}

/// Sweeps `config.seeds` fuzzed instances through every invariant and
/// returns the aggregated verdict. Never panics on a failing invariant —
/// failures are collected into the report so a broken build still
/// produces a complete, actionable artifact.
pub fn run_conformance(config: &ConformanceConfig) -> VerdictReport {
    let oracle = Oracle::with_tolerance(config.tolerance);
    let mut feasibility = InvariantVerdict::new("feasibility_12b_12d");
    let mut kkt = InvariantVerdict::new("kkt_allocation_eq22");
    let mut bounds = InvariantVerdict::new("user_benefit_bounds_eq10");
    let mut incremental = InvariantVerdict::new("incremental_vs_resync");
    let mut order = InvariantVerdict::new("solver_partial_order");
    let mut threads = InvariantVerdict::new("tempering_thread_independence");
    let mut batched = InvariantVerdict::new("batched_proposal_determinism");
    let mut shard = InvariantVerdict::new("shard_equivalence");
    let mut shard_warm = InvariantVerdict::new("shard_warm_equivalence");
    let mut pipelined = InvariantVerdict::new("pipelined_halo_determinism");
    let mut permutation = InvariantVerdict::new("metamorphic_user_permutation");
    let mut rescale = InvariantVerdict::new("metamorphic_lambda_rescale");
    let mut online = InvariantVerdict::new("online_seed_replay");

    for i in 0..config.seeds {
        let seed = config.base_seed.wrapping_add(i);
        let scenario = fuzz::scenario(&config.fuzz, seed);
        let x = fuzz::assignment(
            &scenario,
            config.fuzz.offload_probability,
            seed ^ 0x9e37_79b9_7f4a_7c15,
        );
        feasibility.record(seed, oracle.check_feasibility(&scenario, &x));
        kkt.record(seed, oracle.check_kkt(&scenario, &x));
        bounds.record(seed, oracle.check_user_bounds(&scenario, &x));
        incremental.record(
            seed,
            oracle.check_incremental_walk(&scenario, seed, config.moves_per_walk),
        );
        if i % config.differential_stride.max(1) == 0 {
            order.record(
                seed,
                differential::check_partial_order(
                    &scenario,
                    seed,
                    config.ttsa_budget,
                    config.tolerance,
                ),
            );
            threads.record(
                seed,
                differential::check_thread_independence(&scenario, seed, config.ttsa_budget),
            );
            batched.record(
                seed,
                differential::check_batched_proposal_determinism(
                    &scenario,
                    seed,
                    config.ttsa_budget,
                ),
            );
            shard.record(
                seed,
                differential::check_shard_equivalence(&scenario, seed, config.tolerance),
            );
            shard_warm.record(
                seed,
                differential::check_shard_warm_equivalence(&scenario, seed, config.tolerance),
            );
            pipelined.record(
                seed,
                differential::check_pipelined_halo_determinism(&scenario, config.tolerance),
            );
        }
        if i % config.metamorphic_stride.max(1) == 0 {
            permutation.record(
                seed,
                differential::check_permutation(&scenario, seed, config.tolerance),
            );
            rescale.record(
                seed,
                differential::check_lambda_rescale(&scenario, 0.5, config.tolerance),
            );
        }
    }
    for r in 0..config.online_replays {
        // Salted away from the scenario seeds so replays explore churn
        // traces unrelated to the fuzz sweep.
        let seed = config.base_seed.wrapping_add(1_000_003 + r);
        online.record(
            seed,
            replay::check_online_replay(
                &config.replay,
                seed,
                config.online_epochs,
                config.tolerance,
            ),
        );
    }

    VerdictReport::new(
        config.seeds,
        config.base_seed,
        config.tolerance,
        vec![
            feasibility,
            kkt,
            bounds,
            incremental,
            order,
            threads,
            batched,
            shard,
            shard_warm,
            pipelined,
            permutation,
            rescale,
            online,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 acceptance sweep: ≥ 200 seeds, every invariant clean.
    #[test]
    fn smoke_sweep_has_zero_violations() {
        let config = ConformanceConfig::smoke();
        assert!(config.seeds >= 200);
        let report = run_conformance(&config);
        assert!(
            report.passed,
            "violations: {:?}",
            report
                .invariants
                .iter()
                .filter(|v| !v.ok())
                .map(|v| (v.invariant, &v.examples))
                .collect::<Vec<_>>()
        );
        // Every invariant actually ran.
        for verdict in &report.invariants {
            assert!(verdict.checks > 0, "{} never ran", verdict.invariant);
        }
        // And none of them sails anywhere near the tolerance.
        for verdict in &report.invariants {
            assert!(
                verdict.worst_residual <= config.tolerance,
                "{}: worst residual {}",
                verdict.invariant,
                verdict.worst_residual
            );
        }
    }

    #[test]
    fn reports_echo_their_configuration() {
        let report = run_conformance(&ConformanceConfig::smoke().with_seeds(2).with_base_seed(7));
        assert_eq!(report.seeds, 2);
        assert_eq!(report.base_seed, 7);
        assert_eq!(report.invariants.len(), 13);
    }
}
