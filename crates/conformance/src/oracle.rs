//! The invariant oracle: model-level checks any `(Scenario, Assignment)`
//! pair must satisfy, independent of which solver produced the decision.
//!
//! Four families of invariants, each traceable to the paper:
//!
//! * **Feasibility** — constraints 12b–12d (one slot per user, one user
//!   per slot), re-counted independently of `Assignment`'s own
//!   bookkeeping.
//! * **KKT allocation** — the closed-form CRA optimum of Eq. 22
//!   (`f*_us = f_s·√η_u / Σ_v √η_v`), its capacity exhaustion, and the
//!   agreement of Λ (Eq. 23) with the direct cost `Σ η_u / f*_us`.
//! * **Per-user benefit bounds** — Eq. 10: local users score exactly 0,
//!   offloaded users stay below `β_t + β_e`, and the weighted sum of
//!   per-user benefits reproduces both `SystemEvaluation::system_utility`
//!   and the closed-form `Evaluator::objective`.
//! * **Incremental agreement** — after arbitrary apply/undo/commit
//!   sequences, [`IncrementalObjective`] must agree with a fresh
//!   [`Evaluator`] to within the configured tolerance, and undo must be
//!   bit-exact.

use crate::fuzz;
use mec_system::{
    kkt_allocation, optimal_lambda_cost, Assignment, Evaluator, IncrementalObjective, Scenario,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The oracle's tolerance knob. All residuals are relative (normalized
/// by the magnitude of the quantity under test, floored at 1).
#[derive(Debug, Clone, Copy)]
pub struct Oracle {
    /// Maximum relative residual accepted by every check.
    pub tolerance: f64,
}

impl Default for Oracle {
    fn default() -> Self {
        Self { tolerance: 1e-9 }
    }
}

fn rel(actual: f64, expected: f64) -> f64 {
    (actual - expected).abs() / expected.abs().max(1.0)
}

impl Oracle {
    /// An oracle with an explicit tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self { tolerance }
    }

    /// Constraints 12b–12d, re-counted from scratch: every user holds at
    /// most one slot, every slot at most one user, and the assignment's
    /// forward (`slot`) and reverse (`occupant`) tables agree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_feasibility(&self, scenario: &Scenario, x: &Assignment) -> Result<f64, String> {
        x.verify_feasible(scenario)
            .map_err(|e| format!("verify_feasible rejected the assignment: {e}"))?;
        let mut occupied = 0usize;
        for s in scenario.server_ids() {
            for j in 0..scenario.num_subchannels() {
                let j = mec_types::SubchannelId::new(j);
                if let Some(u) = x.occupant(s, j) {
                    occupied += 1;
                    if x.slot(u) != Some((s, j)) {
                        return Err(format!(
                            "occupant table says {u} holds ({s}, {j}) but slot({u}) disagrees"
                        ));
                    }
                }
            }
        }
        let offloaded = scenario.user_ids().filter(|&u| x.is_offloaded(u)).count();
        if occupied != offloaded {
            return Err(format!(
                "{offloaded} users claim slots but {occupied} slots are occupied \
                 (constraints 12c/12d)"
            ));
        }
        if offloaded != x.num_offloaded() {
            return Err(format!(
                "num_offloaded() caches {} but {offloaded} users are offloaded",
                x.num_offloaded()
            ));
        }
        Ok(0.0)
    }

    /// The KKT allocation of Eq. 22: square-root shares, exact capacity
    /// exhaustion on every loaded server, constraint 12e/12f feasibility,
    /// and Λ (Eq. 23) equal to the direct cost `Σ η_u / f*_us`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first residual above tolerance.
    pub fn check_kkt(&self, scenario: &Scenario, x: &Assignment) -> Result<f64, String> {
        let f = kkt_allocation(scenario, x);
        f.verify(scenario, x)
            .map_err(|e| format!("KKT allocation violates 12e/12f: {e}"))?;
        let mut worst = 0.0f64;
        let mut direct_cost = 0.0f64;
        for s in scenario.server_ids() {
            if x.server_users_iter(s).next().is_none() {
                continue;
            }
            let capacity = scenario.server(s).capacity().as_hz();
            let denom: f64 = x
                .server_users_iter(s)
                .map(|u| scenario.coefficients(u).eta.sqrt())
                .sum();
            let mut load = 0.0f64;
            for u in x.server_users_iter(s) {
                let share = f.share(u).as_hz();
                load += share;
                let eta = scenario.coefficients(u).eta;
                if denom > 0.0 {
                    // f*_us · Σ√η must equal f_s · √η_u (Eq. 22).
                    let residual = rel(share * denom, capacity * eta.sqrt());
                    worst = worst.max(residual);
                    if residual > self.tolerance {
                        return Err(format!(
                            "Eq. 22 residual {residual:.3e} for {u} on {s} \
                             (share {share:.6e} Hz)"
                        ));
                    }
                }
                if eta > 0.0 {
                    direct_cost += eta / share;
                }
            }
            // The optimal split exhausts the server (Σ f*_us = f_s).
            let residual = rel(load, capacity);
            worst = worst.max(residual);
            if residual > self.tolerance {
                return Err(format!(
                    "{s} hands out {load:.6e} of {capacity:.6e} Hz \
                     (capacity-exhaustion residual {residual:.3e})"
                ));
            }
        }
        // Closed-form Λ (Eq. 23) against the direct per-user cost.
        let lambda = optimal_lambda_cost(scenario, x);
        let residual = rel(direct_cost, lambda);
        worst = worst.max(residual);
        if residual > self.tolerance {
            return Err(format!(
                "Λ (Eq. 23) = {lambda:.6e} but Σ η/f* = {direct_cost:.6e} \
                 (residual {residual:.3e})"
            ));
        }
        Ok(worst)
    }

    /// Per-user benefit bounds (Eq. 10) and objective consistency: local
    /// users score exactly 0 at their local cost, offloaded users stay
    /// below `β_t + β_e`, the reported benefit matches its recomputation
    /// from the reported times/energies, and `Σ λ_u J_u` reproduces both
    /// the evaluation's `system_utility` and `Evaluator::objective`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound or residual.
    pub fn check_user_bounds(&self, scenario: &Scenario, x: &Assignment) -> Result<f64, String> {
        let evaluator = Evaluator::new(scenario);
        let eval = evaluator
            .evaluate(x)
            .map_err(|e| format!("evaluate failed: {e}"))?;
        let mut worst = 0.0f64;
        let mut weighted_sum = 0.0f64;
        for u in scenario.user_ids() {
            let m = &eval.users[u.index()];
            let spec = scenario.user(u);
            let local = scenario.local_cost(u);
            if m.offloaded != x.is_offloaded(u) {
                return Err(format!(
                    "{u}: metrics and assignment disagree on offloading"
                ));
            }
            if m.offloaded {
                let bound = spec.preferences.beta_time() + spec.preferences.beta_energy();
                if !m.utility.is_finite() || m.utility >= bound {
                    return Err(format!(
                        "{u}: J_u = {} outside (-inf, {bound}) (Eq. 10)",
                        m.utility
                    ));
                }
                // Recompute Eq. 10 from the reported times and energies.
                let expected = spec.preferences.beta_time()
                    * (local.time.as_secs() - m.completion_time.as_secs())
                    / local.time.as_secs()
                    + spec.preferences.beta_energy()
                        * (local.energy.as_joules() - m.energy.as_joules())
                        / local.energy.as_joules();
                let residual = rel(m.utility, expected);
                worst = worst.max(residual);
                if residual > self.tolerance {
                    return Err(format!(
                        "{u}: reported J_u = {} but Eq. 10 over the reported \
                         metrics gives {expected} (residual {residual:.3e})",
                        m.utility
                    ));
                }
            } else {
                if m.utility != 0.0 {
                    return Err(format!("{u}: local user scored J_u = {} ≠ 0", m.utility));
                }
                if m.completion_time != local.time || m.energy != local.energy {
                    return Err(format!("{u}: local metrics differ from the local cost"));
                }
            }
            weighted_sum += spec.lambda.value() * m.utility;
        }
        // Σ λ_u J_u = system utility (Eq. 11) = closed-form J*(X) (Eq. 24).
        let residual = rel(eval.system_utility, weighted_sum);
        worst = worst.max(residual);
        if residual > self.tolerance {
            return Err(format!(
                "system_utility = {} but Σ λ_u J_u = {weighted_sum} (residual {residual:.3e})",
                eval.system_utility
            ));
        }
        let closed_form = evaluator.objective(x);
        let residual = rel(closed_form, eval.system_utility);
        worst = worst.max(residual);
        if residual > self.tolerance {
            return Err(format!(
                "closed-form J*(X) = {closed_form} but the direct evaluation \
                 gives {} (residual {residual:.3e})",
                eval.system_utility
            ));
        }
        Ok(worst)
    }

    /// Drives [`IncrementalObjective`] through `moves` random
    /// apply/undo/commit steps against a shadow assignment, checking that
    /// undo is bit-exact, that the maintained objective tracks a fresh
    /// [`Evaluator`] within tolerance, and that a final `resync` lands on
    /// the same value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence, tagged with the
    /// step at which it appeared.
    pub fn check_incremental_walk(
        &self,
        scenario: &Scenario,
        seed: u64,
        moves: usize,
    ) -> Result<f64, String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = fuzz::assignment(scenario, 0.7, seed ^ 0x9e37_79b9_7f4a_7c15);
        let evaluator = Evaluator::new(scenario);
        let mut inc = IncrementalObjective::new(scenario, start.clone())
            .map_err(|e| format!("incremental state rejected a feasible start: {e}"))?;
        let mut shadow = start;
        let mut worst = 0.0f64;
        for step in 0..moves {
            let mv = fuzz::random_move(inc.assignment(), scenario, &mut rng);
            let before = inc.current();
            let _ = inc.apply(&mv);
            if rng.gen_bool(0.5) {
                inc.undo();
                let after = inc.current();
                if after != before {
                    return Err(format!(
                        "step {step}: undo is not bit-exact ({before} became {after})"
                    ));
                }
            } else {
                mv.apply_to(&mut shadow)
                    .map_err(|e| format!("step {step}: move no longer applies to shadow: {e}"))?;
                inc.commit();
            }
            if step % 16 == 15 {
                if inc.assignment() != &shadow {
                    return Err(format!(
                        "step {step}: incremental assignment drifted from the shadow"
                    ));
                }
                let fresh = evaluator.objective(inc.assignment());
                let residual = rel(inc.current(), fresh);
                worst = worst.max(residual);
                if residual > self.tolerance {
                    return Err(format!(
                        "step {step}: incremental objective {} vs fresh {fresh} \
                         (residual {residual:.3e})",
                        inc.current()
                    ));
                }
            }
        }
        if inc.assignment() != &shadow {
            return Err("final incremental assignment drifted from the shadow".into());
        }
        inc.resync();
        let fresh = evaluator.objective(inc.assignment());
        let residual = rel(inc.current(), fresh);
        worst = worst.max(residual);
        if residual > self.tolerance {
            return Err(format!(
                "after resync: incremental objective {} vs fresh {fresh} \
                 (residual {residual:.3e})",
                inc.current()
            ));
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::FuzzConfig;

    #[test]
    fn fuzzed_pairs_pass_every_static_check() {
        let oracle = Oracle::default();
        let cfg = FuzzConfig::smoke();
        for seed in 0..30 {
            let sc = fuzz::scenario(&cfg, seed);
            let x = fuzz::assignment(&sc, cfg.offload_probability, seed);
            oracle.check_feasibility(&sc, &x).unwrap();
            oracle.check_kkt(&sc, &x).unwrap();
            oracle.check_user_bounds(&sc, &x).unwrap();
        }
    }

    #[test]
    fn incremental_walks_agree_with_fresh_evaluation() {
        let oracle = Oracle::default();
        let cfg = FuzzConfig::smoke();
        for seed in 0..10 {
            let sc = fuzz::scenario(&cfg, seed);
            let worst = oracle.check_incremental_walk(&sc, seed, 64).unwrap();
            assert!(worst <= oracle.tolerance);
        }
    }

    #[test]
    fn feasibility_check_rejects_foreign_dimensions() {
        let oracle = Oracle::default();
        let sc = fuzz::scenario(&FuzzConfig::smoke(), 1);
        let wrong =
            Assignment::with_dims(sc.num_users() + 1, sc.num_servers(), sc.num_subchannels());
        assert!(oracle.check_feasibility(&sc, &wrong).is_err());
    }

    #[test]
    fn a_zero_tolerance_oracle_still_accepts_exact_identities() {
        // All-local: every sum is empty, so every residual is exactly 0.
        let oracle = Oracle::with_tolerance(0.0);
        let sc = fuzz::scenario(&FuzzConfig::smoke(), 2);
        let x = Assignment::all_local(&sc);
        oracle.check_feasibility(&sc, &x).unwrap();
        oracle.check_kkt(&sc, &x).unwrap();
        oracle.check_user_bounds(&sc, &x).unwrap();
    }
}
