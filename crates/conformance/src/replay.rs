//! Online seed-replay verification.
//!
//! The online engine promises that a run is a pure function of its
//! `(params, config, churn trace, seed)` inputs and that every streamed
//! [`OnlineEpochReport`] is internally consistent with the schedule it
//! describes. This module replays a seeded engine twice — once stepping
//! and auditing each epoch against a cold re-evaluation, once
//! end-to-end — and demands identical report streams.

use crate::oracle::Oracle;
use mec_online::{
    AdmitAll, ChurnProcess, OnlineConfig, OnlineEngine, OnlineEpochReport, TraceChurn,
};
use mec_system::Evaluator;
use mec_types::{Error, Seconds};
use mec_workloads::{ExperimentParams, PoissonChurn};
use tsajs::{ResolveMode, TtsaConfig};

/// Shape of the replayed online run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Initial population.
    pub users: usize,
    /// Number of servers.
    pub servers: usize,
    /// Poisson arrival rate (users per second).
    pub arrival_rate: f64,
    /// Mean sojourn time of each user, in seconds.
    pub mean_sojourn_s: f64,
    /// Warm-start refresh budget per epoch.
    pub refresh_budget: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            users: 5,
            servers: 3,
            arrival_rate: 0.1,
            mean_sojourn_s: 60.0,
            refresh_budget: 150,
        }
    }
}

fn build_engine(config: &ReplayConfig, epochs: usize, seed: u64) -> Result<OnlineEngine, Error> {
    let params = ExperimentParams::paper_default()
        .with_users(config.users)
        .with_servers(config.servers);
    let online = OnlineConfig::pedestrian()
        .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
        .with_mode(ResolveMode::warm(config.refresh_budget));
    let churn = PoissonChurn::new(
        config.users,
        config.arrival_rate,
        Seconds::new(config.mean_sojourn_s),
    )?;
    // Cover the whole run plus slack so the trace never runs dry.
    let horizon = Seconds::new((epochs as f64 + 2.0) * 10.0);
    let trace: Box<dyn ChurnProcess> = Box::new(TraceChurn::poisson(&churn, horizon, seed));
    OnlineEngine::new(params, online, trace, Box::new(AdmitAll), seed)
}

fn audit_report(report: &OnlineEpochReport) -> Result<(), String> {
    if report.scheduled + report.forced_local != report.active_users {
        return Err(format!(
            "epoch {}: scheduled {} + forced_local {} ≠ active {}",
            report.epoch, report.scheduled, report.forced_local, report.active_users
        ));
    }
    if report.num_offloaded > report.scheduled {
        return Err(format!(
            "epoch {}: {} offloaded out of {} scheduled",
            report.epoch, report.num_offloaded, report.scheduled
        ));
    }
    if !(0.0..=1.0).contains(&report.deadline_hit_rate) {
        return Err(format!(
            "epoch {}: deadline hit rate {} outside [0, 1]",
            report.epoch, report.deadline_hit_rate
        ));
    }
    if !report.utility.is_finite() {
        return Err(format!("epoch {}: non-finite utility", report.epoch));
    }
    Ok(())
}

/// Replays one seeded online run for `epochs` epochs. Each streamed
/// report is audited for internal consistency; whenever the engine
/// exposes its epoch schedule, the decision is run through the static
/// oracle checks and its utility is recomputed cold. A second engine
/// built from the same seed must then produce an identical stream.
///
/// Returns the worst relative residual between streamed utilities and
/// their cold recomputation.
///
/// # Errors
///
/// Returns a description of the first inconsistency or divergence.
pub fn check_online_replay(
    config: &ReplayConfig,
    seed: u64,
    epochs: usize,
    tolerance: f64,
) -> Result<f64, String> {
    let oracle = Oracle::with_tolerance(tolerance);
    let mut engine = build_engine(config, epochs, seed)
        .map_err(|e| format!("engine construction failed: {e}"))?;
    let mut stream = Vec::with_capacity(epochs);
    let mut worst = 0.0f64;
    for _ in 0..epochs {
        let report = engine
            .step()
            .map_err(|e| format!("epoch {} failed: {e}", stream.len()))?;
        audit_report(&report)?;
        match engine.last_schedule() {
            Some((scenario, x)) => {
                oracle
                    .check_feasibility(scenario, x)
                    .map_err(|e| format!("epoch {}: {e}", report.epoch))?;
                oracle
                    .check_kkt(scenario, x)
                    .map_err(|e| format!("epoch {}: {e}", report.epoch))?;
                let cold = Evaluator::new(scenario).objective(x);
                let residual = (cold - report.utility).abs() / cold.abs().max(1.0);
                worst = worst.max(residual);
                if residual > tolerance {
                    return Err(format!(
                        "epoch {}: streamed utility {} but a cold solve of the \
                         epoch's schedule evaluates to {cold} (residual {residual:.3e})",
                        report.epoch, report.utility
                    ));
                }
            }
            None => {
                if report.scheduled > 0 {
                    return Err(format!(
                        "epoch {}: {} scheduled users but no schedule exposed",
                        report.epoch, report.scheduled
                    ));
                }
                if report.utility != 0.0 {
                    return Err(format!(
                        "epoch {}: empty schedule reported utility {}",
                        report.epoch, report.utility
                    ));
                }
            }
        }
        stream.push(report);
    }
    // Determinism: an identically-seeded engine must reproduce the
    // stream bit-for-bit.
    let replayed = build_engine(config, epochs, seed)
        .map_err(|e| format!("replay engine construction failed: {e}"))?
        .run(epochs)
        .map_err(|e| format!("replay run failed: {e}"))?;
    if replayed != stream {
        let first = stream
            .iter()
            .zip(&replayed)
            .position(|(a, b)| a != b)
            .unwrap_or(stream.len().min(replayed.len()));
        return Err(format!(
            "equal seeds diverged at epoch {first}: identical inputs must \
             produce identical report streams"
        ));
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_replays_are_clean() {
        for seed in 0..2 {
            let worst = check_online_replay(&ReplayConfig::default(), seed, 4, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(worst <= 1e-9, "seed {seed}: residual {worst}");
        }
    }
}
