//! Verdict reporting: the JSON-serializable outcome of a conformance run.

use serde::Serialize;

/// How many failing examples each invariant keeps (the rest are counted
/// but not stored, to bound report size on a badly broken build).
pub const MAX_EXAMPLES: usize = 5;

/// The outcome of one invariant across a whole conformance run.
#[derive(Debug, Clone, Serialize)]
pub struct InvariantVerdict {
    /// Stable invariant name (e.g. `kkt_allocation_eq22`).
    pub invariant: &'static str,
    /// How many times the invariant was checked.
    pub checks: u64,
    /// How many checks failed.
    pub violations: u64,
    /// Largest residual observed across *passing* checks — how close the
    /// implementation sails to the tolerance, even when everything holds.
    pub worst_residual: f64,
    /// Up to [`MAX_EXAMPLES`] descriptions of failing checks, each
    /// prefixed with the seed that reproduces it.
    pub examples: Vec<String>,
}

impl InvariantVerdict {
    /// A fresh verdict with zero checks.
    pub fn new(invariant: &'static str) -> Self {
        Self {
            invariant,
            checks: 0,
            violations: 0,
            worst_residual: 0.0,
            examples: Vec::new(),
        }
    }

    /// Records a passing check with its observed residual.
    pub fn pass(&mut self, residual: f64) {
        self.checks += 1;
        if residual > self.worst_residual {
            self.worst_residual = residual;
        }
    }

    /// Records a failing check.
    pub fn fail(&mut self, example: String) {
        self.checks += 1;
        self.violations += 1;
        if self.examples.len() < MAX_EXAMPLES {
            self.examples.push(example);
        }
    }

    /// Folds a check outcome (`Ok(residual)` / `Err(description)`) into
    /// the verdict, tagging failures with the seed that produced them.
    pub fn record(&mut self, seed: u64, outcome: Result<f64, String>) {
        match outcome {
            Ok(residual) => self.pass(residual),
            Err(msg) => self.fail(format!("seed {seed}: {msg}")),
        }
    }

    /// `true` when no check failed.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }
}

/// The full JSON verdict of a conformance run — what the
/// `tsajs-sim conformance` subcommand prints.
#[derive(Debug, Clone, Serialize)]
pub struct VerdictReport {
    /// Number of fuzzed scenario seeds swept.
    pub seeds: u64,
    /// First seed of the sweep.
    pub base_seed: u64,
    /// Relative tolerance every residual is held to.
    pub tolerance: f64,
    /// `true` iff every invariant reports zero violations.
    pub passed: bool,
    /// Total checks across all invariants.
    pub total_checks: u64,
    /// Total violations across all invariants.
    pub total_violations: u64,
    /// Per-invariant verdicts, in a fixed order.
    pub invariants: Vec<InvariantVerdict>,
}

impl VerdictReport {
    /// Assembles the report from per-invariant verdicts.
    pub fn new(
        seeds: u64,
        base_seed: u64,
        tolerance: f64,
        invariants: Vec<InvariantVerdict>,
    ) -> Self {
        let total_checks = invariants.iter().map(|v| v.checks).sum();
        let total_violations = invariants.iter().map(|v| v.violations).sum();
        Self {
            seeds,
            base_seed,
            tolerance,
            passed: total_violations == 0,
            total_checks,
            total_violations,
            invariants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_accumulate_and_cap_examples() {
        let mut v = InvariantVerdict::new("demo");
        v.record(1, Ok(1e-12));
        v.record(2, Ok(3e-12));
        assert!(v.ok());
        assert_eq!(v.checks, 2);
        assert_eq!(v.worst_residual, 3e-12);
        for seed in 0..10 {
            v.record(seed, Err("boom".into()));
        }
        assert!(!v.ok());
        assert_eq!(v.violations, 10);
        assert_eq!(v.examples.len(), MAX_EXAMPLES);
        assert!(v.examples[0].starts_with("seed 0:"));
    }

    #[test]
    fn report_rolls_up_totals_and_serializes() {
        let mut good = InvariantVerdict::new("good");
        good.pass(1e-13);
        let mut bad = InvariantVerdict::new("bad");
        bad.fail("seed 9: off by one".into());
        let report = VerdictReport::new(10, 0, 1e-9, vec![good, bad]);
        assert!(!report.passed);
        assert_eq!(report.total_checks, 2);
        assert_eq!(report.total_violations, 1);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["passed"], serde_json::Value::Bool(false));
        assert_eq!(value["invariants"].as_array().unwrap().len(), 2);
    }
}
