//! # mec-controller
//!
//! An embeddable, C-RAN-style scheduling service.
//!
//! The paper's architecture (§I) assumes "all BSs connect to a unified
//! Baseband Unit (BBU)" whose "centralized access to system state enhances
//! coordination and resource management" — i.e. one logical controller
//! runs the scheduler for the whole network. [`SchedulerService`] is that
//! component: a worker thread that accepts scheduling requests over a
//! channel, solves them with a configurable scheme, and returns tagged
//! responses. Clients are cheap cloneable handles; shutdown is graceful
//! and drains in-flight work.
//!
//! ## Example
//!
//! ```
//! use mec_controller::{SchedulerService, SchemeChoice};
//! use mec_workloads::{ExperimentParams, ScenarioGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = SchedulerService::spawn();
//! let scenario = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(6))
//!     .generate(1)?;
//! let response = service.schedule(scenario, SchemeChoice::Greedy, 1)?;
//! assert!(response.solution.utility.is_finite());
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mec_baselines::{GreedySolver, HJtoraSolver, LocalSearchSolver};
use mec_online::{OnlineEngine, OnlineEpochReport};
use mec_system::{Scenario, Solution, Solver};
use mec_types::Error;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use tsajs::{TsajsSolver, TtsaConfig};

/// Default bound of the request queue (see
/// [`SchedulerService::spawn_with_capacity`]).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Which scheme the controller should run for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeChoice {
    /// TSAJS with the paper's defaults (seeded per request).
    Tsajs,
    /// TSAJS with a truncated schedule for latency-bound control loops.
    TsajsQuick,
    /// The hJTORA-style heuristic.
    HJtora,
    /// Greedy admission.
    Greedy,
    /// First-improvement local search.
    LocalSearch,
}

impl SchemeChoice {
    fn build(self, seed: u64) -> Box<dyn Solver> {
        match self {
            SchemeChoice::Tsajs => Box::new(TsajsSolver::new(
                TtsaConfig::paper_default().with_seed(seed),
            )),
            SchemeChoice::TsajsQuick => Box::new(TsajsSolver::new(
                TtsaConfig::paper_default()
                    .with_min_temperature(1e-3)
                    .with_seed(seed),
            )),
            SchemeChoice::HJtora => Box::new(HJtoraSolver::new()),
            SchemeChoice::Greedy => Box::new(GreedySolver::new()),
            SchemeChoice::LocalSearch => Box::new(LocalSearchSolver::with_seed(seed)),
        }
    }
}

/// A scheduling request (internal form).
struct Request {
    id: u64,
    scenario: Scenario,
    scheme: SchemeChoice,
    seed: u64,
    reply: mpsc::Sender<SchedulerResponse>,
}

/// Worker mailbox messages. The request is boxed so the shutdown marker
/// does not pay for the scenario-sized variant.
enum Message {
    Schedule(Box<Request>),
    Shutdown,
}

/// A tagged scheduling result.
#[derive(Debug)]
pub struct SchedulerResponse {
    /// The request id this answers.
    pub id: u64,
    /// The solver's result.
    pub solution: Solution,
    /// The scheme that produced it.
    pub scheme: SchemeChoice,
}

/// Errors surfaced by the service API.
#[derive(Debug)]
pub enum ServiceError {
    /// The worker has shut down (or panicked) and accepts no more work.
    Stopped,
    /// The bounded request queue is full — explicit backpressure. The
    /// caller should retry later, shed the request, or run a larger
    /// capacity (see [`SchedulerService::spawn_with_capacity`]).
    Overloaded,
    /// The solver rejected the scenario (or the service stopped before
    /// answering).
    Solver(Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Stopped => write!(f, "scheduler service is stopped"),
            ServiceError::Overloaded => write!(f, "scheduler request queue is full"),
            ServiceError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The C-RAN controller: one worker thread draining a *bounded* request
/// queue.
///
/// Handles are cheap to clone and safe to use from many threads; requests
/// are served in FIFO order. The queue holds at most `capacity` pending
/// messages — when it is full, [`submit`](Self::submit) fails fast with
/// [`ServiceError::Overloaded`] instead of buffering without limit, so a
/// stalled worker surfaces as backpressure rather than unbounded memory
/// growth. Call [`shutdown`](Self::shutdown) (or drop the last handle) to
/// stop the worker; requests enqueued before the shutdown marker are
/// still served.
#[derive(Clone)]
pub struct SchedulerService {
    sender: mpsc::SyncSender<Message>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
    next_id: Arc<Mutex<u64>>,
}

impl SchedulerService {
    /// Starts the worker thread with the default queue bound
    /// ([`DEFAULT_QUEUE_CAPACITY`]).
    pub fn spawn() -> Self {
        Self::spawn_with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// Starts the worker thread with an explicit request-queue bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a rendezvous queue would make every
    /// non-blocking submit fail).
    pub fn spawn_with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let (sender, receiver) = mpsc::sync_channel::<Message>(capacity);
        let worker = std::thread::spawn(move || {
            while let Ok(message) = receiver.recv() {
                let request = match message {
                    Message::Schedule(request) => *request,
                    Message::Shutdown => break,
                };
                let mut solver = request.scheme.build(request.seed);
                if let Ok(solution) = solver.solve(&request.scenario) {
                    // A dropped client is fine; just discard the reply.
                    let _ = request.reply.send(SchedulerResponse {
                        id: request.id,
                        solution,
                        scheme: request.scheme,
                    });
                }
                // On solver error the reply sender drops, which the waiting
                // client observes as a disconnected channel.
            }
        });
        Self {
            sender,
            worker: Arc::new(Mutex::new(Some(worker))),
            next_id: Arc::new(Mutex::new(0)),
        }
    }

    fn allocate_id(&self) -> u64 {
        let mut guard = self.next_id.lock().expect("id counter never poisoned");
        *guard += 1;
        *guard
    }

    /// Submits a request and returns a receiver for its response —
    /// non-blocking; several requests can be in flight.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Overloaded`] if the bounded queue is full
    /// (backpressure — nothing was enqueued), or
    /// [`ServiceError::Stopped`] if the worker is gone.
    pub fn submit(
        &self,
        scenario: Scenario,
        scheme: SchemeChoice,
        seed: u64,
    ) -> Result<(u64, mpsc::Receiver<SchedulerResponse>), ServiceError> {
        let (reply, receiver) = mpsc::channel();
        let id = self.allocate_id();
        self.sender
            .try_send(Message::Schedule(Box::new(Request {
                id,
                scenario,
                scheme,
                seed,
                reply,
            })))
            .map_err(|e| match e {
                mpsc::TrySendError::Full(_) => ServiceError::Overloaded,
                mpsc::TrySendError::Disconnected(_) => ServiceError::Stopped,
            })?;
        Ok((id, receiver))
    }

    /// Submits a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the worker is gone,
    /// [`ServiceError::Overloaded`] if the queue is full, or
    /// [`ServiceError::Solver`] if the solver rejected the scenario (or
    /// the service shut down before answering).
    pub fn schedule(
        &self,
        scenario: Scenario,
        scheme: SchemeChoice,
        seed: u64,
    ) -> Result<SchedulerResponse, ServiceError> {
        let (_, receiver) = self.submit(scenario, scheme, seed)?;
        receiver.recv().map_err(|_| {
            ServiceError::Solver(Error::UnsupportedScenario(
                "the request was not answered".into(),
            ))
        })
    }

    /// Stops the worker after it drains everything enqueued so far, and
    /// joins it. Idempotent; all clones of the handle become `Stopped`
    /// for new submissions once the worker exits.
    pub fn shutdown(&self) {
        let _ = self.sender.send(Message::Shutdown);
        if let Some(handle) = self
            .worker
            .lock()
            .expect("worker mutex never poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for SchedulerService {
    fn drop(&mut self) {
        // The last handle stops and joins the worker.
        if Arc::strong_count(&self.worker) == 1 {
            self.shutdown();
        }
    }
}

/// A background [`OnlineEngine`] run streaming one [`OnlineEpochReport`]
/// per epoch.
///
/// The controller analogue of `SchedulerService` for the online setting:
/// the engine steps on a worker thread while the caller consumes the
/// epoch-report stream as it is produced (dashboards, loggers, the CLI's
/// JSONL output). The report channel is buffered for the whole run, so
/// the worker never blocks on a slow consumer; dropping the receiver
/// early just stops the stream, and [`join`](Self::join) returns the
/// engine (with its SLA log) once all epochs ran.
pub struct OnlineRun {
    reports: mpsc::Receiver<OnlineEpochReport>,
    worker: Option<JoinHandle<Result<OnlineEngine, Error>>>,
}

impl OnlineRun {
    /// Starts stepping `engine` for `epochs` epochs on a worker thread.
    pub fn spawn(mut engine: OnlineEngine, epochs: usize) -> Self {
        let (sender, reports) = mpsc::sync_channel(epochs.max(1));
        let worker = std::thread::spawn(move || {
            for _ in 0..epochs {
                let report = engine.step()?;
                if sender.send(report).is_err() {
                    // Consumer hung up; finish silently is pointless —
                    // return the engine as-is.
                    break;
                }
            }
            Ok(engine)
        });
        Self {
            reports,
            worker: Some(worker),
        }
    }

    /// The live report stream (one entry per completed epoch, in order).
    pub fn reports(&self) -> &mpsc::Receiver<OnlineEpochReport> {
        &self.reports
    }

    /// Iterates reports as they arrive, ending when the run finishes.
    pub fn iter(&self) -> mpsc::Iter<'_, OnlineEpochReport> {
        self.reports.iter()
    }

    /// Waits for the run to finish and returns the engine (SLA log,
    /// counters, and all) for post-run inspection.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Solver`] if an epoch failed, or
    /// [`ServiceError::Stopped`] if the worker panicked.
    pub fn join(mut self) -> Result<OnlineEngine, ServiceError> {
        let handle = self.worker.take().expect("worker joined exactly once");
        // Drop the receiver first so a worker blocked on a full buffer
        // (impossible with the run-sized buffer, but cheap insurance)
        // unblocks.
        drop(self.reports);
        match handle.join() {
            Ok(Ok(engine)) => Ok(engine),
            Ok(Err(e)) => Err(ServiceError::Solver(e)),
            Err(_) => Err(ServiceError::Stopped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workloads::{ExperimentParams, ScenarioGenerator};

    fn scenario(seed: u64) -> Scenario {
        ScenarioGenerator::new(
            ExperimentParams::paper_default()
                .with_users(6)
                .with_servers(3),
        )
        .generate(seed)
        .unwrap()
    }

    #[test]
    fn schedules_one_request() {
        let service = SchedulerService::spawn();
        let response = service
            .schedule(scenario(1), SchemeChoice::Greedy, 1)
            .unwrap();
        assert_eq!(response.scheme, SchemeChoice::Greedy);
        assert!(response.solution.utility.is_finite());
    }

    #[test]
    fn pipelines_many_requests_in_order() {
        let service = SchedulerService::spawn();
        let mut receivers = Vec::new();
        for seed in 0..6 {
            let (id, rx) = service
                .submit(scenario(seed), SchemeChoice::Greedy, seed)
                .unwrap();
            receivers.push((id, rx));
        }
        for (id, rx) in receivers {
            let response = rx.recv().unwrap();
            assert_eq!(response.id, id);
        }
    }

    #[test]
    fn many_client_threads_share_one_service() {
        let service = SchedulerService::spawn();
        std::thread::scope(|scope| {
            for seed in 0..4u64 {
                let handle = service.clone();
                scope.spawn(move || {
                    let response = handle
                        .schedule(scenario(seed), SchemeChoice::TsajsQuick, seed)
                        .unwrap();
                    assert!(response.solution.utility >= 0.0);
                });
            }
        });
    }

    #[test]
    fn responses_match_direct_solver_runs() {
        let service = SchedulerService::spawn();
        let sc = scenario(7);
        let via_service = service
            .schedule(sc.clone(), SchemeChoice::Greedy, 7)
            .unwrap();
        let direct = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(via_service.solution.utility, direct.utility);
        assert_eq!(via_service.solution.assignment, direct.assignment);
    }

    #[test]
    fn shutdown_serves_prior_requests_then_rejects_new_ones() {
        let service = SchedulerService::spawn();
        let (_, rx) = service
            .submit(scenario(3), SchemeChoice::Greedy, 3)
            .unwrap();
        service.shutdown();
        // The request enqueued before the shutdown marker is answered.
        let response = rx.recv().unwrap();
        assert!(response.solution.utility.is_finite());
        // New submissions fail.
        assert!(matches!(
            service.submit(scenario(4), SchemeChoice::Greedy, 4),
            Err(ServiceError::Stopped)
        ));
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn dropping_all_handles_stops_the_worker() {
        let service = SchedulerService::spawn();
        let clone = service.clone();
        drop(service);
        // The clone still works.
        let response = clone
            .schedule(scenario(5), SchemeChoice::Greedy, 5)
            .unwrap();
        assert!(response.solution.utility.is_finite());
        drop(clone); // joins the worker without hanging the test
    }

    #[test]
    fn saturating_the_bounded_queue_rejects_with_overloaded() {
        // Capacity 1: while the worker grinds a slow anneal, at most one
        // request can wait; a burst must observe explicit backpressure.
        let service = SchedulerService::spawn_with_capacity(1);
        let slow = ScenarioGenerator::new(
            ExperimentParams::paper_default()
                .with_users(60)
                .with_servers(7),
        )
        .generate(11)
        .unwrap();
        let mut accepted = Vec::new();
        let mut overloaded = 0;
        for seed in 0..10u64 {
            match service.submit(slow.clone(), SchemeChoice::TsajsQuick, seed) {
                Ok((id, rx)) => accepted.push((id, rx)),
                Err(ServiceError::Overloaded) => overloaded += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(overloaded > 0, "a burst of 10 into capacity 1 must shed");
        assert!(!accepted.is_empty(), "the first request is always taken");
        // Accepted requests are still answered; nothing enqueued was lost.
        for (id, rx) in accepted {
            let response = rx.recv().unwrap();
            assert_eq!(response.id, id);
            assert!(response.solution.utility.is_finite());
        }
        service.shutdown();
        // After shutdown the failure mode flips to Stopped, not Overloaded.
        assert!(matches!(
            service.submit(scenario(0), SchemeChoice::Greedy, 0),
            Err(ServiceError::Stopped)
        ));
    }

    #[test]
    fn filling_the_bounded_queue_is_deterministic_and_fifo() {
        // Deterministic half of the backpressure contract: submitting
        // exactly `capacity` requests can never shed — the queue has the
        // room whether or not the worker has started draining — and the
        // accepted requests are served strictly in submission order.
        // (The racy half — a burst larger than the queue observes
        // `Overloaded` while the worker grinds — is pinned by
        // `saturating_the_bounded_queue_rejects_with_overloaded`; the
        // degrade-instead-of-reject ladder built on top of this error is
        // pinned in mec-service's `tests/service.rs`.)
        let capacity = 4;
        let service = SchedulerService::spawn_with_capacity(capacity);
        for round in 0..2u64 {
            let mut pending = Vec::new();
            for i in 0..capacity as u64 {
                let seed = round * capacity as u64 + i;
                let (id, rx) = service
                    .submit(scenario(seed), SchemeChoice::Greedy, seed)
                    .expect("capacity-many submissions never shed");
                pending.push((id, rx));
            }
            // Ids are allocated in submission order…
            for pair in pending.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
            // …and every accepted request is answered with its own id
            // (FIFO: draining in submission order never deadlocks).
            for (id, rx) in pending {
                let response = rx.recv().unwrap();
                assert_eq!(response.id, id);
                assert!(response.solution.utility.is_finite());
            }
        }
        service.shutdown();
    }

    #[test]
    fn online_run_streams_reports_and_returns_the_engine() {
        use mec_online::{AdmitAll, OnlineConfig, OnlineEngine, TraceChurn};
        use mec_types::Seconds;
        use mec_workloads::PoissonChurn;

        let params = ExperimentParams::paper_default().with_servers(3);
        let config = OnlineConfig::pedestrian()
            .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
            .with_mode(tsajs::ResolveMode::warm(120));
        let churn = PoissonChurn::new(6, 0.1, Seconds::new(40.0)).unwrap();
        let engine = OnlineEngine::new(
            params,
            config,
            Box::new(TraceChurn::poisson(&churn, Seconds::new(100.0), 3)),
            Box::new(AdmitAll),
            3,
        )
        .unwrap();

        let run = OnlineRun::spawn(engine, 6);
        let streamed: Vec<_> = run.iter().collect();
        assert_eq!(streamed.len(), 6);
        assert_eq!(streamed[0].epoch, 0);
        assert_eq!(streamed[5].epoch, 5);

        let engine = run.join().unwrap();
        assert_eq!(engine.epochs_run(), 6);
        // The streamed run matches a direct same-seed run exactly.
        let churn = PoissonChurn::new(6, 0.1, Seconds::new(40.0)).unwrap();
        let mut direct = OnlineEngine::new(
            params,
            OnlineConfig::pedestrian()
                .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
                .with_mode(tsajs::ResolveMode::warm(120)),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(100.0), 3)),
            Box::new(AdmitAll),
            3,
        )
        .unwrap();
        assert_eq!(direct.run(6).unwrap(), streamed);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let service = SchedulerService::spawn();
        let (a, _rx_a) = service
            .submit(scenario(0), SchemeChoice::Greedy, 0)
            .unwrap();
        let (b, _rx_b) = service
            .submit(scenario(1), SchemeChoice::Greedy, 1)
            .unwrap();
        assert!(b > a);
    }
}
