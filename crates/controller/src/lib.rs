//! # mec-controller
//!
//! An embeddable, C-RAN-style scheduling service.
//!
//! The paper's architecture (§I) assumes "all BSs connect to a unified
//! Baseband Unit (BBU)" whose "centralized access to system state enhances
//! coordination and resource management" — i.e. one logical controller
//! runs the scheduler for the whole network. [`SchedulerService`] is that
//! component: a worker thread that accepts scheduling requests over a
//! channel, solves them with a configurable scheme, and returns tagged
//! responses. Clients are cheap cloneable handles; shutdown is graceful
//! and drains in-flight work.
//!
//! ## Example
//!
//! ```
//! use mec_controller::{SchedulerService, SchemeChoice};
//! use mec_workloads::{ExperimentParams, ScenarioGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = SchedulerService::spawn();
//! let scenario = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(6))
//!     .generate(1)?;
//! let response = service.schedule(scenario, SchemeChoice::Greedy, 1)?;
//! assert!(response.solution.utility.is_finite());
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mec_baselines::{GreedySolver, HJtoraSolver, LocalSearchSolver};
use mec_system::{Scenario, Solution, Solver};
use mec_types::Error;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use tsajs::{TsajsSolver, TtsaConfig};

/// Which scheme the controller should run for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeChoice {
    /// TSAJS with the paper's defaults (seeded per request).
    Tsajs,
    /// TSAJS with a truncated schedule for latency-bound control loops.
    TsajsQuick,
    /// The hJTORA-style heuristic.
    HJtora,
    /// Greedy admission.
    Greedy,
    /// First-improvement local search.
    LocalSearch,
}

impl SchemeChoice {
    fn build(self, seed: u64) -> Box<dyn Solver> {
        match self {
            SchemeChoice::Tsajs => Box::new(TsajsSolver::new(
                TtsaConfig::paper_default().with_seed(seed),
            )),
            SchemeChoice::TsajsQuick => Box::new(TsajsSolver::new(
                TtsaConfig::paper_default()
                    .with_min_temperature(1e-3)
                    .with_seed(seed),
            )),
            SchemeChoice::HJtora => Box::new(HJtoraSolver::new()),
            SchemeChoice::Greedy => Box::new(GreedySolver::new()),
            SchemeChoice::LocalSearch => Box::new(LocalSearchSolver::with_seed(seed)),
        }
    }
}

/// A scheduling request (internal form).
struct Request {
    id: u64,
    scenario: Scenario,
    scheme: SchemeChoice,
    seed: u64,
    reply: mpsc::Sender<SchedulerResponse>,
}

/// Worker mailbox messages. The request is boxed so the shutdown marker
/// does not pay for the scenario-sized variant.
enum Message {
    Schedule(Box<Request>),
    Shutdown,
}

/// A tagged scheduling result.
#[derive(Debug)]
pub struct SchedulerResponse {
    /// The request id this answers.
    pub id: u64,
    /// The solver's result.
    pub solution: Solution,
    /// The scheme that produced it.
    pub scheme: SchemeChoice,
}

/// Errors surfaced by the service API.
#[derive(Debug)]
pub enum ServiceError {
    /// The worker has shut down (or panicked) and accepts no more work.
    Stopped,
    /// The solver rejected the scenario (or the service stopped before
    /// answering).
    Solver(Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Stopped => write!(f, "scheduler service is stopped"),
            ServiceError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The C-RAN controller: one worker thread draining a request queue.
///
/// Handles are cheap to clone and safe to use from many threads; requests
/// are served in FIFO order. Call [`shutdown`](Self::shutdown) (or drop
/// the last handle) to stop the worker; requests enqueued before the
/// shutdown marker are still served.
#[derive(Clone)]
pub struct SchedulerService {
    sender: mpsc::Sender<Message>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
    next_id: Arc<Mutex<u64>>,
}

impl SchedulerService {
    /// Starts the worker thread.
    pub fn spawn() -> Self {
        let (sender, receiver) = mpsc::channel::<Message>();
        let worker = std::thread::spawn(move || {
            while let Ok(message) = receiver.recv() {
                let request = match message {
                    Message::Schedule(request) => *request,
                    Message::Shutdown => break,
                };
                let mut solver = request.scheme.build(request.seed);
                if let Ok(solution) = solver.solve(&request.scenario) {
                    // A dropped client is fine; just discard the reply.
                    let _ = request.reply.send(SchedulerResponse {
                        id: request.id,
                        solution,
                        scheme: request.scheme,
                    });
                }
                // On solver error the reply sender drops, which the waiting
                // client observes as a disconnected channel.
            }
        });
        Self {
            sender,
            worker: Arc::new(Mutex::new(Some(worker))),
            next_id: Arc::new(Mutex::new(0)),
        }
    }

    fn allocate_id(&self) -> u64 {
        let mut guard = self.next_id.lock().expect("id counter never poisoned");
        *guard += 1;
        *guard
    }

    /// Submits a request and returns a receiver for its response —
    /// non-blocking; several requests can be in flight.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Stopped`] if the worker is gone.
    pub fn submit(
        &self,
        scenario: Scenario,
        scheme: SchemeChoice,
        seed: u64,
    ) -> Result<(u64, mpsc::Receiver<SchedulerResponse>), ServiceError> {
        let (reply, receiver) = mpsc::channel();
        let id = self.allocate_id();
        self.sender
            .send(Message::Schedule(Box::new(Request {
                id,
                scenario,
                scheme,
                seed,
                reply,
            })))
            .map_err(|_| ServiceError::Stopped)?;
        Ok((id, receiver))
    }

    /// Submits a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the worker is gone, or
    /// [`ServiceError::Solver`] if the solver rejected the scenario (or
    /// the service shut down before answering).
    pub fn schedule(
        &self,
        scenario: Scenario,
        scheme: SchemeChoice,
        seed: u64,
    ) -> Result<SchedulerResponse, ServiceError> {
        let (_, receiver) = self.submit(scenario, scheme, seed)?;
        receiver.recv().map_err(|_| {
            ServiceError::Solver(Error::UnsupportedScenario(
                "the request was not answered".into(),
            ))
        })
    }

    /// Stops the worker after it drains everything enqueued so far, and
    /// joins it. Idempotent; all clones of the handle become `Stopped`
    /// for new submissions once the worker exits.
    pub fn shutdown(&self) {
        let _ = self.sender.send(Message::Shutdown);
        if let Some(handle) = self
            .worker
            .lock()
            .expect("worker mutex never poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for SchedulerService {
    fn drop(&mut self) {
        // The last handle stops and joins the worker.
        if Arc::strong_count(&self.worker) == 1 {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workloads::{ExperimentParams, ScenarioGenerator};

    fn scenario(seed: u64) -> Scenario {
        ScenarioGenerator::new(
            ExperimentParams::paper_default()
                .with_users(6)
                .with_servers(3),
        )
        .generate(seed)
        .unwrap()
    }

    #[test]
    fn schedules_one_request() {
        let service = SchedulerService::spawn();
        let response = service
            .schedule(scenario(1), SchemeChoice::Greedy, 1)
            .unwrap();
        assert_eq!(response.scheme, SchemeChoice::Greedy);
        assert!(response.solution.utility.is_finite());
    }

    #[test]
    fn pipelines_many_requests_in_order() {
        let service = SchedulerService::spawn();
        let mut receivers = Vec::new();
        for seed in 0..6 {
            let (id, rx) = service
                .submit(scenario(seed), SchemeChoice::Greedy, seed)
                .unwrap();
            receivers.push((id, rx));
        }
        for (id, rx) in receivers {
            let response = rx.recv().unwrap();
            assert_eq!(response.id, id);
        }
    }

    #[test]
    fn many_client_threads_share_one_service() {
        let service = SchedulerService::spawn();
        std::thread::scope(|scope| {
            for seed in 0..4u64 {
                let handle = service.clone();
                scope.spawn(move || {
                    let response = handle
                        .schedule(scenario(seed), SchemeChoice::TsajsQuick, seed)
                        .unwrap();
                    assert!(response.solution.utility >= 0.0);
                });
            }
        });
    }

    #[test]
    fn responses_match_direct_solver_runs() {
        let service = SchedulerService::spawn();
        let sc = scenario(7);
        let via_service = service
            .schedule(sc.clone(), SchemeChoice::Greedy, 7)
            .unwrap();
        let direct = GreedySolver::new().solve(&sc).unwrap();
        assert_eq!(via_service.solution.utility, direct.utility);
        assert_eq!(via_service.solution.assignment, direct.assignment);
    }

    #[test]
    fn shutdown_serves_prior_requests_then_rejects_new_ones() {
        let service = SchedulerService::spawn();
        let (_, rx) = service
            .submit(scenario(3), SchemeChoice::Greedy, 3)
            .unwrap();
        service.shutdown();
        // The request enqueued before the shutdown marker is answered.
        let response = rx.recv().unwrap();
        assert!(response.solution.utility.is_finite());
        // New submissions fail.
        assert!(matches!(
            service.submit(scenario(4), SchemeChoice::Greedy, 4),
            Err(ServiceError::Stopped)
        ));
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn dropping_all_handles_stops_the_worker() {
        let service = SchedulerService::spawn();
        let clone = service.clone();
        drop(service);
        // The clone still works.
        let response = clone
            .schedule(scenario(5), SchemeChoice::Greedy, 5)
            .unwrap();
        assert!(response.solution.utility.is_finite());
        drop(clone); // joins the worker without hanging the test
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let service = SchedulerService::spawn();
        let (a, _rx_a) = service
            .submit(scenario(0), SchemeChoice::Greedy, 0)
            .unwrap();
        let (b, _rx_b) = service
            .submit(scenario(1), SchemeChoice::Greedy, 1)
            .unwrap();
        assert!(b > a);
    }
}
