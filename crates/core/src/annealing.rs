//! The TTSA loop (Algorithm 1).

use crate::config::{Cooling, InitialSolution, InitialTemperature, TtsaConfig};
use crate::moves::NeighborhoodKernel;
use crate::trace::{EpochRecord, SearchTrace};
use mec_system::{Assignment, IncrementalObjective, MoveDesc, Scenario};
use mec_types::{ServerId, UserId};
use rand::Rng;

/// The result of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// Best decision found.
    pub assignment: Assignment,
    /// Its objective `J*(X)`.
    pub objective: f64,
    /// Total neighborhood proposals evaluated.
    pub proposals: u64,
    /// Temperature epochs executed.
    pub epochs: u64,
    /// Per-epoch trace, when requested.
    pub trace: Option<SearchTrace>,
}

/// Generates the initial feasible solution (Algorithm 1, line 5).
pub(crate) fn initial_solution<R: Rng + ?Sized>(
    scenario: &Scenario,
    policy: InitialSolution,
    rng: &mut R,
) -> Assignment {
    let mut x = Assignment::all_local(scenario);
    if let InitialSolution::RandomFeasible {
        offload_probability,
    } = policy
    {
        for u in 0..scenario.num_users() {
            if rng.gen_bool(offload_probability) {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(UserId::new(u), s, j)
                        .expect("slot was reported free");
                }
            }
        }
    }
    x
}

/// Runs threshold-triggered simulated annealing (Algorithm 1) on a
/// scenario and returns the best decision found.
///
/// The caller supplies the RNG so repeated runs can share or fork seeds;
/// [`TsajsSolver`](crate::TsajsSolver) wraps this with the [`Solver`]
/// trait.
///
/// # Panics
///
/// Panics if `config` fails [`TtsaConfig::validate`]; validate before
/// calling when the configuration is untrusted.
///
/// [`Solver`]: mec_system::Solver
pub fn anneal<R: Rng + ?Sized>(
    scenario: &Scenario,
    config: &TtsaConfig,
    kernel: &NeighborhoodKernel,
    rng: &mut R,
) -> AnnealOutcome {
    let initial = initial_solution(scenario, config.initial_solution, rng);
    anneal_from(scenario, config, kernel, rng, initial)
}

/// Proposal budget between full re-synchronizations of the incremental
/// objective state (bounds floating-point drift; matches
/// `LocalSearchSolver::RESYNC_INTERVAL`). Checked at epoch boundaries.
pub(crate) const RESYNC_INTERVAL: u64 = 4_096;

/// The initial temperature `T₀` (Algorithm 1, line 3).
pub(crate) fn resolve_initial_temperature(config: &TtsaConfig, scenario: &Scenario) -> f64 {
    match config.initial_temperature {
        InitialTemperature::SubchannelCount => scenario.num_subchannels() as f64,
        InitialTemperature::Fixed(t) => t,
    }
}

/// The accepted-worse threshold `maxCount` for the configured cooling rule
/// (`u64::MAX` disables the trigger for plain geometric cooling).
pub(crate) fn resolve_max_count(config: &TtsaConfig) -> u64 {
    match config.cooling {
        Cooling::ThresholdTriggered {
            max_count_factor, ..
        } => (max_count_factor * config.inner_iterations as f64).ceil() as u64,
        Cooling::Geometric { .. } => u64::MAX,
    }
}

/// One annealing chain's walk state: the incremental objective, the
/// incumbent/best pair, and the counters that drive cooling and drift
/// control. [`anneal_from`] owns exactly one; the tempering engine owns
/// one per replica.
#[derive(Debug)]
pub(crate) struct ChainState<'a> {
    pub(crate) inc: IncrementalObjective<'a>,
    pub(crate) current_obj: f64,
    pub(crate) best: Assignment,
    pub(crate) best_obj: f64,
    /// Accepted-worse counter (Algorithm 1, line 4).
    pub(crate) count: u64,
    pub(crate) proposals: u64,
    pub(crate) last_resync: u64,
    /// Reusable candidate scratch for the batched proposal step (capacity
    /// reserved for the configured batch width, so the hot loop never
    /// allocates).
    batch: Vec<MoveDesc>,
    /// Speculative scores paired with `batch`, same reuse discipline.
    scores: Vec<f64>,
}

impl<'a> ChainState<'a> {
    /// Builds a chain seeded with `initial`, with candidate scratch sized
    /// for `batch_width` speculative proposals per step.
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not fit the scenario's geometry.
    pub(crate) fn from_initial(
        scenario: &'a Scenario,
        initial: Assignment,
        batch_width: usize,
    ) -> Self {
        let inc = IncrementalObjective::new(scenario, initial)
            .expect("warm-start decision must fit the scenario");
        let current_obj = inc.current();
        let best = inc.assignment().clone();
        let k = batch_width.max(1);
        Self {
            inc,
            current_obj,
            best,
            best_obj: current_obj,
            count: 0,
            proposals: 0,
            last_resync: 0,
            batch: Vec::with_capacity(k),
            scores: Vec::with_capacity(k),
        }
    }
}

/// Per-epoch acceptance counters, for tracing.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpochStats {
    pub(crate) accepted_worse: u32,
    pub(crate) accepted_better: u32,
}

/// Runs one temperature epoch (Algorithm 1, lines 9-25):
/// `config.inner_iterations` proposal steps at `temperature`, each step
/// drawing `config.batch_width` speculative candidates, followed by the
/// epoch-boundary drift-control resync.
///
/// Each step has three phases with a fixed draw order, which is the
/// seeded-trajectory contract shared by the single chain and every
/// tempering replica:
///
/// 1. **Draw** — all `K` candidate moves are drawn up front against the
///    same incumbent (the move-kernel draws, in candidate order);
/// 2. **Score** — every candidate is scored through the speculative
///    [`IncrementalObjective::score`] path, which replays the apply-path
///    arithmetic bit-exactly without touching the state, so rejected
///    candidates cost no mutation, no journaling, and no undo;
/// 3. **Select** — candidates are judged sequentially in draw order:
///    an improving candidate is accepted outright, otherwise one uniform
///    is drawn for the Metropolis test (lines 20-22); the first
///    acceptance wins and only that move is applied and committed.
///
/// With `batch_width == 1` the step consumes the legacy RNG stream
/// verbatim (one move proposal, then — only on the Metropolis branch —
/// one uniform) and reproduces the historical apply/undo trajectory bit
/// for bit. Every scored candidate counts as a proposal.
pub(crate) fn run_epoch<R: Rng + ?Sized>(
    scenario: &Scenario,
    config: &TtsaConfig,
    kernel: &NeighborhoodKernel,
    temperature: f64,
    state: &mut ChainState<'_>,
    rng: &mut R,
) -> EpochStats {
    let mut stats = EpochStats::default();
    let k = config.batch_width.max(1);
    for _ in 0..config.inner_iterations {
        // Phase 1: fixed draw order, all K candidates against the same
        // incumbent. The scratch vectors were sized for K at
        // construction, so the pushes never allocate.
        kernel.propose_batch(scenario, state.inc.assignment(), k, &mut state.batch, rng);
        // Phase 2: speculative scoring — no state mutation.
        state.scores.clear();
        for mv in &state.batch {
            state.scores.push(state.inc.score(mv));
        }
        state.proposals += k as u64;
        // Phase 3: sequential Metropolis selection; first acceptance
        // wins, the rest of the batch is discarded.
        for (mv, &candidate_obj) in state.batch.iter().zip(state.scores.iter()) {
            let delta = candidate_obj - state.current_obj;
            if delta > 0.0 {
                state.inc.apply(mv);
                state.inc.commit();
                state.current_obj = candidate_obj;
                stats.accepted_better += 1;
                if state.current_obj > state.best_obj {
                    state.best.clone_from(state.inc.assignment());
                    state.best_obj = state.current_obj;
                }
                break;
            } else if (delta / temperature).exp() > rng.gen::<f64>() {
                // Metropolis acceptance of a worsening move (line 20-22).
                state.inc.apply(mv);
                state.inc.commit();
                state.current_obj = candidate_obj;
                state.count += 1;
                stats.accepted_worse += 1;
                break;
            }
        }
    }

    // Drift control: re-synchronize the incremental sums against the
    // assignment to discard the floating-point drift accumulated by the
    // accepted in-place updates (~ulp per accepted move; the equivalence
    // property test bounds it below 1e-9 relative over long walks).
    // Epochs are short, so resyncing each one would cost more than the
    // proposals it guards — every `RESYNC_INTERVAL` proposals matches the
    // LocalSearch baseline's policy.
    if state.proposals - state.last_resync >= RESYNC_INTERVAL {
        state.inc.resync();
        state.current_obj = state.inc.current();
        state.last_resync = state.proposals;
    }
    stats
}

/// Applies one cooling step (Algorithm 1, lines 26-30) to `temperature`
/// and the accepted-worse counter; returns whether the threshold trigger
/// fired.
pub(crate) fn apply_cooling(
    cooling: Cooling,
    max_count: u64,
    temperature: &mut f64,
    count: &mut u64,
) -> bool {
    match cooling {
        Cooling::ThresholdTriggered {
            alpha_slow,
            alpha_fast,
            ..
        } => {
            if *count < max_count {
                *temperature *= alpha_slow;
                false
            } else {
                *temperature *= alpha_fast;
                *count = 0;
                true
            }
        }
        Cooling::Geometric { alpha } => {
            *temperature *= alpha;
            false
        }
    }
}

/// [`anneal`] with an explicit starting decision (warm start): the
/// incremental re-scheduling path, where the previous epoch's schedule
/// seeds the walk and a tight [`proposal_budget`] makes the refresh
/// cheap.
///
/// # Panics
///
/// As [`anneal`]; additionally if `initial` does not fit the scenario's
/// geometry.
///
/// [`proposal_budget`]: TtsaConfig::proposal_budget
pub fn anneal_from<R: Rng + ?Sized>(
    scenario: &Scenario,
    config: &TtsaConfig,
    kernel: &NeighborhoodKernel,
    rng: &mut R,
    initial: Assignment,
) -> AnnealOutcome {
    config
        .validate()
        .expect("TtsaConfig must be valid; call validate() first");

    // Line 3: T ← N (or an explicit override).
    let mut temperature = resolve_initial_temperature(config, scenario);
    let max_count = resolve_max_count(config);

    // Line 5-6: the (possibly warm) initial feasible solution, held as
    // incremental delta-evaluation state: each proposal below costs
    // O(S · affected subchannels) instead of a clone plus a full O(T·S)
    // re-evaluation.
    let mut state = ChainState::from_initial(scenario, initial, config.batch_width);

    let mut epochs: u64 = 0;
    let mut trace = config.record_trace.then(SearchTrace::default);

    // Line 7: outer temperature loop (optionally capped by the anytime
    // proposal budget).
    while temperature > config.min_temperature
        && config
            .proposal_budget
            .is_none_or(|cap| state.proposals < cap)
    {
        // Lines 9-25: L proposals at this temperature.
        let stats = run_epoch(scenario, config, kernel, temperature, &mut state, rng);

        // Lines 26-30: threshold-triggered cooling.
        let trigger_fired = apply_cooling(
            config.cooling,
            max_count,
            &mut temperature,
            &mut state.count,
        );
        epochs += 1;

        if let Some(trace) = trace.as_mut() {
            trace.epochs.push(EpochRecord {
                temperature,
                current_objective: state.current_obj,
                best_objective: state.best_obj,
                accepted_worse: stats.accepted_worse,
                accepted_better: stats.accepted_better,
                trigger_fired,
            });
        }
    }

    // The all-local decision (J = 0) is always feasible; never return a
    // worse-than-doing-nothing schedule even if the walk never crossed it.
    if state.best_obj < 0.0 {
        state.best = Assignment::all_local(scenario);
        state.best_obj = 0.0;
    }

    AnnealOutcome {
        assignment: state.best,
        objective: state.best_obj,
        proposals: state.proposals,
        epochs,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Evaluator, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(users: usize, servers: usize, subchannels: usize, gain: f64) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
            ChannelGains::uniform(users, servers, subchannels, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    /// A fast config for tests (fewer epochs than the paper's T_min=1e-9).
    fn quick_config() -> TtsaConfig {
        TtsaConfig::paper_default().with_min_temperature(1e-3)
    }

    #[test]
    fn finds_positive_utility_on_good_channels() {
        let sc = scenario(4, 2, 2, 1e-10);
        let mut rng = StdRng::seed_from_u64(0);
        let out = anneal(&sc, &quick_config(), &NeighborhoodKernel::new(), &mut rng);
        assert!(out.objective > 0.0, "got {}", out.objective);
        out.assignment.verify_feasible(&sc).unwrap();
        assert!(out.proposals > 0);
        assert!(out.epochs > 0);
    }

    #[test]
    fn keeps_everyone_local_on_terrible_channels() {
        // Channels so bad that offloading always loses: the best decision
        // is X = 0 with objective 0.
        let sc = scenario(3, 2, 2, 1e-17);
        let mut rng = StdRng::seed_from_u64(1);
        let out = anneal(&sc, &quick_config(), &NeighborhoodKernel::new(), &mut rng);
        assert_eq!(out.objective, 0.0);
        assert_eq!(out.assignment.num_offloaded(), 0);
    }

    #[test]
    fn best_objective_dominates_initial_solutions() {
        let sc = scenario(6, 3, 2, 1e-10);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = initial_solution(
                &sc,
                InitialSolution::RandomFeasible {
                    offload_probability: 0.5,
                },
                &mut rng,
            );
            let init_obj = Evaluator::new(&sc).objective(&init);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = anneal(&sc, &quick_config(), &NeighborhoodKernel::new(), &mut rng);
            assert!(out.objective >= init_obj - 1e-12);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let sc = scenario(5, 2, 2, 1e-10);
        let cfg = quick_config();
        let kernel = NeighborhoodKernel::new();
        let a = anneal(&sc, &cfg, &kernel, &mut StdRng::seed_from_u64(9));
        let b = anneal(&sc, &cfg, &kernel, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.proposals, b.proposals);
    }

    #[test]
    fn trace_records_every_epoch_and_monotone_best() {
        let sc = scenario(4, 2, 2, 1e-10);
        let cfg = quick_config().with_trace();
        let mut rng = StdRng::seed_from_u64(2);
        let out = anneal(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng);
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.len() as u64, out.epochs);
        // Best objective is non-decreasing and temperatures non-increasing.
        let mut prev_best = f64::NEG_INFINITY;
        let mut prev_temp = f64::INFINITY;
        for e in &trace.epochs {
            assert!(e.best_objective >= prev_best);
            assert!(e.temperature <= prev_temp);
            prev_best = e.best_objective;
            prev_temp = e.temperature;
        }
        assert_eq!(trace.final_best(), Some(out.objective));
    }

    #[test]
    fn threshold_trigger_cools_faster_than_plain_slow_schedule() {
        // With a trigger threshold of ~0 every epoch fires the fast rate;
        // the run must finish in fewer epochs than the slow-only schedule.
        let sc = scenario(4, 2, 2, 1e-10);
        let base = quick_config();
        let fast_cfg = base.with_cooling(Cooling::ThresholdTriggered {
            alpha_slow: 0.97,
            alpha_fast: 0.90,
            max_count_factor: 0.001,
        });
        let slow_cfg = base.with_cooling(Cooling::Geometric { alpha: 0.97 });
        let kernel = NeighborhoodKernel::new();
        let fast = anneal(&sc, &fast_cfg, &kernel, &mut StdRng::seed_from_u64(3));
        let slow = anneal(&sc, &slow_cfg, &kernel, &mut StdRng::seed_from_u64(3));
        assert!(
            fast.epochs < slow.epochs,
            "fast {} vs slow {}",
            fast.epochs,
            slow.epochs
        );
    }

    #[test]
    fn geometric_cooling_epoch_count_is_exact() {
        // T0 = N = 2; epochs = ceil(log(Tmin/T0)/log(alpha)).
        let sc = scenario(2, 2, 2, 1e-10);
        let cfg = quick_config().with_cooling(Cooling::Geometric { alpha: 0.5 });
        let mut rng = StdRng::seed_from_u64(4);
        let out = anneal(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng);
        // 2 * 0.5^k <= 1e-3 → k >= log2(2000) ≈ 10.97 → 11 epochs.
        assert_eq!(out.epochs, 11);
        assert_eq!(out.proposals, 11 * 30);
    }

    #[test]
    fn batched_widths_are_deterministic_and_count_every_candidate() {
        let sc = scenario(5, 2, 2, 1e-10);
        let kernel = NeighborhoodKernel::new();
        for k in [1usize, 4, 8] {
            let cfg = quick_config()
                .with_cooling(Cooling::Geometric { alpha: 0.5 })
                .with_batch_width(k);
            let a = anneal(&sc, &cfg, &kernel, &mut StdRng::seed_from_u64(21));
            let b = anneal(&sc, &cfg, &kernel, &mut StdRng::seed_from_u64(21));
            assert_eq!(a.assignment, b.assignment, "k={k}");
            assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "k={k}");
            assert_eq!(a.proposals, b.proposals, "k={k}");
            // Every scored candidate is a proposal: 11 geometric epochs of
            // 30 steps, K candidates each.
            assert_eq!(a.proposals, 11 * 30 * k as u64, "k={k}");
            a.assignment.verify_feasible(&sc).unwrap();
        }
    }

    #[test]
    fn wider_batches_keep_solution_quality() {
        // The batched walk is a different (equally valid) trajectory; on
        // good channels it must still land on a positive-utility schedule.
        let sc = scenario(6, 3, 2, 1e-10);
        let kernel = NeighborhoodKernel::new();
        for k in [4usize, 8] {
            let cfg = quick_config().with_batch_width(k);
            let out = anneal(&sc, &cfg, &kernel, &mut StdRng::seed_from_u64(2));
            assert!(out.objective > 0.0, "k={k} got {}", out.objective);
            out.assignment.verify_feasible(&sc).unwrap();
        }
    }

    #[test]
    fn warm_start_runs_from_a_given_decision() {
        let sc = scenario(5, 2, 2, 1e-10);
        // Seed the walk with a hand-built decision and a tiny budget: the
        // outcome must never fall below the warm start's own objective.
        let mut warm = Assignment::all_local(&sc);
        warm.assign(
            mec_types::UserId::new(0),
            mec_types::ServerId::new(0),
            mec_types::SubchannelId::new(0),
        )
        .unwrap();
        let warm_obj = Evaluator::new(&sc).objective(&warm);
        let cfg = quick_config().with_proposal_budget(30);
        let mut rng = StdRng::seed_from_u64(12);
        let out = anneal_from(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng, warm);
        assert!(out.objective >= warm_obj - 1e-12);
        out.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    #[should_panic(expected = "fit the scenario")]
    fn warm_start_rejects_mismatched_decisions() {
        let sc = scenario(4, 2, 2, 1e-10);
        let wrong = Assignment::with_dims(9, 2, 2);
        let mut rng = StdRng::seed_from_u64(13);
        let _ = anneal_from(
            &sc,
            &quick_config(),
            &NeighborhoodKernel::new(),
            &mut rng,
            wrong,
        );
    }

    #[test]
    fn all_local_initial_solution_is_supported() {
        let sc = scenario(4, 2, 2, 1e-10);
        let cfg = quick_config().with_initial_solution(InitialSolution::AllLocal);
        let mut rng = StdRng::seed_from_u64(5);
        let out = anneal(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng);
        assert!(out.objective >= 0.0);
    }

    #[test]
    fn never_returns_worse_than_all_local() {
        // Terrible channels + a budget so tight the walk barely moves: the
        // outcome must still be the all-local fallback, not the negative
        // initial random solution.
        let sc = scenario(6, 2, 2, 1e-17);
        let cfg = quick_config().with_proposal_budget(1);
        let mut rng = StdRng::seed_from_u64(11);
        let out = anneal(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng);
        assert_eq!(out.objective, 0.0);
        assert_eq!(out.assignment.num_offloaded(), 0);
    }

    #[test]
    fn proposal_budget_caps_work() {
        let sc = scenario(5, 2, 2, 1e-10);
        let cfg = quick_config().with_proposal_budget(90);
        let mut rng = StdRng::seed_from_u64(7);
        let out = anneal(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng);
        // The loop stops at the end of the epoch that crossed the cap, so
        // the total is at most cap rounded up to a whole epoch (L = 30).
        assert!(out.proposals >= 90 && out.proposals < 90 + 30);
        out.assignment.verify_feasible(&sc).unwrap();
        // An uncapped run does strictly more work.
        let mut rng = StdRng::seed_from_u64(7);
        let full = anneal(&sc, &quick_config(), &NeighborhoodKernel::new(), &mut rng);
        assert!(full.proposals > out.proposals);
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_config_panics() {
        let sc = scenario(2, 2, 2, 1e-10);
        let cfg = quick_config().with_inner_iterations(0);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = anneal(&sc, &cfg, &NeighborhoodKernel::new(), &mut rng);
    }
}
