//! TTSA configuration (the constants of Algorithm 1, line 3–4, made
//! tunable).

use mec_types::Error;
use serde::{Deserialize, Serialize};

/// Default restart temperature for warm-started refreshes: low enough
/// that the budget is spent improving the inherited schedule instead of
/// scrambling it, high enough to escape razor-thin local optima.
pub const DEFAULT_REFRESH_TEMPERATURE: f64 = 0.05;

/// How a periodic re-solve (one scheduling epoch of a dynamic or online
/// run) uses the previous epoch's decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResolveMode {
    /// Discard the previous decision and anneal from scratch with the
    /// full base schedule every epoch.
    Cold,
    /// Seed TTSA from the previous epoch's assignment and run a cheap
    /// refresh: a fixed low restart temperature and a hard proposal
    /// budget. A refresh is fine-tuning, not a fresh search.
    WarmStart {
        /// Hard cap on neighborhood proposals per refresh.
        refresh_budget: u64,
        /// Fixed restart temperature for the refresh chain.
        refresh_temperature: f64,
    },
    /// Seed every replica of a shortened tempering ladder from the
    /// previous epoch's assignment: the same budget/temperature contract
    /// as [`WarmStart`](Self::WarmStart), but the refresh is spent by a
    /// cooperating replica ensemble instead of one chain.
    WarmTempered {
        /// Hard cap on neighborhood proposals per refresh (shared by the
        /// whole ensemble).
        refresh_budget: u64,
        /// Fixed restart temperature anchoring the shortened ladder's
        /// hottest rung.
        refresh_temperature: f64,
        /// Ladder shape for the refresh ensemble.
        tempering: TemperingConfig,
    },
}

impl ResolveMode {
    /// Warm start with the given budget at [`DEFAULT_REFRESH_TEMPERATURE`].
    pub fn warm(refresh_budget: u64) -> Self {
        ResolveMode::WarmStart {
            refresh_budget,
            refresh_temperature: DEFAULT_REFRESH_TEMPERATURE,
        }
    }

    /// Validates the mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero refresh budget or a
    /// non-positive refresh temperature.
    pub fn validate(&self) -> Result<(), Error> {
        let (budget, temp) = match *self {
            ResolveMode::Cold => return Ok(()),
            ResolveMode::WarmStart {
                refresh_budget,
                refresh_temperature,
            } => (refresh_budget, refresh_temperature),
            ResolveMode::WarmTempered {
                refresh_budget,
                refresh_temperature,
                tempering,
            } => {
                tempering.validate()?;
                (refresh_budget, refresh_temperature)
            }
        };
        if budget == 0 {
            return Err(Error::invalid("refresh_budget", "must allow proposals"));
        }
        if !temp.is_finite() || temp <= 0.0 {
            return Err(Error::invalid("refresh_temperature", "must be positive"));
        }
        Ok(())
    }

    /// The configuration an epoch re-solve should run with: `base`
    /// untouched for [`Cold`](Self::Cold), `base` with the refresh budget
    /// and fixed restart temperature for [`WarmStart`](Self::WarmStart).
    pub fn refresh_config(&self, base: &TtsaConfig) -> TtsaConfig {
        match *self {
            ResolveMode::Cold => *base,
            ResolveMode::WarmStart {
                refresh_budget,
                refresh_temperature,
            }
            | ResolveMode::WarmTempered {
                refresh_budget,
                refresh_temperature,
                ..
            } => base
                .with_proposal_budget(refresh_budget)
                .with_initial_temperature(InitialTemperature::Fixed(refresh_temperature)),
        }
    }
}

/// Parallel-tempering (replica-exchange) configuration for the
/// [`tempering`](crate::tempering) engine.
///
/// `K = replicas` chains run on a geometric temperature ladder anchored at
/// the base config's `T₀` (the hottest rung), exchanging states every
/// `exchange_interval` epochs. The ensemble's total proposal budget is a
/// `schedule_factor` fraction of the single-chain schedule's estimated
/// epoch count — the cooperation is what buys back the quality the
/// shortened schedule gives up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperingConfig {
    /// Number of replicas `K` on the ladder.
    pub replicas: usize,
    /// Geometric spacing `r` between adjacent rungs (`T_k = T₀ / r^(K−1−k)`,
    /// rung `K−1` hottest). Must exceed 1.
    pub ladder_ratio: f64,
    /// Epochs each replica runs between exchange sweeps (`E`).
    pub exchange_interval: u64,
    /// Fraction of the single-chain schedule's estimated epoch count the
    /// whole ensemble may spend (ignored when [`rounds`](Self::rounds) is
    /// set). Values well below `1/2` are what produce the wall-clock win.
    pub schedule_factor: f64,
    /// Explicit number of exchange rounds, overriding the
    /// `schedule_factor` estimate.
    pub rounds: Option<u64>,
    /// Whether the global best-so-far is migrated into the hottest
    /// replica after each exchange sweep.
    pub elite_migration: bool,
    /// Greedy polish epochs run on the global best after the ladder
    /// finishes (accept-improving-only, at `T_min`).
    pub quench_epochs: u64,
    /// Work bias toward the cold end of the ladder: rung `i` (0 coldest)
    /// gets a per-round epoch share proportional to
    /// `cold_bias^(K−1−i)`, normalized so a round still spends `K·E`
    /// epochs in total. `1.0` is the uniform split; values above 1 turn
    /// the hot rungs into cheap scouts and concentrate refinement where
    /// worsening moves are actually rejected. Must be at least 1.
    pub cold_bias: f64,
}

impl TemperingConfig {
    /// Tuned defaults (see `EXPERIMENTS.md` for the U = 90 sweep that
    /// chose them): `K = 8`, ratio 1.7, exchange every 4 epochs,
    /// ensemble budget 40% of the single-chain schedule, elite migration
    /// on, 16 quench epochs, cold-end work bias 5.
    pub fn paper_default() -> Self {
        Self {
            replicas: 8,
            ladder_ratio: 1.7,
            exchange_interval: 4,
            schedule_factor: 0.40,
            rounds: None,
            elite_migration: true,
            quench_epochs: 16,
            cold_bias: 5.0,
        }
    }

    /// Sets the number of replicas.
    pub fn with_replicas(mut self, k: usize) -> Self {
        self.replicas = k;
        self
    }

    /// Sets an explicit number of exchange rounds.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Sets the ensemble budget as a fraction of the single-chain
    /// schedule.
    pub fn with_schedule_factor(mut self, f: f64) -> Self {
        self.schedule_factor = f;
        self
    }

    /// Sets the cold-end work bias (`1.0` = uniform epoch split).
    pub fn with_cold_bias(mut self, bias: f64) -> Self {
        self.cold_bias = bias;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for fewer than two replicas, a
    /// ladder ratio not above 1, a zero exchange interval, a non-positive
    /// schedule factor, or an explicit zero round count.
    pub fn validate(&self) -> Result<(), Error> {
        if self.replicas < 2 {
            return Err(Error::invalid("replicas", "ladder needs at least 2 rungs"));
        }
        if !self.ladder_ratio.is_finite() || self.ladder_ratio <= 1.0 {
            return Err(Error::invalid("ladder_ratio", "must exceed 1"));
        }
        if self.exchange_interval == 0 {
            return Err(Error::invalid("exchange_interval", "must be at least 1"));
        }
        if !self.schedule_factor.is_finite() || self.schedule_factor <= 0.0 {
            return Err(Error::invalid("schedule_factor", "must be positive"));
        }
        if self.rounds == Some(0) {
            return Err(Error::invalid("rounds", "must run at least one round"));
        }
        if !self.cold_bias.is_finite() || self.cold_bias < 1.0 {
            return Err(Error::invalid("cold_bias", "must be at least 1"));
        }
        Ok(())
    }
}

impl Default for TemperingConfig {
    /// Defaults to [`TemperingConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Which search engine [`TsajsSolver`](crate::TsajsSolver) drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// One paper-faithful TTSA chain (Algorithm 1 verbatim).
    SingleChain,
    /// Independent restarts hedging against bad initial solutions; chains
    /// never share information.
    MultiStart {
        /// Number of independent chains.
        restarts: usize,
    },
    /// Cooperative parallel tempering (replica exchange).
    Tempering(TemperingConfig),
}

impl SearchStrategy {
    /// Validates the strategy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for zero restarts or an invalid
    /// tempering configuration.
    pub fn validate(&self) -> Result<(), Error> {
        match self {
            SearchStrategy::SingleChain => Ok(()),
            SearchStrategy::MultiStart { restarts } => {
                if *restarts == 0 {
                    return Err(Error::invalid("restarts", "must run at least one chain"));
                }
                Ok(())
            }
            SearchStrategy::Tempering(cfg) => cfg.validate(),
        }
    }
}

/// How the initial annealing temperature is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitialTemperature {
    /// The paper's literal `T ← N`: start at the number of subchannels.
    SubchannelCount,
    /// A fixed explicit temperature.
    Fixed(f64),
}

/// The cooling schedule applied after each epoch of `L` proposals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cooling {
    /// The paper's threshold-triggered schedule: cool by `alpha_slow`
    /// normally, but when the accumulated count of accepted-worse moves
    /// reaches `max_count_factor · L`, cool by `alpha_fast` instead and
    /// reset the counter (Algorithm 1, lines 26–30).
    ThresholdTriggered {
        /// Slow (default) cooling multiplier `α₁`.
        alpha_slow: f64,
        /// Fast cooling multiplier `α₂` applied on trigger.
        alpha_fast: f64,
        /// Trigger threshold as a multiple of `L` (`maxCount = factor·L`).
        max_count_factor: f64,
    },
    /// Plain geometric cooling `T ← α·T` — the ablation baseline that
    /// turns TTSA back into classic simulated annealing.
    Geometric {
        /// The cooling multiplier `α`.
        alpha: f64,
    },
}

/// How the initial feasible solution is generated (Algorithm 1, line 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitialSolution {
    /// Start from `X = 0` (everyone local).
    AllLocal,
    /// Independently offload each user with the given probability to a
    /// uniformly random server with a free subchannel (skipped if the
    /// chosen server is full), which is how we realize the paper's
    /// "randomly generate an initial set of solutions that satisfy the
    /// constraints".
    RandomFeasible {
        /// Per-user offload probability.
        offload_probability: f64,
    },
}

/// Full TTSA configuration.
///
/// Use [`TtsaConfig::paper_default`] for the constants of Algorithm 1 and
/// the builder-style `with_*` methods to deviate:
///
/// ```
/// use tsajs::TtsaConfig;
///
/// let config = TtsaConfig::paper_default()
///     .with_inner_iterations(10) // the paper's L = 10 variant
///     .with_seed(7);
/// assert_eq!(config.inner_iterations, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TtsaConfig {
    /// Initial temperature policy (paper: `T ← N`).
    pub initial_temperature: InitialTemperature,
    /// Termination temperature `T_min` (paper: `10⁻⁹`).
    pub min_temperature: f64,
    /// Proposals per temperature epoch `L` (paper: 30; Figs. 4/7/8 also
    /// use 10 and 50).
    pub inner_iterations: usize,
    /// Cooling schedule (paper: threshold-triggered with `α₁ = 0.97`,
    /// `α₂ = 0.90`, `maxCount = 1.75·L`).
    pub cooling: Cooling,
    /// Initial feasible solution policy.
    pub initial_solution: InitialSolution,
    /// RNG seed; two runs with equal seeds and inputs are identical.
    pub seed: u64,
    /// Whether to record a per-epoch [`SearchTrace`](crate::SearchTrace).
    pub record_trace: bool,
    /// Optional hard cap on the total number of neighborhood proposals —
    /// an *anytime* budget: the loop stops at the end of the epoch in
    /// which the cap is reached, keeping the best solution found. `None`
    /// (the paper's setting) runs the full schedule down to `T_min`.
    pub proposal_budget: Option<u64>,
    /// Candidate moves drawn and speculatively scored per proposal step
    /// (the batched-Metropolis path): `K` candidates are drawn in a fixed
    /// order against the incumbent, all `K` are scored through the
    /// vectorized delta path without mutating the state, and selection
    /// walks them sequentially — the first Metropolis acceptance wins.
    /// `1` (the default) reproduces Algorithm 1's one-proposal-at-a-time
    /// RNG stream verbatim. Each step counts `K` proposals against the
    /// epoch's work and any anytime budget.
    #[serde(default = "default_batch_width")]
    pub batch_width: usize,
}

/// Serde default for [`TtsaConfig::batch_width`]: configurations written
/// before the batched path existed deserialize to the legacy width 1.
fn default_batch_width() -> usize {
    1
}

impl TtsaConfig {
    /// The exact constants of Algorithm 1:
    /// `T ← N`, `T_min = 10⁻⁹`, `α₁ = 0.97`, `α₂ = 0.90`, `L = 30`,
    /// `maxCount = 1.75·L`.
    pub fn paper_default() -> Self {
        Self {
            initial_temperature: InitialTemperature::SubchannelCount,
            min_temperature: 1e-9,
            inner_iterations: 30,
            cooling: Cooling::ThresholdTriggered {
                alpha_slow: 0.97,
                alpha_fast: 0.90,
                max_count_factor: 1.75,
            },
            initial_solution: InitialSolution::RandomFeasible {
                offload_probability: 0.5,
            },
            seed: 0,
            record_trace: false,
            proposal_budget: None,
            batch_width: default_batch_width(),
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the epoch length `L`.
    pub fn with_inner_iterations(mut self, l: usize) -> Self {
        self.inner_iterations = l;
        self
    }

    /// Sets the cooling schedule.
    pub fn with_cooling(mut self, cooling: Cooling) -> Self {
        self.cooling = cooling;
        self
    }

    /// Sets the initial temperature policy.
    pub fn with_initial_temperature(mut self, t: InitialTemperature) -> Self {
        self.initial_temperature = t;
        self
    }

    /// Sets the termination temperature.
    pub fn with_min_temperature(mut self, t_min: f64) -> Self {
        self.min_temperature = t_min;
        self
    }

    /// Sets the initial-solution policy.
    pub fn with_initial_solution(mut self, init: InitialSolution) -> Self {
        self.initial_solution = init;
        self
    }

    /// Enables per-epoch trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Caps the total number of neighborhood proposals (anytime mode).
    pub fn with_proposal_budget(mut self, budget: u64) -> Self {
        self.proposal_budget = Some(budget);
        self
    }

    /// Sets the speculative batch width `K` (candidates scored per
    /// proposal step; `1` is the legacy one-at-a-time path).
    pub fn with_batch_width(mut self, k: usize) -> Self {
        self.batch_width = k;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive temperatures,
    /// a zero epoch length, cooling multipliers outside `(0, 1)`, a
    /// non-positive trigger factor, or an offload probability outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), Error> {
        if let InitialTemperature::Fixed(t) = self.initial_temperature {
            if !t.is_finite() || t <= 0.0 {
                return Err(Error::invalid("T", "initial temperature must be positive"));
            }
        }
        if !self.min_temperature.is_finite() || self.min_temperature <= 0.0 {
            return Err(Error::invalid("T_min", "must be positive"));
        }
        if self.inner_iterations == 0 {
            return Err(Error::invalid("L", "epoch length must be at least 1"));
        }
        match self.cooling {
            Cooling::ThresholdTriggered {
                alpha_slow,
                alpha_fast,
                max_count_factor,
            } => {
                for (name, a) in [("alpha1", alpha_slow), ("alpha2", alpha_fast)] {
                    if !(0.0..1.0).contains(&a) || a == 0.0 {
                        return Err(Error::invalid(name, "cooling rate must lie in (0, 1)"));
                    }
                }
                if !max_count_factor.is_finite() || max_count_factor <= 0.0 {
                    return Err(Error::invalid(
                        "maxCount",
                        "trigger factor must be positive",
                    ));
                }
            }
            Cooling::Geometric { alpha } => {
                if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
                    return Err(Error::invalid("alpha", "cooling rate must lie in (0, 1)"));
                }
            }
        }
        if let InitialSolution::RandomFeasible {
            offload_probability,
        } = self.initial_solution
        {
            if !(0.0..=1.0).contains(&offload_probability) {
                return Err(Error::invalid("offload_probability", "must lie in [0, 1]"));
            }
        }
        if self.proposal_budget == Some(0) {
            return Err(Error::invalid(
                "proposal_budget",
                "anytime budget must allow at least one proposal",
            ));
        }
        if self.batch_width == 0 {
            return Err(Error::invalid(
                "batch_width",
                "must draw at least one candidate per step",
            ));
        }
        Ok(())
    }
}

impl Default for TtsaConfig {
    /// Defaults to [`TtsaConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_algorithm_1_constants() {
        let c = TtsaConfig::paper_default();
        assert_eq!(c.initial_temperature, InitialTemperature::SubchannelCount);
        assert_eq!(c.min_temperature, 1e-9);
        assert_eq!(c.inner_iterations, 30);
        assert_eq!(
            c.cooling,
            Cooling::ThresholdTriggered {
                alpha_slow: 0.97,
                alpha_fast: 0.90,
                max_count_factor: 1.75,
            }
        );
        assert_eq!(c.batch_width, 1, "the paper proposes one move at a time");
        assert!(c.validate().is_ok());
        assert_eq!(TtsaConfig::default(), c);
    }

    #[test]
    fn batch_width_validates_and_defaults_through_serde() {
        let base = TtsaConfig::paper_default();
        assert!(base.with_batch_width(0).validate().is_err());
        assert!(base.with_batch_width(8).validate().is_ok());
        assert_eq!(base.with_batch_width(4).batch_width, 4);
        // Configurations serialized before the field existed still load.
        let json = serde_json::to_string(&base).unwrap();
        let legacy_json = json.replace(",\"batch_width\":1", "");
        assert_ne!(legacy_json, json, "field must serialize to be stripped");
        let legacy: TtsaConfig = serde_json::from_str(&legacy_json).unwrap();
        assert_eq!(legacy, base);
        assert_eq!(legacy.batch_width, 1);
    }

    #[test]
    fn builder_methods_compose() {
        let c = TtsaConfig::paper_default()
            .with_seed(9)
            .with_inner_iterations(50)
            .with_min_temperature(1e-6)
            .with_initial_temperature(InitialTemperature::Fixed(10.0))
            .with_cooling(Cooling::Geometric { alpha: 0.95 })
            .with_initial_solution(InitialSolution::AllLocal)
            .with_trace();
        assert_eq!(c.seed, 9);
        assert_eq!(c.inner_iterations, 50);
        assert_eq!(c.min_temperature, 1e-6);
        assert_eq!(c.initial_temperature, InitialTemperature::Fixed(10.0));
        assert_eq!(c.cooling, Cooling::Geometric { alpha: 0.95 });
        assert_eq!(c.initial_solution, InitialSolution::AllLocal);
        assert!(c.record_trace);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn resolve_mode_validates_and_builds_refresh_configs() {
        assert!(ResolveMode::Cold.validate().is_ok());
        assert!(ResolveMode::warm(500).validate().is_ok());
        assert!(ResolveMode::warm(0).validate().is_err());
        assert!(ResolveMode::WarmStart {
            refresh_budget: 10,
            refresh_temperature: 0.0,
        }
        .validate()
        .is_err());
        assert!(ResolveMode::WarmStart {
            refresh_budget: 10,
            refresh_temperature: f64::NAN,
        }
        .validate()
        .is_err());

        let base = TtsaConfig::paper_default();
        assert_eq!(ResolveMode::Cold.refresh_config(&base), base);
        let refresh = ResolveMode::warm(500).refresh_config(&base);
        assert_eq!(refresh.proposal_budget, Some(500));
        assert_eq!(
            refresh.initial_temperature,
            InitialTemperature::Fixed(DEFAULT_REFRESH_TEMPERATURE)
        );
        // Everything else is inherited from the base schedule.
        assert_eq!(refresh.cooling, base.cooling);
        assert_eq!(refresh.inner_iterations, base.inner_iterations);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let base = TtsaConfig::paper_default();
        assert!(base
            .with_initial_temperature(InitialTemperature::Fixed(0.0))
            .validate()
            .is_err());
        assert!(base.with_min_temperature(0.0).validate().is_err());
        assert!(base.with_inner_iterations(0).validate().is_err());
        assert!(base
            .with_cooling(Cooling::Geometric { alpha: 1.0 })
            .validate()
            .is_err());
        assert!(base
            .with_cooling(Cooling::Geometric { alpha: 0.0 })
            .validate()
            .is_err());
        assert!(base
            .with_cooling(Cooling::ThresholdTriggered {
                alpha_slow: 0.97,
                alpha_fast: 1.5,
                max_count_factor: 1.75,
            })
            .validate()
            .is_err());
        assert!(base
            .with_cooling(Cooling::ThresholdTriggered {
                alpha_slow: 0.97,
                alpha_fast: 0.9,
                max_count_factor: 0.0,
            })
            .validate()
            .is_err());
        assert!(base
            .with_initial_solution(InitialSolution::RandomFeasible {
                offload_probability: 1.5,
            })
            .validate()
            .is_err());
        assert!(base.with_proposal_budget(0).validate().is_err());
        assert!(base.with_proposal_budget(100).validate().is_ok());
    }
}
