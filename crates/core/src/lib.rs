//! # tsajs
//!
//! The paper's primary contribution: **TSAJS**, a joint task-offloading and
//! resource-allocation scheme for multi-server MEC built from
//!
//! * **TTSA** — Threshold-Triggered Simulated Annealing over the discrete
//!   offloading-decision space (Algorithm 1), with the paper's four-way
//!   neighborhood move kernel (Algorithm 2), and
//! * the **closed-form KKT** computing-resource allocation (Eq. 22),
//!   already folded into the exact objective `J*(X)` evaluated by
//!   `mec-system`.
//!
//! The "threshold trigger" is what distinguishes TTSA from plain simulated
//! annealing: accepted *worsening* moves are counted, and when the count
//! crosses `maxCount = 1.75·L` the cooling rate switches from the slow
//! `α₁ = 0.97` to the fast `α₂ = 0.90` and the counter resets — spending
//! temperature budget where the landscape is rough and sprinting through
//! plateaus.
//!
//! ## Quickstart
//!
//! ```
//! use tsajs::{TsajsSolver, TtsaConfig};
//! use mec_system::{Scenario, Solver, UserSpec};
//! use mec_radio::{ChannelGains, OfdmaConfig};
//! use mec_types::{constants, Cycles, ServerProfile};
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let scenario = Scenario::new(
//!     vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0))?; 4],
//!     vec![ServerProfile::paper_default(); 2],
//!     OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, 2)?,
//!     ChannelGains::uniform(4, 2, 2, 1e-10)?,
//!     constants::DEFAULT_NOISE.to_watts(),
//! )?;
//!
//! let mut solver = TsajsSolver::new(TtsaConfig::paper_default().with_seed(42));
//! let solution = solver.solve(&scenario)?;
//! assert!(solution.utility > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path layout gates: range loops that should be iterator/chunk sweeps
// and oversized stack buffers are bugs here, not style.
#![deny(clippy::needless_range_loop)]
#![deny(clippy::large_stack_arrays)]

pub mod annealing;
pub mod config;
pub mod moves;
pub mod power;
pub mod shard;
pub mod solver;
pub mod tempering;
pub mod trace;

pub use annealing::{anneal, anneal_from};
pub use config::{
    Cooling, InitialSolution, InitialTemperature, ResolveMode, SearchStrategy, TemperingConfig,
    TtsaConfig, DEFAULT_REFRESH_TEMPERATURE,
};
pub use moves::{MoveKind, MoveMix, NeighborhoodKernel};
pub use power::{solve_with_power_control, PowerControlConfig, PowerControlOutcome};
pub use shard::{
    cluster_external, halo_totals, publish_halo_delta, resolve_sharded, solve_sharded, Descent,
    Partition, Reconcile, ShardConfig, ShardOutcome, ShardRun, ShardSolver, ShardStats,
    DESCENT_IMPROVEMENT_FLOOR,
};
pub use solver::TsajsSolver;
pub use tempering::{temper, temper_from};
pub use trace::{EpochRecord, SearchTrace};
