//! The neighborhood move kernel (Algorithm 2, *GetNeighborhood*).
//!
//! Given the current decision `X_old`, the kernel picks one random user and
//! applies one of four mutations, with the paper's probability split:
//!
//! | branch | probability | effect |
//! |---|---|---|
//! | move to another server | 55 % (`0.20 < r < 0.75`) | re-attach to a different server, preferring a free subchannel |
//! | change subchannel | 25 % (`r ≥ 0.75`, needs `N > 1`) | keep the server, switch subchannel |
//! | swap with another user | 15 % (`0.05 < r ≤ 0.20`) | exchange two users' slots |
//! | toggle offloading | 5 % (`r ≤ 0.05`) | flip between local and offloaded |
//!
//! Interpretation choices for under-specified cases are documented in
//! DESIGN.md §2: a *local* target user is assigned rather than moved, and
//! "allocate one randomly if none are free" evicts the previous occupant
//! to local execution so constraint (12d) can never be violated.

use mec_system::{Assignment, MoveDesc, Scenario};
use mec_types::{ServerId, SubchannelId, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which mutation a proposal applied (for diagnostics and mix ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MoveKind {
    /// Re-attach the user to a different server.
    MoveServer,
    /// Switch subchannel on the same server.
    ChangeSubchannel,
    /// Exchange slots with another user.
    Swap,
    /// Flip between local execution and offloading.
    Toggle,
}

/// The branch probabilities of Algorithm 2, expressed as the cumulative
/// thresholds the paper draws against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoveMix {
    /// `r ≤ toggle_below` → toggle (paper: 0.05).
    pub toggle_below: f64,
    /// `toggle_below < r ≤ swap_below` → swap (paper: 0.20).
    pub swap_below: f64,
    /// `swap_below < r < move_server_below` → move server;
    /// `r ≥ move_server_below` → change subchannel (paper: 0.75).
    pub move_server_below: f64,
}

impl MoveMix {
    /// The paper's 5/15/55/25 split.
    pub fn paper_default() -> Self {
        Self {
            toggle_below: 0.05,
            swap_below: 0.20,
            move_server_below: 0.75,
        }
    }

    /// A uniform mix over the four move kinds (ablation).
    pub fn uniform() -> Self {
        Self {
            toggle_below: 0.25,
            swap_below: 0.50,
            move_server_below: 0.75,
        }
    }
}

impl Default for MoveMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A reusable neighborhood generator bound to a move mix.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborhoodKernel {
    mix: MoveMix,
}

impl NeighborhoodKernel {
    /// Creates a kernel with the paper's move mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a kernel with a custom mix.
    pub fn with_mix(mix: MoveMix) -> Self {
        Self { mix }
    }

    /// The configured mix.
    pub fn mix(&self) -> MoveMix {
        self.mix
    }

    /// Produces a neighbor of `current` (Algorithm 2). Returns the mutated
    /// copy and the move kind applied.
    ///
    /// Every returned assignment is feasible by construction. This is the
    /// cloning convenience wrapper over [`propose_move`]; search hot loops
    /// use `propose_move` directly with an
    /// [`IncrementalObjective`](mec_system::IncrementalObjective) so a
    /// proposal costs neither a clone nor a full re-evaluation. Both paths
    /// consume the identical RNG stream.
    ///
    /// [`propose_move`]: Self::propose_move
    pub fn propose<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        current: &Assignment,
        rng: &mut R,
    ) -> (Assignment, MoveKind) {
        let (mv, kind) = self.propose_move(scenario, current, rng);
        let mut next = current.clone();
        mv.apply_to(&mut next)
            .expect("proposed moves are feasible against the decision they were built for");
        (next, kind)
    }

    /// In-place variant of [`propose`](Self::propose): draws the same move
    /// from the same RNG stream but returns it as a compact [`MoveDesc`]
    /// (at most four primitive assign/release ops) instead of a mutated
    /// clone of `current`.
    pub fn propose_move<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        current: &Assignment,
        rng: &mut R,
    ) -> (MoveDesc, MoveKind) {
        let user = UserId::new(rng.gen_range(0..scenario.num_users()));
        let r: f64 = rng.gen();

        if r > self.mix.swap_below {
            if r < self.mix.move_server_below || scenario.num_subchannels() == 1 {
                (
                    self.move_server(scenario, current, user, rng),
                    MoveKind::MoveServer,
                )
            } else {
                (
                    self.change_subchannel(scenario, current, user, rng),
                    MoveKind::ChangeSubchannel,
                )
            }
        } else if r > self.mix.toggle_below {
            let other = self.pick_other_user(scenario, user, rng);
            (MoveDesc::swap(current, user, other), MoveKind::Swap)
        } else {
            (self.toggle(scenario, current, user, rng), MoveKind::Toggle)
        }
    }

    /// Draws `k` candidate moves in a fixed order against the same
    /// decision, replacing the contents of `out` (cleared first, so a
    /// pre-reserved scratch vector never reallocates).
    ///
    /// The draw order is the batched-proposal determinism contract:
    /// candidate `i` consumes exactly the draws [`propose_move`] would
    /// have consumed for it, independent of what the scorer later does
    /// with the batch, and `k == 1` is exactly one `propose_move` draw.
    ///
    /// [`propose_move`]: Self::propose_move
    pub fn propose_batch<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        current: &Assignment,
        k: usize,
        out: &mut Vec<MoveDesc>,
        rng: &mut R,
    ) {
        out.clear();
        for _ in 0..k {
            out.push(self.propose_move(scenario, current, rng).0);
        }
    }

    fn pick_other_user<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        user: UserId,
        rng: &mut R,
    ) -> UserId {
        if scenario.num_users() == 1 {
            return user; // Swap degenerates to a no-op.
        }
        loop {
            let other = UserId::new(rng.gen_range(0..scenario.num_users()));
            if other != user {
                return other;
            }
        }
    }

    /// Attach `user` to `(server, j)` where `j` is a free subchannel if one
    /// exists, otherwise a uniformly random one whose occupant gets evicted
    /// to local execution.
    ///
    /// Draw-compatible with the historical cloning implementation: the
    /// free-slot pick is `gen_range(0..free_count)` and the eviction pick
    /// is the same rejection loop, so seeded runs are unchanged.
    fn attach<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        x: &Assignment,
        user: UserId,
        server: ServerId,
        exclude: Option<SubchannelId>,
        rng: &mut R,
    ) -> MoveDesc {
        let is_free = |j: SubchannelId| x.occupant(server, j).is_none() && exclude != Some(j);
        let free_count = (0..scenario.num_subchannels())
            .map(SubchannelId::new)
            .filter(|j| is_free(*j))
            .count();
        let j = if free_count == 0 {
            // "Allocate one randomly if none are free" — pick any (except
            // the excluded one) and evict its occupant.
            loop {
                let j = SubchannelId::new(rng.gen_range(0..scenario.num_subchannels()));
                if exclude != Some(j) {
                    break j;
                }
            }
        } else {
            let pick = rng.gen_range(0..free_count);
            (0..scenario.num_subchannels())
                .map(SubchannelId::new)
                .filter(|j| is_free(*j))
                .nth(pick)
                .expect("pick is below the free count")
        };
        MoveDesc::relocate_evicting(x, user, server, j)
    }

    fn move_server<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        x: &Assignment,
        user: UserId,
        rng: &mut R,
    ) -> MoveDesc {
        let current_server = x.slot(user).map(|(s, _)| s);
        if scenario.num_servers() == 1 && current_server.is_some() {
            // No "other" server exists; fall back to a subchannel change so
            // the proposal still explores.
            return self.change_subchannel(scenario, x, user, rng);
        }
        let target = loop {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            if Some(s) != current_server || scenario.num_servers() == 1 {
                break s;
            }
        };
        self.attach(scenario, x, user, target, None, rng)
    }

    fn change_subchannel<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        x: &Assignment,
        user: UserId,
        rng: &mut R,
    ) -> MoveDesc {
        match x.slot(user) {
            Some((s, j)) => {
                if scenario.num_subchannels() > 1 {
                    self.attach(scenario, x, user, s, Some(j), rng)
                } else {
                    // K == 1: Algorithm 2 leaves X unchanged.
                    MoveDesc::noop()
                }
            }
            None => {
                // Local target user: interpret as "start offloading" to a
                // random server (DESIGN.md interpretation note 1).
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                self.attach(scenario, x, user, s, None, rng)
            }
        }
    }

    fn toggle<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        x: &Assignment,
        user: UserId,
        rng: &mut R,
    ) -> MoveDesc {
        if x.is_offloaded(user) {
            MoveDesc::relocate(x, user, None)
        } else {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            self.attach(scenario, x, user, s, None, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn scenario(users: usize, servers: usize, subchannels: usize) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
            ChannelGains::uniform(users, servers, subchannels, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn proposals_are_always_feasible() {
        let sc = scenario(6, 3, 2);
        let kernel = NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut x = Assignment::all_local(&sc);
        for _ in 0..2000 {
            let (next, _) = kernel.propose(&sc, &x, &mut rng);
            next.verify_feasible(&sc)
                .expect("kernel emitted infeasible X");
            x = next;
        }
    }

    #[test]
    fn move_mix_matches_configured_probabilities() {
        let sc = scenario(8, 3, 3);
        let kernel = NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(1);
        // Start from a populated assignment so all branches are real moves.
        let mut x = Assignment::all_local(&sc);
        for u in 0..6 {
            let s = ServerId::new(u % 3);
            let j = x.free_subchannel(s).unwrap();
            x.assign(UserId::new(u), s, j).unwrap();
        }
        let mut counts: HashMap<MoveKind, usize> = HashMap::new();
        let trials = 40_000;
        for _ in 0..trials {
            let (_, kind) = kernel.propose(&sc, &x, &mut rng);
            *counts.entry(kind).or_default() += 1;
        }
        let frac = |k: MoveKind| *counts.get(&k).unwrap_or(&0) as f64 / trials as f64;
        assert!((frac(MoveKind::MoveServer) - 0.55).abs() < 0.02);
        assert!((frac(MoveKind::ChangeSubchannel) - 0.25).abs() < 0.02);
        assert!((frac(MoveKind::Swap) - 0.15).abs() < 0.02);
        assert!((frac(MoveKind::Toggle) - 0.05).abs() < 0.01);
    }

    #[test]
    fn single_subchannel_redirects_change_to_move() {
        let sc = scenario(4, 2, 1);
        let kernel = NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Assignment::all_local(&sc);
        for _ in 0..2000 {
            let (next, kind) = kernel.propose(&sc, &x, &mut rng);
            assert_ne!(kind, MoveKind::ChangeSubchannel, "K=1 forbids it");
            next.verify_feasible(&sc).unwrap();
        }
    }

    #[test]
    fn single_server_single_user_degenerate_cases_stay_feasible() {
        let sc = scenario(1, 1, 1);
        let kernel = NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Assignment::all_local(&sc);
        for _ in 0..500 {
            let (next, _) = kernel.propose(&sc, &x, &mut rng);
            next.verify_feasible(&sc).unwrap();
            x = next;
        }
    }

    #[test]
    fn toggle_flips_offloading_state() {
        let sc = scenario(1, 2, 2);
        // Force the toggle branch with a mix that always toggles.
        let kernel = NeighborhoodKernel::with_mix(MoveMix {
            toggle_below: 1.1,
            swap_below: 1.2,
            move_server_below: 1.3,
        });
        let mut rng = StdRng::seed_from_u64(4);
        let x = Assignment::all_local(&sc);
        let (next, kind) = kernel.propose(&sc, &x, &mut rng);
        assert_eq!(kind, MoveKind::Toggle);
        assert!(next.is_offloaded(UserId::new(0)), "local user toggles on");
        let (back, _) = kernel.propose(&sc, &next, &mut rng);
        assert!(
            !back.is_offloaded(UserId::new(0)),
            "offloaded user toggles off"
        );
    }

    #[test]
    fn full_server_forces_eviction_not_violation() {
        // 3 users, 1 server with a single subchannel: attaching a second
        // user must evict the first, never double-book.
        let sc = scenario(3, 1, 1);
        let kernel = NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = Assignment::all_local(&sc);
        x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        let mut saw_eviction = false;
        for _ in 0..500 {
            let (next, _) = kernel.propose(&sc, &x, &mut rng);
            next.verify_feasible(&sc).unwrap();
            if next.num_offloaded() == 1
                && next.occupant(ServerId::new(0), SubchannelId::new(0))
                    != x.occupant(ServerId::new(0), SubchannelId::new(0))
                && next
                    .occupant(ServerId::new(0), SubchannelId::new(0))
                    .is_some()
                && x.occupant(ServerId::new(0), SubchannelId::new(0)).is_some()
            {
                saw_eviction = true;
            }
            x = next;
        }
        assert!(saw_eviction, "eviction path was never exercised");
    }

    #[test]
    fn batch_draws_match_sequential_proposals() {
        let sc = scenario(6, 3, 2);
        let kernel = NeighborhoodKernel::new();
        let x = Assignment::all_local(&sc);
        for k in [1usize, 4, 8] {
            let mut batch_rng = StdRng::seed_from_u64(17);
            let mut seq_rng = StdRng::seed_from_u64(17);
            let mut batch = Vec::with_capacity(k);
            kernel.propose_batch(&sc, &x, k, &mut batch, &mut batch_rng);
            assert_eq!(batch.len(), k);
            for mv in &batch {
                let (expected, _) = kernel.propose_move(&sc, &x, &mut seq_rng);
                assert_eq!(mv, &expected, "k={k}");
            }
            // Both paths left their streams at the same point.
            assert_eq!(batch_rng.gen::<u64>(), seq_rng.gen::<u64>());
        }
    }

    #[test]
    fn proposals_never_mutate_the_input() {
        let sc = scenario(5, 2, 2);
        let kernel = NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut x = Assignment::all_local(&sc);
        x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        let snapshot = x.clone();
        for _ in 0..200 {
            let _ = kernel.propose(&sc, &x, &mut rng);
            assert_eq!(x, snapshot);
        }
    }
}
