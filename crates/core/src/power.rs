//! Joint task scheduling **and uplink power control** — the extension the
//! paper names as future work ("we've kept the user transmit power
//! constant", §III-B; Eq. 18 explicitly parks power allocation).
//!
//! Alternating optimization: TTSA schedules the offloading decision `X`
//! for the current power vector, then a coordinate-descent pass picks each
//! offloaded user's best level from a discrete menu (raising `p_u`
//! improves that user's SINR but worsens its `ψ_u·p_u` energy term *and*
//! everyone else's interference — the exact objective arbitrates).
//! Rounds repeat until no move improves `J*(X)`.

use crate::annealing::anneal;
use crate::config::TtsaConfig;
use crate::moves::NeighborhoodKernel;
use mec_system::{Assignment, EvalScratch, Evaluator, Scenario};
use mec_types::{DbMilliwatts, Error, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the joint power-control solver.
#[derive(Debug, Clone)]
pub struct PowerControlConfig {
    /// The TTSA configuration used for each scheduling pass.
    pub ttsa: TtsaConfig,
    /// The discrete power menu every user selects from.
    pub levels: Vec<DbMilliwatts>,
    /// Maximum alternating rounds (schedule → power descent).
    pub max_rounds: usize,
}

impl PowerControlConfig {
    /// Defaults: the paper's TTSA constants, a `{4, 7, 10, 13, 16}` dBm
    /// menu around the paper's fixed 10 dBm, and up to 4 rounds.
    pub fn paper_default() -> Self {
        Self {
            ttsa: TtsaConfig::paper_default(),
            levels: [4.0, 7.0, 10.0, 13.0, 16.0]
                .into_iter()
                .map(DbMilliwatts::new)
                .collect(),
            max_rounds: 4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty/non-finite level
    /// menu or zero rounds, plus any TTSA validation error.
    pub fn validate(&self) -> Result<(), Error> {
        self.ttsa.validate()?;
        if self.levels.is_empty() {
            return Err(Error::invalid("levels", "power menu must not be empty"));
        }
        if self.levels.iter().any(|l| !l.is_finite()) {
            return Err(Error::invalid("levels", "power levels must be finite"));
        }
        if self.max_rounds == 0 {
            return Err(Error::invalid("max_rounds", "need at least one round"));
        }
        Ok(())
    }
}

/// The outcome of a joint schedule-and-power optimization.
#[derive(Debug, Clone)]
pub struct PowerControlOutcome {
    /// The final offloading decision.
    pub assignment: Assignment,
    /// Per-user transmit powers after tuning.
    pub powers: Vec<DbMilliwatts>,
    /// The achieved objective `J*(X)` *under the tuned powers*.
    pub utility: f64,
    /// The objective the same rounds of TTSA achieved before any tuning
    /// (the fixed-power reference, for reporting the gain).
    pub fixed_power_utility: f64,
    /// The scenario with tuned powers applied (evaluate further decisions
    /// against this, not the original).
    pub scenario: Scenario,
    /// Alternating rounds executed.
    pub rounds: usize,
}

/// Runs alternating TTSA scheduling and coordinate-descent power control.
///
/// The input scenario is not modified; the tuned copy is returned in the
/// outcome.
///
/// # Errors
///
/// Returns configuration-validation errors; the optimization itself is
/// total.
pub fn solve_with_power_control(
    scenario: &Scenario,
    config: &PowerControlConfig,
) -> Result<PowerControlOutcome, Error> {
    config.validate()?;
    let kernel = NeighborhoodKernel::new();
    let mut rng = StdRng::seed_from_u64(config.ttsa.seed);
    let mut tuned = scenario.clone();
    let mut powers: Vec<DbMilliwatts> = scenario
        .users()
        .iter()
        .map(|u| u.device.tx_power())
        .collect();

    // Round 0: schedule on the original powers — the fixed-power baseline.
    let first = anneal(&tuned, &config.ttsa, &kernel, &mut rng);
    let fixed_power_utility = first.objective;
    let mut assignment = first.assignment;
    let mut best = fixed_power_utility;
    let mut rounds = 1;

    let mut scratch = EvalScratch::default();
    for _ in 1..=config.max_rounds {
        // Power pass: sequential coordinate descent over offloaded users.
        let mut improved = false;
        for u in 0..tuned.num_users() {
            let u = UserId::new(u);
            if !assignment.is_offloaded(u) {
                continue;
            }
            let current_level = powers[u.index()];
            let mut best_level = current_level;
            for level in &config.levels {
                tuned
                    .set_tx_power(u, *level)
                    .expect("menu levels validated finite");
                let objective = Evaluator::new(&tuned).objective_with(&assignment, &mut scratch);
                if objective > best + 1e-12 {
                    best = objective;
                    best_level = *level;
                    improved = true;
                }
            }
            tuned
                .set_tx_power(u, best_level)
                .expect("chosen level is finite");
            powers[u.index()] = best_level;
        }

        // Re-schedule on the tuned powers.
        let outcome = anneal(&tuned, &config.ttsa, &kernel, &mut rng);
        rounds += 1;
        if outcome.objective > best + 1e-12 {
            best = outcome.objective;
            assignment = outcome.assignment;
            improved = true;
        }
        if !improved {
            break;
        }
    }

    Ok(PowerControlOutcome {
        assignment,
        powers,
        utility: best,
        fixed_power_utility,
        scenario: tuned,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::UserSpec;
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    fn scenario(seed: u64, users: usize) -> Scenario {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, 3, 2, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-10.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); 3],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn quick_config() -> PowerControlConfig {
        let mut c = PowerControlConfig::paper_default();
        c.ttsa = c.ttsa.with_min_temperature(1e-2).with_seed(5);
        c.max_rounds = 3;
        c
    }

    #[test]
    fn power_control_never_loses_to_fixed_power() {
        for seed in 0..4 {
            let sc = scenario(seed, 8);
            let mut config = quick_config();
            config.ttsa = config.ttsa.with_seed(seed);
            let outcome = solve_with_power_control(&sc, &config).unwrap();
            assert!(
                outcome.utility >= outcome.fixed_power_utility - 1e-9,
                "seed {seed}: tuned {} below fixed {}",
                outcome.utility,
                outcome.fixed_power_utility
            );
            outcome
                .assignment
                .verify_feasible(&outcome.scenario)
                .unwrap();
        }
    }

    #[test]
    fn reported_utility_matches_the_tuned_scenario() {
        let sc = scenario(2, 6);
        let outcome = solve_with_power_control(&sc, &quick_config()).unwrap();
        let recomputed = Evaluator::new(&outcome.scenario).objective(&outcome.assignment);
        assert!((recomputed - outcome.utility).abs() < 1e-9);
        // Powers vector mirrors the tuned scenario's devices.
        for (u, p) in outcome.powers.iter().enumerate() {
            assert_eq!(outcome.scenario.users()[u].device.tx_power(), *p);
        }
    }

    #[test]
    fn chosen_powers_come_from_the_menu_or_stay_put() {
        let sc = scenario(3, 8);
        let config = quick_config();
        let outcome = solve_with_power_control(&sc, &config).unwrap();
        let original = DbMilliwatts::new(10.0);
        for p in &outcome.powers {
            let in_menu = config.levels.iter().any(|l| l == p);
            assert!(in_menu || *p == original, "unexpected power {p}");
        }
    }

    #[test]
    fn the_input_scenario_is_untouched() {
        let sc = scenario(4, 6);
        let before: Vec<f64> = sc.tx_powers_watts().to_vec();
        let _ = solve_with_power_control(&sc, &quick_config()).unwrap();
        assert_eq!(sc.tx_powers_watts(), before.as_slice());
    }

    #[test]
    fn validation_rejects_bad_menus() {
        let sc = scenario(5, 4);
        let mut config = quick_config();
        config.levels.clear();
        assert!(solve_with_power_control(&sc, &config).is_err());
        let mut config = quick_config();
        config.levels = vec![DbMilliwatts::new(f64::NAN)];
        assert!(solve_with_power_control(&sc, &config).is_err());
        let mut config = quick_config();
        config.max_rounds = 0;
        assert!(solve_with_power_control(&sc, &config).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let sc = scenario(6, 7);
        let a = solve_with_power_control(&sc, &quick_config()).unwrap();
        let b = solve_with_power_control(&sc, &quick_config()).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
        assert_eq!(a.powers, b.powers);
    }
}
