//! City-scale sharded solving: cluster decomposition + halo reconciliation.
//!
//! The paper's interference structure (Eq. 3) only couples users served by
//! *different* servers on the *same* subchannel, and that coupling is
//! low-rank: everything a cluster needs to know about the rest of the city
//! is the per-`(subchannel, server)` received-power totals its own users
//! did not generate — the **halo**. That makes the metro-scale problem
//! decomposable:
//!
//! 1. **Partition** ([`Partition::build`]) — servers are split into
//!    deterministic, seeded clusters of at most `cluster_size`; every user
//!    joins the cluster of its strongest server (the hex-cell attachment
//!    rule), so each cluster is a self-contained TSAJS subproblem.
//! 2. **Cold shard solve** — each non-empty cluster runs the tempered TTSA
//!    engine on its own [`Scenario::subset`], in parallel on the PR-5 style
//!    scoped worker pool. Per-cluster seeds are derived from the shard seed
//!    in cluster order *before* any work is dispatched, and each cluster's
//!    search depends only on its own stream, so the result is bit-identical
//!    at any worker count.
//! 3. **Halo reconciliation** ([`ShardRun::sweep`]) — iterated Gauss–Seidel
//!    sweeps: clusters are revisited sequentially in index order; each gets
//!    the current cross-cluster halo installed as
//!    [`Scenario::set_external_rx`] and then runs a deterministic, RNG-free
//!    first-improvement descent (single-user relocations with eviction,
//!    then pairwise slot swaps) over its own users. The sweep is Gauss–
//!    Seidel rather than Jacobi: cluster `c+1` sees cluster `c`'s updated
//!    schedule within the same sweep, which is what makes the fixed point
//!    converge in a handful of sweeps even with hot boundary users.
//! 4. **Convergence** — the run is converged when a full sweep changes no
//!    cluster's schedule (every cluster is at a local optimum *given* the
//!    others, i.e. a Nash fixed point of the decomposition), or when
//!    [`ShardConfig::max_sweeps`] caps the iteration.
//!
//! The reported objective is **not** the sum of per-cluster objectives: at
//! the end the merged city-wide assignment is re-scored through one
//! monolithic [`IncrementalObjective`] resync, and the per-cluster
//! halo-accounting sum is cross-checked against it
//! ([`ShardOutcome::halo_residual`], expected at the `1e-9` relative
//! tolerance shared by the conformance suite). Equality holds because the
//! objective is separable given the totals: each user's SINR depends only
//! on its own server's per-subchannel total, and the halo supplies exactly
//! the cross-cluster share of that total.
//!
//! ## Determinism
//!
//! Every stage is deterministic under [`ShardConfig::seed`]: the partition
//! is a pure function of `(geometry, cluster_size, seed)`, per-cluster
//! search seeds are derived in cluster order before dispatch, the worker
//! pool pins cluster `i` to worker `i mod W` and collects into indexed
//! slots, and the reconciliation sweeps are sequential and RNG-free. The
//! worker count changes *when* a cluster is solved, never *what* it
//! computes.

use crate::annealing::AnnealOutcome;
use crate::config::{TemperingConfig, TtsaConfig};
use crate::moves::NeighborhoodKernel;
use crate::tempering::temper;
use mec_system::{
    Assignment, IncrementalObjective, MoveDesc, Scenario, Solution, Solver, SolverStats,
};
use mec_types::{effective_parallelism, Error, ServerId, SubchannelId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the sharded engine.
///
/// Use [`ShardConfig::paper_default`] and the `with_*` builders, mirroring
/// [`TtsaConfig`]. The embedded `ttsa`/`tempering` configs drive each
/// cluster's cold solve; give `ttsa` a proposal budget to make the shard
/// phase anytime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Maximum number of servers per cluster.
    pub cluster_size: usize,
    /// Hard cap on Gauss–Seidel halo-reconciliation sweeps.
    pub max_sweeps: usize,
    /// Shard seed: drives the partition rotation and every per-cluster
    /// search seed.
    pub seed: u64,
    /// Cap on descent proposals per cluster per sweep (anytime bound on
    /// the reconciliation phase).
    pub descent_budget: u64,
    /// Base TTSA schedule for the per-cluster cold solves.
    pub ttsa: TtsaConfig,
    /// Tempering ladder for the per-cluster cold solves.
    pub tempering: TemperingConfig,
}

impl ShardConfig {
    /// Defaults matched to the paper's geometry: clusters of 8 servers, at
    /// most 8 reconciliation sweeps, a 200k-proposal descent budget per
    /// cluster-sweep, and the paper-default TTSA/tempering schedules for
    /// the cluster solves.
    pub fn paper_default() -> Self {
        Self {
            cluster_size: 8,
            max_sweeps: 8,
            seed: 0,
            descent_budget: 200_000,
            ttsa: TtsaConfig::paper_default(),
            tempering: TemperingConfig::paper_default(),
        }
    }

    /// Sets the maximum cluster size (servers per cluster).
    pub fn with_cluster_size(mut self, size: usize) -> Self {
        self.cluster_size = size;
        self
    }

    /// Sets the sweep cap.
    pub fn with_max_sweeps(mut self, sweeps: usize) -> Self {
        self.max_sweeps = sweeps;
        self
    }

    /// Sets the shard seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-cluster-per-sweep descent proposal budget.
    pub fn with_descent_budget(mut self, budget: u64) -> Self {
        self.descent_budget = budget;
        self
    }

    /// Replaces the per-cluster TTSA schedule.
    pub fn with_ttsa(mut self, ttsa: TtsaConfig) -> Self {
        self.ttsa = ttsa;
        self
    }

    /// Replaces the per-cluster tempering ladder.
    pub fn with_tempering(mut self, tempering: TemperingConfig) -> Self {
        self.tempering = tempering;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero cluster size, sweep
    /// cap, or descent budget, and propagates validation of the embedded
    /// TTSA and tempering configurations.
    pub fn validate(&self) -> Result<(), Error> {
        if self.cluster_size == 0 {
            return Err(Error::invalid(
                "cluster_size",
                "must hold at least 1 server",
            ));
        }
        if self.max_sweeps == 0 {
            return Err(Error::invalid("max_sweeps", "must allow at least 1 sweep"));
        }
        if self.descent_budget == 0 {
            return Err(Error::invalid(
                "descent_budget",
                "must allow at least one descent proposal",
            ));
        }
        self.ttsa.validate()?;
        self.tempering.validate()
    }
}

impl Default for ShardConfig {
    /// Defaults to [`ShardConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The members of one cluster, in ascending global-id order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterMembers {
    /// Servers owned by the cluster.
    pub servers: Vec<ServerId>,
    /// Users attached to the cluster (strongest-server rule).
    pub users: Vec<UserId>,
}

/// A deterministic, seeded partition of a scenario into server clusters.
///
/// Servers are split into contiguous index chunks of at most
/// `cluster_size`, rotated by `seed mod S` so different seeds group
/// different neighbors; every user lands in the cluster of its
/// strongest-gain server (ties break toward the lowest server index).
/// Every server and every user belongs to **exactly one** cluster — the
/// property the `shard_props` suite pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    cluster_size: usize,
    server_cluster: Vec<usize>,
    user_cluster: Vec<usize>,
    clusters: Vec<ClusterMembers>,
}

impl Partition {
    /// Builds the partition for a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero `cluster_size`.
    pub fn build(scenario: &Scenario, cluster_size: usize, seed: u64) -> Result<Self, Error> {
        if cluster_size == 0 {
            return Err(Error::invalid(
                "cluster_size",
                "must hold at least 1 server",
            ));
        }
        let s_count = scenario.num_servers();
        let num_clusters = s_count.div_ceil(cluster_size);
        let offset = (seed % s_count as u64) as usize;
        let mut clusters = vec![ClusterMembers::default(); num_clusters];

        let server_cluster: Vec<usize> = (0..s_count)
            .map(|i| ((i + offset) % s_count) / cluster_size)
            .collect();
        for (i, &c) in server_cluster.iter().enumerate() {
            clusters[c].servers.push(ServerId::new(i));
        }

        let gains = scenario.gains();
        let j0 = SubchannelId::new(0);
        let user_cluster: Vec<usize> = scenario
            .user_ids()
            .map(|u| {
                let mut best = ServerId::new(0);
                let mut best_gain = f64::NEG_INFINITY;
                for s in scenario.server_ids() {
                    let g = gains.gain(u, s, j0);
                    if g > best_gain {
                        best_gain = g;
                        best = s;
                    }
                }
                server_cluster[best.index()]
            })
            .collect();
        for (u, &c) in user_cluster.iter().enumerate() {
            clusters[c].users.push(UserId::new(u));
        }

        Ok(Self {
            cluster_size,
            server_cluster,
            user_cluster,
            clusters,
        })
    }

    /// Number of clusters (including user-empty ones).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The configured maximum cluster size.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// All clusters, in index order.
    pub fn clusters(&self) -> &[ClusterMembers] {
        &self.clusters
    }

    /// The cluster owning server `s`.
    pub fn cluster_of_server(&self, s: ServerId) -> usize {
        self.server_cluster[s.index()]
    }

    /// The cluster user `u` is attached to.
    pub fn cluster_of_user(&self, u: UserId) -> usize {
        self.user_cluster[u.index()]
    }
}

/// The city-wide halo: per-`(subchannel, server)` received-power totals of
/// **all** offloaded users, laid out `[j·S + s]` (subchannel-major, the
/// [`Scenario::external_rx`] layout). Accumulated in ascending user order,
/// so the result is a pure deterministic function of the assignment.
pub fn halo_totals(scenario: &Scenario, x: &Assignment) -> Vec<f64> {
    let s_count = scenario.num_servers();
    let powers = scenario.tx_powers_watts();
    let gains = scenario.gains();
    let mut totals = vec![0.0; scenario.num_subchannels() * s_count];
    for (u, _s, j) in x.offloaded() {
        let p = powers[u.index()];
        let row = &mut totals[j.index() * s_count..][..s_count];
        for (t, server) in row.iter_mut().zip(ServerId::all(s_count)) {
            *t += p * gains.gain(u, server, j);
        }
    }
    totals
}

/// The halo **seen by** `cluster`: [`halo_totals`] restricted to the
/// contributions of users *outside* the cluster, in the same global
/// `[j·S + s]` layout. This is exactly what the engine installs (re-indexed
/// to the cluster's local servers) as the subset's
/// [`Scenario::external_rx`].
pub fn cluster_external(
    scenario: &Scenario,
    partition: &Partition,
    cluster: usize,
    x: &Assignment,
) -> Vec<f64> {
    let s_count = scenario.num_servers();
    let powers = scenario.tx_powers_watts();
    let gains = scenario.gains();
    let mut totals = vec![0.0; scenario.num_subchannels() * s_count];
    for (u, _s, j) in x.offloaded() {
        if partition.cluster_of_user(u) == cluster {
            continue;
        }
        let p = powers[u.index()];
        let row = &mut totals[j.index() * s_count..][..s_count];
        for (t, server) in row.iter_mut().zip(ServerId::all(s_count)) {
            *t += p * gains.gain(u, server, j);
        }
    }
    totals
}

/// One non-empty cluster's solving state: the subset scenario (whose
/// `external_rx` is refreshed before every visit) plus the local↔global id
/// maps.
struct ClusterWork {
    /// Index into the partition's cluster list.
    index: usize,
    scenario: Scenario,
    users: Vec<UserId>,
    servers: Vec<ServerId>,
}

/// The result of a sharded solve.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The merged city-wide decision.
    pub assignment: Assignment,
    /// Its objective, re-scored through one monolithic
    /// [`IncrementalObjective`] resync (not a per-cluster sum).
    pub objective: f64,
    /// Non-empty clusters that were solved.
    pub clusters: usize,
    /// Gauss–Seidel reconciliation sweeps executed (excludes the cold
    /// shard solve).
    pub sweeps: usize,
    /// Whether a full sweep completed with no cluster changing (fixed
    /// point), as opposed to hitting [`ShardConfig::max_sweeps`].
    pub converged: bool,
    /// Total proposals across cluster solves and descent sweeps.
    pub proposals: u64,
    /// Relative gap between the per-cluster halo-accounting objective sum
    /// and the monolithic resync — the decomposition's self-check,
    /// expected within the suite-wide `1e-9` tolerance.
    pub halo_residual: f64,
}

/// A stepping handle over a sharded solve: construction runs the parallel
/// cold shard phase, each [`sweep`](Self::sweep) runs one Gauss–Seidel
/// halo-reconciliation pass, and [`finish`](Self::finish) re-scores the
/// merged schedule monolithically. [`solve_sharded`] drives it to
/// convergence; the property suite steps it manually to audit the halos
/// between sweeps.
pub struct ShardRun<'a> {
    scenario: &'a Scenario,
    config: ShardConfig,
    partition: Partition,
    works: Vec<ClusterWork>,
    global: Assignment,
    sweeps: usize,
    converged: bool,
    proposals: u64,
}

impl<'a> ShardRun<'a> {
    /// Partitions the scenario and runs the parallel per-cluster cold
    /// solves (`workers` caps the pool; it never affects the result).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an invalid configuration
    /// and propagates subset-construction failures.
    pub fn new(scenario: &'a Scenario, config: ShardConfig, workers: usize) -> Result<Self, Error> {
        config.validate()?;
        let partition = Partition::build(scenario, config.cluster_size, config.seed)?;

        // Per-cluster seeds are derived for *every* cluster in index order
        // before any dispatch, so a cluster's stream does not depend on
        // which other clusters happen to be user-empty.
        let mut seed_rng = StdRng::seed_from_u64(config.seed);
        let cluster_seeds: Vec<u64> = (0..partition.num_clusters())
            .map(|_| seed_rng.gen())
            .collect();

        let mut works = Vec::new();
        for (index, members) in partition.clusters().iter().enumerate() {
            if members.users.is_empty() {
                continue;
            }
            works.push(ClusterWork {
                index,
                scenario: scenario.subset(&members.users, &members.servers)?,
                users: members.users.clone(),
                servers: members.servers.clone(),
            });
        }

        // Cold shard phase: tempered TTSA per cluster, statically pinned
        // to workers (cluster i → worker i mod W) with indexed collection,
        // exactly the PR-5 pool discipline — identical at any pool width.
        let mut outcomes: Vec<Option<AnnealOutcome>> = Vec::new();
        outcomes.resize_with(works.len(), || None);
        let worker_count = workers.max(1).min(works.len().max(1));
        if worker_count <= 1 {
            let kernel = NeighborhoodKernel::new();
            for (i, work) in works.iter().enumerate() {
                outcomes[i] = Some(cold_solve(work, &config, &cluster_seeds, &kernel));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|w| {
                        let works = &works;
                        let cluster_seeds = &cluster_seeds;
                        let config = &config;
                        scope.spawn(move || {
                            let kernel = NeighborhoodKernel::new();
                            let mut results = Vec::new();
                            let mut i = w;
                            while i < works.len() {
                                results.push((
                                    i,
                                    cold_solve(&works[i], config, cluster_seeds, &kernel),
                                ));
                                i += worker_count;
                            }
                            results
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, outcome) in handle.join().expect("cluster worker panicked") {
                        outcomes[i] = Some(outcome);
                    }
                }
            });
        }

        // Merge: cluster solves only touch their own (disjoint) servers,
        // so the union is conflict-free by construction.
        let mut global = Assignment::all_local(scenario);
        let mut proposals = 0u64;
        for (work, outcome) in works.iter().zip(outcomes) {
            let outcome = outcome.expect("cluster solved");
            proposals += outcome.proposals;
            for (ul, sl, j) in outcome.assignment.offloaded() {
                global
                    .assign(work.users[ul.index()], work.servers[sl.index()], j)
                    .expect("cluster servers are disjoint");
            }
        }

        Ok(Self {
            scenario,
            config,
            partition,
            works,
            global,
            sweeps: 0,
            converged: false,
            proposals,
        })
    }

    /// The partition driving the run.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The current merged city-wide decision.
    pub fn assignment(&self) -> &Assignment {
        &self.global
    }

    /// Reconciliation sweeps executed so far.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Whether a fixed point has been reached.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Total proposals spent so far.
    pub fn proposals(&self) -> u64 {
        self.proposals
    }

    /// Runs one Gauss–Seidel sweep: every non-empty cluster, in index
    /// order, gets the current cross-cluster halo installed and runs the
    /// deterministic first-improvement descent. Returns whether any
    /// cluster changed its schedule; `false` marks the run converged.
    ///
    /// # Errors
    ///
    /// Propagates halo installation and warm-start failures (none occur
    /// for states produced by [`ShardRun::new`]).
    pub fn sweep(&mut self) -> Result<bool, Error> {
        if self.converged {
            return Ok(false);
        }
        let mut changed = false;
        for wi in 0..self.works.len() {
            let ext = cluster_external(
                self.scenario,
                &self.partition,
                self.works[wi].index,
                &self.global,
            );
            let work = &mut self.works[wi];
            install_external(work, &ext, self.scenario.num_servers())?;
            let local = local_assignment(work, &self.global)?;
            let mut inc = IncrementalObjective::new(&work.scenario, local)?;
            let (cluster_changed, spent) = descent(&mut inc, self.config.descent_budget);
            self.proposals += spent;
            if cluster_changed {
                changed = true;
                for &u in &work.users {
                    self.global.release(u);
                }
                for (ul, sl, j) in inc.assignment().offloaded() {
                    self.global
                        .assign(work.users[ul.index()], work.servers[sl.index()], j)
                        .expect("cluster servers are disjoint");
                }
            }
        }
        self.sweeps += 1;
        if !changed {
            self.converged = true;
        }
        Ok(changed)
    }

    /// Re-scores the merged schedule through one monolithic
    /// [`IncrementalObjective`] resync, cross-checks it against the
    /// per-cluster halo-accounting sum, and returns the outcome. Falls
    /// back to the all-local decision if the merged schedule is worse than
    /// doing nothing (matching every other engine's contract).
    ///
    /// # Errors
    ///
    /// Propagates monolithic-evaluation failures (none occur for states
    /// produced by [`ShardRun::new`]).
    pub fn finish(mut self) -> Result<ShardOutcome, Error> {
        // Halo accounting: with the final halos installed, the objective
        // decomposes exactly into per-cluster terms — each user's SINR
        // depends only on its own server's per-subchannel total, and the
        // external supplies the cross-cluster share of it.
        let mut cluster_sum = 0.0;
        for wi in 0..self.works.len() {
            let ext = cluster_external(
                self.scenario,
                &self.partition,
                self.works[wi].index,
                &self.global,
            );
            let work = &mut self.works[wi];
            install_external(work, &ext, self.scenario.num_servers())?;
            let local = local_assignment(work, &self.global)?;
            let inc = IncrementalObjective::new(&work.scenario, local)?;
            cluster_sum += inc.current();
        }

        let clusters = self.works.len();
        let inc = IncrementalObjective::new(self.scenario, self.global)?;
        let mut objective = inc.current();
        let halo_residual = (cluster_sum - objective).abs() / objective.abs().max(1.0);
        let mut assignment = inc.into_assignment();
        if objective < 0.0 {
            assignment = Assignment::all_local(self.scenario);
            objective = 0.0;
        }
        Ok(ShardOutcome {
            assignment,
            objective,
            clusters,
            sweeps: self.sweeps,
            converged: self.converged,
            proposals: self.proposals,
            halo_residual,
        })
    }
}

/// One cluster's cold solve: tempered TTSA on the subset, single-threaded
/// (parallelism lives at the cluster level), seeded from the cluster's
/// pre-derived stream.
fn cold_solve(
    work: &ClusterWork,
    config: &ShardConfig,
    cluster_seeds: &[u64],
    kernel: &NeighborhoodKernel,
) -> AnnealOutcome {
    let mut rng = StdRng::seed_from_u64(cluster_seeds[work.index]);
    temper(
        &work.scenario,
        &config.tempering,
        &config.ttsa,
        kernel,
        &mut rng,
        1,
    )
}

/// Installs a global-layout halo into a cluster subset's `external_rx`,
/// re-indexed to the cluster's local servers.
fn install_external(work: &mut ClusterWork, ext: &[f64], s_count: usize) -> Result<(), Error> {
    let s_local = work.servers.len();
    let n = work.scenario.num_subchannels();
    let mut local_ext = vec![0.0; n * s_local];
    for (j, row) in local_ext.chunks_exact_mut(s_local).enumerate() {
        let global_row = &ext[j * s_count..][..s_count];
        for (dst, sid) in row.iter_mut().zip(work.servers.iter()) {
            *dst = global_row[sid.index()];
        }
    }
    work.scenario.set_external_rx(Some(local_ext))
}

/// Extracts a cluster's slice of the merged global assignment in local
/// ids. Cluster users only ever hold slots on cluster servers, so the
/// server lookup cannot fail.
fn local_assignment(work: &ClusterWork, global: &Assignment) -> Result<Assignment, Error> {
    let mut local = Assignment::with_dims(
        work.users.len(),
        work.servers.len(),
        work.scenario.num_subchannels(),
    );
    for (k, &u) in work.users.iter().enumerate() {
        if let Some((s, j)) = global.slot(u) {
            let sl = work
                .servers
                .binary_search(&s)
                .expect("cluster users stay on cluster servers");
            local.assign(UserId::new(k), ServerId::new(sl), j)?;
        }
    }
    Ok(local)
}

/// Relative improvement floor for the descent: an accepted move must beat
/// the incumbent by more than this fraction of its magnitude. The
/// incremental score/apply arithmetic drifts by a few ulps (~`1e-16`
/// relative) per accepted move, so without a floor a pair of moves that
/// nets to zero can each look "improving" by ~`1e-15` and the descent
/// cycles forever; `1e-12` is two orders of magnitude above the drift and
/// three below the suite-wide `1e-9` tolerance, so it kills the cycles
/// without discarding any improvement the conformance suite could see.
const DESCENT_IMPROVEMENT_FLOOR: f64 = 1e-12;

/// Deterministic, RNG-free first-improvement descent — the tempering
/// quench's move order (every single-user relocation including evictions,
/// then pairwise slot swaps), repeated until a local optimum or the
/// budget. A move is accepted only if it clears
/// [`DESCENT_IMPROVEMENT_FLOOR`], which makes the fixed point stable
/// under floating-point drift. Returns whether any move was accepted and
/// the proposals spent. This is the per-cluster proposal loop of
/// [`ShardRun::sweep`], exposed so the counting-allocator gate in
/// `tests/shard_alloc_free.rs` can pin it: the loop reuses the
/// incremental state's buffers only, so at a fixed point it allocates
/// nothing.
pub fn descent(inc: &mut IncrementalObjective<'_>, budget: u64) -> (bool, u64) {
    let scenario = inc.scenario();
    let mut current = inc.current();
    let mut spent: u64 = 0;
    let mut changed = false;
    let mut improved = true;
    let n = scenario.num_subchannels();
    let total_slots = scenario.num_servers() * n;
    let slot = |p: usize| (ServerId::new(p / n), SubchannelId::new(p % n));
    'descent: while improved && spent < budget {
        improved = false;
        // Phase 1: every single-user relocation — back to local, or onto
        // any slot, evicting its occupant when taken.
        for u in scenario.user_ids() {
            let slots = scenario
                .server_ids()
                .flat_map(|s| SubchannelId::all(n).map(move |j| Some((s, j))));
            for target in std::iter::once(None).chain(slots) {
                if spent >= budget {
                    break 'descent;
                }
                let mv = match target {
                    None => MoveDesc::relocate(inc.assignment(), u, None),
                    Some((s, j)) => MoveDesc::relocate_evicting(inc.assignment(), u, s, j),
                };
                if mv.is_noop() {
                    continue;
                }
                let candidate = inc.score(&mv);
                spent += 1;
                if candidate - current > DESCENT_IMPROVEMENT_FLOOR * current.abs().max(1.0) {
                    inc.apply(&mv);
                    inc.commit();
                    current = candidate;
                    improved = true;
                    changed = true;
                }
            }
        }
        // Phase 2: pairwise slot exchanges between offloaded users.
        for p in 0..total_slots {
            for q in (p + 1)..total_slots {
                if spent >= budget {
                    break 'descent;
                }
                let (s1, j1) = slot(p);
                let (s2, j2) = slot(q);
                let (Some(a), Some(b)) = (
                    inc.assignment().occupant(s1, j1),
                    inc.assignment().occupant(s2, j2),
                ) else {
                    continue;
                };
                let mv = MoveDesc::swap(inc.assignment(), a, b);
                if mv.is_noop() {
                    continue;
                }
                let candidate = inc.score(&mv);
                spent += 1;
                if candidate - current > DESCENT_IMPROVEMENT_FLOOR * current.abs().max(1.0) {
                    inc.apply(&mv);
                    inc.commit();
                    current = candidate;
                    improved = true;
                    changed = true;
                }
            }
        }
    }
    (changed, spent)
}

/// Runs the sharded engine to convergence (or the sweep cap): cold shard
/// phase, Gauss–Seidel halo sweeps, monolithic re-score.
///
/// `workers` caps the cluster-solve pool (resolve it with
/// [`mec_types::effective_parallelism`]); it never affects the result.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for an invalid configuration and
/// propagates scenario-subset failures.
pub fn solve_sharded(
    scenario: &Scenario,
    config: &ShardConfig,
    workers: usize,
) -> Result<ShardOutcome, Error> {
    let mut run = ShardRun::new(scenario, *config, workers)?;
    while run.sweeps() < config.max_sweeps {
        if !run.sweep()? {
            break;
        }
    }
    run.finish()
}

/// Scalar diagnostics of the most recent [`ShardSolver`] solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Non-empty clusters solved.
    pub clusters: usize,
    /// Reconciliation sweeps executed.
    pub sweeps: usize,
    /// Whether the run reached a fixed point before the sweep cap.
    pub converged: bool,
    /// Halo-accounting residual (see [`ShardOutcome::halo_residual`]).
    pub halo_residual: f64,
}

/// The sharded city-scale scheduler behind `--solver shard`.
///
/// Implements [`Solver`]. Unlike [`TsajsSolver`](crate::TsajsSolver),
/// repeated `solve` calls are bit-identical: the shard seed fully
/// determines the partition and every cluster stream.
#[derive(Debug, Clone)]
pub struct ShardSolver {
    config: ShardConfig,
    threads: Option<usize>,
    last_stats: Option<ShardStats>,
}

impl ShardSolver {
    /// Creates a solver from a configuration.
    pub fn new(config: ShardConfig) -> Self {
        Self {
            config,
            threads: None,
            last_stats: None,
        }
    }

    /// Creates a solver with [`ShardConfig::paper_default`] and the given
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(ShardConfig::paper_default().with_seed(seed))
    }

    /// Caps the cluster-solve worker pool. Without an explicit cap,
    /// `TSAJS_THREADS` and the hardware parallelism decide (see
    /// [`mec_types::effective_parallelism`]). Thread count never affects
    /// results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Diagnostics of the most recent solve.
    pub fn last_stats(&self) -> Option<ShardStats> {
        self.last_stats
    }
}

impl Solver for ShardSolver {
    fn name(&self) -> &str {
        "TSAJS-SHARD"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let start = Instant::now();
        let workers = effective_parallelism(self.threads);
        let out = solve_sharded(scenario, &self.config, workers)?;
        let elapsed = start.elapsed();
        self.last_stats = Some(ShardStats {
            clusters: out.clusters,
            sweeps: out.sweeps,
            converged: out.converged,
            halo_residual: out.halo_residual,
        });
        Ok(Solution {
            assignment: out.assignment,
            utility: out.objective,
            stats: SolverStats {
                // One evaluation per proposal plus each cluster's initial
                // solution and the final monolithic re-score.
                objective_evaluations: out.proposals + out.clusters as u64 + 1,
                iterations: out.proposals,
                elapsed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Evaluator, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    /// A scenario with block-diagonal-dominant gains: user `u` hears
    /// server `u mod servers` best, so the strongest-server rule spreads
    /// users over every cluster.
    fn scenario(users: usize, servers: usize, subchannels: usize) -> Scenario {
        let gains = ChannelGains::shared_from_fn(users, servers, subchannels, |u, s| {
            if u.index() % servers == s.index() {
                1e-10
            } else {
                2e-11 + 1e-13 * ((u.index() + s.index()) % 7) as f64
            }
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn quick_config() -> ShardConfig {
        ShardConfig::paper_default()
            .with_cluster_size(2)
            .with_ttsa(TtsaConfig::paper_default().with_min_temperature(1e-2))
            .with_tempering(
                TemperingConfig::paper_default()
                    .with_replicas(4)
                    .with_rounds(4),
            )
    }

    #[test]
    fn partition_covers_every_entity_exactly_once() {
        let sc = scenario(12, 5, 2);
        let p = Partition::build(&sc, 2, 7).unwrap();
        assert_eq!(p.num_clusters(), 3);
        let mut seen_servers = [0usize; 5];
        let mut seen_users = [0usize; 12];
        for (c, members) in p.clusters().iter().enumerate() {
            assert!(members.servers.len() <= 2);
            for &s in &members.servers {
                seen_servers[s.index()] += 1;
                assert_eq!(p.cluster_of_server(s), c);
            }
            for &u in &members.users {
                seen_users[u.index()] += 1;
                assert_eq!(p.cluster_of_user(u), c);
            }
        }
        assert!(seen_servers.iter().all(|&n| n == 1));
        assert!(seen_users.iter().all(|&n| n == 1));
    }

    #[test]
    fn partition_rotation_depends_on_seed() {
        let sc = scenario(8, 6, 2);
        let a = Partition::build(&sc, 2, 0).unwrap();
        let b = Partition::build(&sc, 2, 1).unwrap();
        assert_ne!(a, b, "different seeds must rotate the chunk boundaries");
        let a2 = Partition::build(&sc, 2, 0).unwrap();
        assert_eq!(a, a2, "same seed must reproduce the partition");
    }

    #[test]
    fn solves_and_matches_monolithic_rescore() {
        let sc = scenario(10, 4, 2);
        let out = solve_sharded(&sc, &quick_config(), 2).unwrap();
        out.assignment.verify_feasible(&sc).unwrap();
        assert!(out.objective > 0.0, "got {}", out.objective);
        assert!(out.clusters >= 2);
        assert!(out.sweeps >= 1);
        assert!(out.halo_residual <= 1e-9, "residual {}", out.halo_residual);
        // The reported objective IS the monolithic resync, bit for bit.
        let inc = IncrementalObjective::new(&sc, out.assignment.clone()).unwrap();
        assert_eq!(out.objective.to_bits(), inc.current().to_bits());
        let fresh = Evaluator::new(&sc).objective(&out.assignment);
        assert!((fresh - out.objective).abs() <= 1e-9 * fresh.abs().max(1.0));
    }

    #[test]
    fn bit_identical_at_any_worker_count() {
        let sc = scenario(12, 4, 2);
        let cfg = quick_config().with_seed(23);
        let runs: Vec<ShardOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&w| solve_sharded(&sc, &cfg, w).unwrap())
            .collect();
        for run in &runs[1..] {
            assert_eq!(runs[0].assignment, run.assignment);
            assert_eq!(runs[0].objective.to_bits(), run.objective.to_bits());
            assert_eq!(runs[0].proposals, run.proposals);
            assert_eq!(runs[0].sweeps, run.sweeps);
        }
    }

    #[test]
    fn stepping_api_exposes_consistent_halos() {
        let sc = scenario(10, 4, 2);
        let mut run = ShardRun::new(&sc, quick_config(), 1).unwrap();
        let _ = run.sweep().unwrap();
        // Accounting identity: for every cluster, what it sees (external)
        // plus what it emits equals the global halo.
        let totals = halo_totals(&sc, run.assignment());
        for c in 0..run.partition().num_clusters() {
            let ext = cluster_external(&sc, run.partition(), c, run.assignment());
            let own: Vec<f64> = {
                let all = halo_totals(&sc, run.assignment());
                all.iter().zip(ext.iter()).map(|(t, e)| t - e).collect()
            };
            for ((t, e), o) in totals.iter().zip(ext.iter()).zip(own.iter()) {
                assert!((t - (e + o)).abs() <= 1e-12 * t.abs().max(1.0));
            }
        }
    }

    #[test]
    fn sweeps_reach_a_fixed_point_within_the_cap() {
        let sc = scenario(10, 4, 2);
        let out = solve_sharded(&sc, &quick_config(), 1).unwrap();
        assert!(
            out.converged,
            "expected a fixed point, ran {} sweeps",
            out.sweeps
        );
        assert!(out.sweeps <= quick_config().max_sweeps);
    }

    #[test]
    fn single_cluster_degenerates_to_plain_solve() {
        let sc = scenario(6, 3, 2);
        let cfg = quick_config().with_cluster_size(8);
        let out = solve_sharded(&sc, &cfg, 2).unwrap();
        assert_eq!(out.clusters, 1);
        assert!(out.converged);
        out.assignment.verify_feasible(&sc).unwrap();
        assert!(out.objective >= 0.0);
    }

    #[test]
    fn solver_trait_reports_stats() {
        let sc = scenario(10, 4, 2);
        let mut solver = ShardSolver::new(quick_config()).with_threads(2);
        assert_eq!(solver.name(), "TSAJS-SHARD");
        assert!(solver.last_stats().is_none());
        let solution = solver.solve(&sc).unwrap();
        solution.assignment.verify_feasible(&sc).unwrap();
        let stats = solver.last_stats().expect("stats recorded");
        assert!(stats.clusters >= 2);
        assert!(stats.halo_residual <= 1e-9);
        let recomputed = Evaluator::new(&sc).objective(&solution.assignment);
        assert!((solution.utility - recomputed).abs() <= 1e-9 * recomputed.abs().max(1.0));
    }

    #[test]
    fn repeated_solves_are_bit_identical() {
        let sc = scenario(8, 4, 2);
        let mut solver = ShardSolver::new(quick_config());
        let a = solver.solve(&sc).unwrap();
        let b = solver.solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let sc = scenario(4, 2, 2);
        assert!(Partition::build(&sc, 0, 0).is_err());
        assert!(quick_config().with_cluster_size(0).validate().is_err());
        assert!(quick_config().with_max_sweeps(0).validate().is_err());
        assert!(quick_config().with_descent_budget(0).validate().is_err());
        let mut solver = ShardSolver::new(quick_config().with_max_sweeps(0));
        assert!(solver.solve(&sc).is_err());
    }
}
