//! City-scale sharded solving: cluster decomposition + halo reconciliation.
//!
//! The paper's interference structure (Eq. 3) only couples users served by
//! *different* servers on the *same* subchannel, and that coupling is
//! low-rank: everything a cluster needs to know about the rest of the city
//! is the per-`(subchannel, server)` received-power totals its own users
//! did not generate — the **halo**. That makes the metro-scale problem
//! decomposable:
//!
//! 1. **Partition** ([`Partition::build`]) — servers are split into
//!    deterministic, seeded clusters of at most `cluster_size`; every user
//!    joins the cluster of its strongest server (the hex-cell attachment
//!    rule), so each cluster is a self-contained TSAJS subproblem.
//! 2. **Cold shard solve** — each non-empty cluster runs the tempered TTSA
//!    engine on its own [`Scenario::subset`], in parallel on the PR-5 style
//!    scoped worker pool. Per-cluster seeds are derived from the shard seed
//!    in cluster order *before* any work is dispatched, and each cluster's
//!    search depends only on its own stream, so the result is bit-identical
//!    at any worker count.
//! 3. **Halo reconciliation** ([`ShardRun::sweep`]) — two interchangeable
//!    reconcilers ([`Reconcile`]):
//!
//!    - [`Reconcile::Pipelined`] (the default): a Jacobi-with-aging epoch.
//!      Every cluster descends against an epoch-stamped snapshot of the
//!      external field taken from a running per-`(subchannel, server)`
//!      totals exchange, concurrently on the scoped worker pool. Changed
//!      clusters publish their halo *delta* into the exchange through a
//!      double-buffered contribution pair, in cluster index order at the
//!      epoch barrier. **Aging** skips the visit of any cluster that is at
//!      a local optimum (`settled`) and whose snapshot drifted less than
//!      [`ShardConfig::stale_threshold`] since its last descent — so
//!      steady clusters stop paying the per-visit resync + full
//!      neighborhood re-scan long before the city converges.
//!    - [`Reconcile::Sequential`]: the PR-9 Gauss–Seidel sweep, kept
//!      bit-compatible — clusters are revisited sequentially in index
//!      order against a freshly recomputed external; cluster `c+1` sees
//!      cluster `c`'s updated schedule within the same sweep.
//! 4. **Convergence** — sequential runs converge when a full sweep changes
//!    no cluster's schedule. Pipelined runs additionally require a
//!    **certification epoch**: once an epoch with skips changes nothing,
//!    the next epoch forces every cluster to descend against its exact
//!    current snapshot, and only a change-free certification epoch marks
//!    the run converged. Both reconcilers therefore end at a Nash fixed
//!    point of the decomposition (every cluster at a local optimum *given*
//!    the others), or stop at [`ShardConfig::max_sweeps`].
//! 5. **Warm re-solves** ([`ShardRun::warm`], [`resolve_sharded`],
//!    [`ShardSolver::resolve_from`]) — a churned population re-solve
//!    reuses the previous outcome's [`Partition`] (server clusters are
//!    frozen; users re-attach by the same strongest-server rule), patches
//!    survivor slots via [`Assignment::patched`], and classifies each
//!    cluster: *fresh* (no survivor — cold tempered solve, identical to
//!    the cold path), *dirty* (membership churn or halo pressure beyond
//!    [`ShardConfig::warm_halo_threshold`] — a shortened
//!    [`ShardConfig::warm_budget`] tempered refresh from the patched
//!    slice), or *clean* (the patched slice is kept verbatim). The usual
//!    reconciliation then polishes the merged schedule, so a warm
//!    re-solve from an empty previous decision is bit-identical to a cold
//!    solve.
//!
//! The reported objective is **not** the sum of per-cluster objectives: at
//! the end the merged city-wide assignment is re-scored through one
//! monolithic [`IncrementalObjective`] resync, and the per-cluster
//! halo-accounting sum is cross-checked against it
//! ([`ShardOutcome::halo_residual`], expected at the `1e-9` relative
//! tolerance shared by the conformance suite). Equality holds because the
//! objective is separable given the totals: each user's SINR depends only
//! on its own server's per-subchannel total, and the halo supplies exactly
//! the cross-cluster share of that total.
//!
//! ## Determinism
//!
//! Every stage is deterministic under [`ShardConfig::seed`]: the partition
//! is a pure function of `(geometry, cluster_size, seed)`, per-cluster
//! search seeds are derived in cluster order before dispatch, the worker
//! pool pins cluster `i` to worker `i mod W` and collects into indexed
//! slots, and the reconciliation sweeps are RNG-free. The pipelined epoch
//! keeps the same contract: eligibility is decided by the coordinator
//! before dispatch, every visit reads only its own cluster's state plus
//! the epoch-frozen exchange snapshot, and all deltas are published at
//! the barrier in cluster index order — so the worker count changes
//! *when* a cluster is descended, never *what* it computes.

use crate::annealing::AnnealOutcome;
use crate::config::{InitialTemperature, TemperingConfig, TtsaConfig, DEFAULT_REFRESH_TEMPERATURE};
use crate::moves::NeighborhoodKernel;
use crate::tempering::{temper, temper_from};
use mec_system::{
    Assignment, IncrementalObjective, MoveDesc, Scenario, Solution, Solver, SolverStats,
};
use mec_types::{effective_parallelism, Error, ServerId, SubchannelId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which halo reconciler [`ShardRun::sweep`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reconcile {
    /// PR-9 Gauss–Seidel: clusters revisited sequentially in index order
    /// against a freshly recomputed external field. Kept bit-compatible
    /// as the regression baseline.
    Sequential,
    /// Jacobi-with-aging epochs on the scoped worker pool: concurrent
    /// descents against epoch-stamped exchange snapshots, delta publishes
    /// at deterministic barriers, staleness-gated visit skips, and a
    /// mandatory change-free certification epoch before convergence.
    Pipelined,
}

impl Default for Reconcile {
    /// Defaults to [`Reconcile::Pipelined`].
    fn default() -> Self {
        Self::Pipelined
    }
}

/// Configuration of the sharded engine.
///
/// Use [`ShardConfig::paper_default`] and the `with_*` builders, mirroring
/// [`TtsaConfig`]. The embedded `ttsa`/`tempering` configs drive each
/// cluster's cold solve; give `ttsa` a proposal budget to make the shard
/// phase anytime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Maximum number of servers per cluster.
    pub cluster_size: usize,
    /// Hard cap on halo-reconciliation sweeps (epochs in pipelined mode,
    /// including the certification epoch).
    pub max_sweeps: usize,
    /// Shard seed: drives the partition rotation and every per-cluster
    /// search seed.
    pub seed: u64,
    /// Cap on descent proposals per cluster per sweep (anytime bound on
    /// the reconciliation phase).
    pub descent_budget: u64,
    /// Relative improvement floor for sweep-phase descent moves: a move is
    /// accepted only if it improves the cluster objective by more than
    /// this fraction of its magnitude. The default
    /// [`DESCENT_IMPROVEMENT_FLOOR`] only guards against floating-point
    /// drift; raising it damps boundary users whose relocation gains less
    /// than the floor but whose interference externality would otherwise
    /// keep two neighboring clusters trading the same user forever (a
    /// block-coordinate limit cycle — the sweep cap exists for exactly
    /// that case). Both reconcilers honor it identically.
    pub descent_floor: f64,
    /// Which halo reconciler to run.
    pub reconcile: Reconcile,
    /// Pipelined aging gate: a settled cluster skips its epoch visit while
    /// its external snapshot has drifted by less than this fraction of the
    /// largest halo magnitude since its last descent. The certification
    /// epoch ignores it, so the threshold trades intermediate visits, not
    /// the fixed-point contract.
    pub stale_threshold: f64,
    /// Tempered-refresh proposal budget for *dirty* clusters on the warm
    /// path (fresh clusters always use the full cold schedule).
    pub warm_budget: u64,
    /// Warm-path halo pressure gate: a cluster with only clean survivors
    /// still counts as dirty when any of its servers' halo entries moved
    /// by more than this fraction of the largest halo magnitude since the
    /// previous outcome.
    pub warm_halo_threshold: f64,
    /// Base TTSA schedule for the per-cluster cold solves.
    pub ttsa: TtsaConfig,
    /// Tempering ladder for the per-cluster cold solves.
    pub tempering: TemperingConfig,
}

impl ShardConfig {
    /// Defaults matched to the paper's geometry: clusters of 8 servers, at
    /// most 8 reconciliation sweeps, a 200k-proposal descent budget per
    /// cluster-sweep, and the paper-default TTSA/tempering schedules for
    /// the cluster solves.
    pub fn paper_default() -> Self {
        Self {
            cluster_size: 8,
            max_sweeps: 8,
            seed: 0,
            descent_budget: 200_000,
            descent_floor: DESCENT_IMPROVEMENT_FLOOR,
            reconcile: Reconcile::Pipelined,
            stale_threshold: 1e-3,
            warm_budget: 20_000,
            warm_halo_threshold: 0.05,
            ttsa: TtsaConfig::paper_default(),
            tempering: TemperingConfig::paper_default(),
        }
    }

    /// Sets the maximum cluster size (servers per cluster).
    pub fn with_cluster_size(mut self, size: usize) -> Self {
        self.cluster_size = size;
        self
    }

    /// Sets the sweep cap.
    pub fn with_max_sweeps(mut self, sweeps: usize) -> Self {
        self.max_sweeps = sweeps;
        self
    }

    /// Sets the shard seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-cluster-per-sweep descent proposal budget.
    pub fn with_descent_budget(mut self, budget: u64) -> Self {
        self.descent_budget = budget;
        self
    }

    /// Sets the relative improvement floor for sweep-phase descent moves.
    pub fn with_descent_floor(mut self, floor: f64) -> Self {
        self.descent_floor = floor;
        self
    }

    /// Selects the halo reconciler.
    pub fn with_reconcile(mut self, reconcile: Reconcile) -> Self {
        self.reconcile = reconcile;
        self
    }

    /// Sets the pipelined aging (staleness) gate.
    pub fn with_stale_threshold(mut self, threshold: f64) -> Self {
        self.stale_threshold = threshold;
        self
    }

    /// Sets the warm-path tempered-refresh proposal budget.
    pub fn with_warm_budget(mut self, budget: u64) -> Self {
        self.warm_budget = budget;
        self
    }

    /// Sets the warm-path halo pressure gate.
    pub fn with_warm_halo_threshold(mut self, threshold: f64) -> Self {
        self.warm_halo_threshold = threshold;
        self
    }

    /// Replaces the per-cluster TTSA schedule.
    pub fn with_ttsa(mut self, ttsa: TtsaConfig) -> Self {
        self.ttsa = ttsa;
        self
    }

    /// Replaces the per-cluster tempering ladder.
    pub fn with_tempering(mut self, tempering: TemperingConfig) -> Self {
        self.tempering = tempering;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero cluster size, sweep
    /// cap, or descent budget, and propagates validation of the embedded
    /// TTSA and tempering configurations.
    pub fn validate(&self) -> Result<(), Error> {
        if self.cluster_size == 0 {
            return Err(Error::invalid(
                "cluster_size",
                "must hold at least 1 server",
            ));
        }
        if self.max_sweeps == 0 {
            return Err(Error::invalid("max_sweeps", "must allow at least 1 sweep"));
        }
        if self.descent_budget == 0 {
            return Err(Error::invalid(
                "descent_budget",
                "must allow at least one descent proposal",
            ));
        }
        if !self.descent_floor.is_finite() || self.descent_floor < 0.0 {
            return Err(Error::invalid("descent_floor", "must be finite and >= 0"));
        }
        if !self.stale_threshold.is_finite() || self.stale_threshold < 0.0 {
            return Err(Error::invalid("stale_threshold", "must be finite and >= 0"));
        }
        if self.warm_budget == 0 {
            return Err(Error::invalid(
                "warm_budget",
                "must allow at least one refresh proposal",
            ));
        }
        if !self.warm_halo_threshold.is_finite() || self.warm_halo_threshold < 0.0 {
            return Err(Error::invalid(
                "warm_halo_threshold",
                "must be finite and >= 0",
            ));
        }
        self.ttsa.validate()?;
        self.tempering.validate()
    }
}

impl Default for ShardConfig {
    /// Defaults to [`ShardConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The members of one cluster, in ascending global-id order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterMembers {
    /// Servers owned by the cluster.
    pub servers: Vec<ServerId>,
    /// Users attached to the cluster (strongest-server rule).
    pub users: Vec<UserId>,
}

/// A deterministic, seeded partition of a scenario into server clusters.
///
/// Servers are split into contiguous index chunks of at most
/// `cluster_size`, rotated by `seed mod S` so different seeds group
/// different neighbors; every user lands in the cluster of its
/// strongest-gain server (ties break toward the lowest server index).
/// Every server and every user belongs to **exactly one** cluster — the
/// property the `shard_props` suite pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    cluster_size: usize,
    server_cluster: Vec<usize>,
    user_cluster: Vec<usize>,
    clusters: Vec<ClusterMembers>,
}

impl Partition {
    /// Builds the partition for a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero `cluster_size`.
    pub fn build(scenario: &Scenario, cluster_size: usize, seed: u64) -> Result<Self, Error> {
        if cluster_size == 0 {
            return Err(Error::invalid(
                "cluster_size",
                "must hold at least 1 server",
            ));
        }
        let s_count = scenario.num_servers();
        let offset = (seed % s_count as u64) as usize;
        let server_cluster: Vec<usize> = (0..s_count)
            .map(|i| ((i + offset) % s_count) / cluster_size)
            .collect();
        Ok(Self::from_server_clusters(
            scenario,
            cluster_size,
            server_cluster,
        ))
    }

    /// Assembles a partition from an explicit server→cluster map,
    /// attaching every user to the cluster of its strongest server.
    fn from_server_clusters(
        scenario: &Scenario,
        cluster_size: usize,
        server_cluster: Vec<usize>,
    ) -> Self {
        let num_clusters = server_cluster.iter().max().map_or(0, |&c| c + 1);
        let mut clusters = vec![ClusterMembers::default(); num_clusters];
        for (i, &c) in server_cluster.iter().enumerate() {
            clusters[c].servers.push(ServerId::new(i));
        }

        let gains = scenario.gains();
        let j0 = SubchannelId::new(0);
        let user_cluster: Vec<usize> = scenario
            .user_ids()
            .map(|u| {
                let mut best = ServerId::new(0);
                let mut best_gain = f64::NEG_INFINITY;
                for s in scenario.server_ids() {
                    let g = gains.gain(u, s, j0);
                    if g > best_gain {
                        best_gain = g;
                        best = s;
                    }
                }
                server_cluster[best.index()]
            })
            .collect();
        for (u, &c) in user_cluster.iter().enumerate() {
            clusters[c].users.push(UserId::new(u));
        }

        Self {
            cluster_size,
            server_cluster,
            user_cluster,
            clusters,
        }
    }

    /// Carries the partition onto a churned population: the server
    /// clustering is kept verbatim (so a warm re-solve patches the *same*
    /// subproblems the previous decision solved), and user attachment is
    /// recomputed for the new scenario by the same strongest-server rule.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the scenario's server count
    /// differs from the partition's.
    pub fn rebuild_users(&self, scenario: &Scenario) -> Result<Self, Error> {
        if scenario.num_servers() != self.server_cluster.len() {
            return Err(Error::DimensionMismatch {
                what: "partition servers vs scenario servers",
                expected: self.server_cluster.len(),
                actual: scenario.num_servers(),
            });
        }
        Ok(Self::from_server_clusters(
            scenario,
            self.cluster_size,
            self.server_cluster.clone(),
        ))
    }

    /// Number of clusters (including user-empty ones).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The configured maximum cluster size.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// All clusters, in index order.
    pub fn clusters(&self) -> &[ClusterMembers] {
        &self.clusters
    }

    /// The cluster owning server `s`.
    pub fn cluster_of_server(&self, s: ServerId) -> usize {
        self.server_cluster[s.index()]
    }

    /// The cluster user `u` is attached to.
    pub fn cluster_of_user(&self, u: UserId) -> usize {
        self.user_cluster[u.index()]
    }
}

/// The city-wide halo: per-`(subchannel, server)` received-power totals of
/// **all** offloaded users, laid out `[j·S + s]` (subchannel-major, the
/// [`Scenario::external_rx`] layout). Accumulated in ascending user order,
/// so the result is a pure deterministic function of the assignment.
pub fn halo_totals(scenario: &Scenario, x: &Assignment) -> Vec<f64> {
    let s_count = scenario.num_servers();
    let powers = scenario.tx_powers_watts();
    let gains = scenario.gains();
    let mut totals = vec![0.0; scenario.num_subchannels() * s_count];
    for (u, _s, j) in x.offloaded() {
        let p = powers[u.index()];
        let row = &mut totals[j.index() * s_count..][..s_count];
        for (t, server) in row.iter_mut().zip(ServerId::all(s_count)) {
            *t += p * gains.gain(u, server, j);
        }
    }
    totals
}

/// The halo **seen by** `cluster`: [`halo_totals`] restricted to the
/// contributions of users *outside* the cluster, in the same global
/// `[j·S + s]` layout. This is exactly what the engine installs (re-indexed
/// to the cluster's local servers) as the subset's
/// [`Scenario::external_rx`].
pub fn cluster_external(
    scenario: &Scenario,
    partition: &Partition,
    cluster: usize,
    x: &Assignment,
) -> Vec<f64> {
    let s_count = scenario.num_servers();
    let powers = scenario.tx_powers_watts();
    let gains = scenario.gains();
    let mut totals = vec![0.0; scenario.num_subchannels() * s_count];
    for (u, _s, j) in x.offloaded() {
        if partition.cluster_of_user(u) == cluster {
            continue;
        }
        let p = powers[u.index()];
        let row = &mut totals[j.index() * s_count..][..s_count];
        for (t, server) in row.iter_mut().zip(ServerId::all(s_count)) {
            *t += p * gains.gain(u, server, j);
        }
    }
    totals
}

/// Accumulates the halo contribution of one cluster's users into `out`
/// (global `[j·S + s]` layout, overwritten): `local` is the cluster's
/// schedule in local ids, `users` the local→global user map.
fn own_contribution_into(
    scenario: &Scenario,
    users: &[UserId],
    local: &Assignment,
    out: &mut [f64],
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    let s_count = scenario.num_servers();
    let powers = scenario.tx_powers_watts();
    let gains = scenario.gains();
    for (ul, _sl, j) in local.offloaded() {
        let u = users[ul.index()];
        let p = powers[u.index()];
        let row = &mut out[j.index() * s_count..][..s_count];
        for (t, server) in row.iter_mut().zip(ServerId::all(s_count)) {
            *t += p * gains.gain(u, server, j);
        }
    }
}

/// Publishes one cluster's halo delta into the exchange totals:
/// `totals += next − previous`, entrywise, returning the largest absolute
/// entry of the delta. This is the barrier-time half of the pipelined
/// double buffer — allocation-free, so the counting-allocator gate in
/// `crates/core/tests/shard_alloc_free.rs` can pin the publish cycle.
pub fn publish_halo_delta(totals: &mut [f64], previous: &[f64], next: &[f64]) -> f64 {
    debug_assert_eq!(totals.len(), previous.len());
    debug_assert_eq!(totals.len(), next.len());
    let mut max_delta = 0.0f64;
    for ((t, p), n) in totals.iter_mut().zip(previous.iter()).zip(next.iter()) {
        let d = n - p;
        *t += d;
        max_delta = max_delta.max(d.abs());
    }
    max_delta
}

/// One non-empty cluster's solving state: the subset scenario (whose
/// `external_rx` is refreshed before every visit) and the local↔global id
/// maps, plus the persistent per-cluster exchange state the pipelined
/// reconciler ages between epochs.
struct ClusterWork {
    /// Index into the partition's cluster list.
    index: usize,
    scenario: Scenario,
    users: Vec<UserId>,
    servers: Vec<ServerId>,
    /// Current local schedule (the source of truth between pipelined
    /// epochs; re-merged into the global decision at the barrier).
    local: Assignment,
    /// This cluster's halo contribution currently folded into the
    /// exchange totals (global layout).
    contrib: Vec<f64>,
    /// Double-buffer partner of `contrib`: the recomputed contribution
    /// awaiting its barrier publish.
    contrib_next: Vec<f64>,
    /// Epoch-stamped external snapshot (local `[j·s_local + t]` layout).
    ext: Vec<f64>,
    /// The external snapshot this cluster last descended against — the
    /// aging reference for the staleness gate.
    seen: Vec<f64>,
    /// Whether the last descent ended at a local optimum (as opposed to
    /// exhausting its budget). Unsettled clusters never skip.
    settled: bool,
    /// Whether the coordinator selected this cluster for the current
    /// epoch's descent phase.
    eligible: bool,
    /// Whether the current epoch's descent changed the schedule (consumed
    /// at the barrier).
    changed: bool,
    /// Proposals spent by the current epoch's descent (consumed at the
    /// barrier).
    spent: u64,
    /// Cluster objective at the last descent, under the external it saw —
    /// the cheap per-cluster term [`ShardRun::finish_fast`] sums.
    last_obj: f64,
}

impl ClusterWork {
    fn new(
        index: usize,
        subset: Scenario,
        users: Vec<UserId>,
        servers: Vec<ServerId>,
        s_count: usize,
    ) -> Self {
        let n = subset.num_subchannels();
        let s_local = servers.len();
        Self {
            index,
            local: Assignment::with_dims(users.len(), s_local, n),
            contrib: vec![0.0; n * s_count],
            contrib_next: vec![0.0; n * s_count],
            ext: vec![0.0; n * s_local],
            seen: vec![0.0; n * s_local],
            settled: false,
            eligible: true,
            changed: false,
            spent: 0,
            last_obj: 0.0,
            scenario: subset,
            users,
            servers,
        }
    }
}

/// The result of a sharded solve.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The merged city-wide decision.
    pub assignment: Assignment,
    /// Its objective, re-scored through one monolithic
    /// [`IncrementalObjective`] resync (not a per-cluster sum) by
    /// [`ShardRun::finish`]; the approximate per-cluster sum by
    /// [`ShardRun::finish_fast`].
    pub objective: f64,
    /// Non-empty clusters that were solved.
    pub clusters: usize,
    /// Reconciliation sweeps (epochs) executed, excluding the cold shard
    /// solve.
    pub sweeps: usize,
    /// Whether the run reached a fixed point (for pipelined runs,
    /// including a change-free certification epoch), as opposed to
    /// hitting [`ShardConfig::max_sweeps`].
    pub converged: bool,
    /// Total proposals across cluster solves and descent sweeps.
    pub proposals: u64,
    /// Relative gap between the per-cluster halo-accounting objective sum
    /// and the monolithic resync — the decomposition's self-check,
    /// expected within the suite-wide `1e-9` tolerance. Only
    /// [`ShardRun::finish`] recomputes it; [`ShardRun::finish_fast`]
    /// reports [`ShardOutcome::sweep_residual`] here instead.
    pub halo_residual: f64,
    /// The cheap per-sweep residual: largest halo-exchange delta published
    /// in the last sweep, relative to the largest halo magnitude. Zero at
    /// a fixed point; bench loops read this instead of paying the
    /// `O(U·S)` monolithic resync per measurement point.
    pub sweep_residual: f64,
    /// Clusters actually (re-)solved: all of them on the cold path; only
    /// fresh + dirty clusters on the warm path.
    pub resolved_clusters: usize,
    /// Clusters whose previous schedule was carried over verbatim by the
    /// warm path.
    pub reused_clusters: usize,
    /// The partition behind the decision — the warm path reuses it.
    pub partition: Partition,
    /// The final halo totals `[j·S + s]` of the decision — the warm
    /// path's halo-pressure reference.
    pub halo: Vec<f64>,
}

impl ShardOutcome {
    /// The empty previous decision: no users, no halo, the seeded
    /// partition of the scenario. Warm-resolving from it is bit-identical
    /// to a cold [`solve_sharded`] (pass an all-`None` survivor map) —
    /// the equivalence the `shard_warm_equivalence` invariant pins.
    ///
    /// # Errors
    ///
    /// Propagates [`Partition::build`] failures.
    pub fn empty(scenario: &Scenario, config: &ShardConfig) -> Result<Self, Error> {
        let partition = Partition::build(scenario, config.cluster_size, config.seed)?;
        Ok(Self {
            assignment: Assignment::with_dims(
                0,
                scenario.num_servers(),
                scenario.num_subchannels(),
            ),
            objective: 0.0,
            clusters: 0,
            sweeps: 0,
            converged: true,
            proposals: 0,
            halo_residual: 0.0,
            sweep_residual: 0.0,
            resolved_clusters: 0,
            reused_clusters: 0,
            partition,
            halo: vec![0.0; scenario.num_subchannels() * scenario.num_servers()],
        })
    }
}

/// A stepping handle over a sharded solve: construction runs the parallel
/// cold shard phase ([`ShardRun::new`]) or the warm patch-and-refresh
/// phase ([`ShardRun::warm`]), each [`sweep`](Self::sweep) runs one
/// reconciliation pass of the configured [`Reconcile`] mode, and
/// [`finish`](Self::finish) re-scores the merged schedule monolithically
/// ([`finish_fast`](Self::finish_fast) skips the resync for timing
/// loops). [`solve_sharded`]/[`resolve_sharded`] drive it to convergence;
/// the property suite steps it manually to audit the halos between
/// sweeps.
pub struct ShardRun<'a> {
    scenario: &'a Scenario,
    config: ShardConfig,
    workers: usize,
    partition: Partition,
    works: Vec<ClusterWork>,
    global: Assignment,
    /// The halo exchange: current per-`(subchannel, server)` totals of
    /// all offloaded users, maintained by barrier-time delta publishes.
    totals: Vec<f64>,
    sweeps: usize,
    converged: bool,
    /// Pipelined only: the next epoch is a certification epoch (every
    /// cluster descends, no aging skips).
    certifying: bool,
    proposals: u64,
    /// Largest exchange delta of the last sweep, relative to the largest
    /// halo magnitude.
    last_residual: f64,
    resolved_clusters: usize,
    reused_clusters: usize,
}

impl<'a> ShardRun<'a> {
    /// Partitions the scenario and runs the parallel per-cluster cold
    /// solves (`workers` caps the pool; it never affects the result).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an invalid configuration
    /// and propagates subset-construction failures.
    pub fn new(scenario: &'a Scenario, config: ShardConfig, workers: usize) -> Result<Self, Error> {
        config.validate()?;
        let partition = Partition::build(scenario, config.cluster_size, config.seed)?;

        // Per-cluster seeds are derived for *every* cluster in index order
        // before any dispatch, so a cluster's stream does not depend on
        // which other clusters happen to be user-empty.
        let mut seed_rng = StdRng::seed_from_u64(config.seed);
        let cluster_seeds: Vec<u64> = (0..partition.num_clusters())
            .map(|_| seed_rng.gen())
            .collect();

        let s_count = scenario.num_servers();
        let mut works = Vec::new();
        for (index, members) in partition.clusters().iter().enumerate() {
            if members.users.is_empty() {
                continue;
            }
            works.push(ClusterWork::new(
                index,
                scenario.subset(&members.users, &members.servers)?,
                members.users.clone(),
                members.servers.clone(),
                s_count,
            ));
        }

        // Cold shard phase: tempered TTSA per cluster, statically pinned
        // to workers (cluster i → worker i mod W) with indexed collection,
        // exactly the PR-5 pool discipline — identical at any pool width.
        let mut outcomes: Vec<Option<AnnealOutcome>> = Vec::new();
        outcomes.resize_with(works.len(), || None);
        let worker_count = workers.max(1).min(works.len().max(1));
        if worker_count <= 1 {
            let kernel = NeighborhoodKernel::new();
            for (i, work) in works.iter().enumerate() {
                outcomes[i] = Some(cold_solve(work, &config, &cluster_seeds, &kernel));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|w| {
                        let works = &works;
                        let cluster_seeds = &cluster_seeds;
                        let config = &config;
                        scope.spawn(move || {
                            let kernel = NeighborhoodKernel::new();
                            let mut results = Vec::new();
                            let mut i = w;
                            while i < works.len() {
                                results.push((
                                    i,
                                    cold_solve(&works[i], config, cluster_seeds, &kernel),
                                ));
                                i += worker_count;
                            }
                            results
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, outcome) in handle.join().expect("cluster worker panicked") {
                        outcomes[i] = Some(outcome);
                    }
                }
            });
        }

        // Merge: cluster solves only touch their own (disjoint) servers,
        // so the union is conflict-free by construction.
        let mut global = Assignment::all_local(scenario);
        let mut proposals = 0u64;
        for (work, outcome) in works.iter_mut().zip(outcomes) {
            let outcome = outcome.expect("cluster solved");
            proposals += outcome.proposals;
            for (ul, sl, j) in outcome.assignment.offloaded() {
                global
                    .assign(work.users[ul.index()], work.servers[sl.index()], j)
                    .expect("cluster servers are disjoint");
            }
            work.last_obj = outcome.objective;
            work.local = outcome.assignment;
        }

        let resolved = works.len();
        Ok(Self::assemble(
            scenario, config, workers, partition, works, global, proposals, resolved, 0,
        ))
    }

    /// Shared tail of [`ShardRun::new`] and [`ShardRun::warm`]: seeds the
    /// halo exchange from every cluster's contribution (in cluster index
    /// order) and wraps up the run state.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        scenario: &'a Scenario,
        config: ShardConfig,
        workers: usize,
        partition: Partition,
        mut works: Vec<ClusterWork>,
        global: Assignment,
        proposals: u64,
        resolved_clusters: usize,
        reused_clusters: usize,
    ) -> Self {
        let mut totals = vec![0.0; scenario.num_subchannels() * scenario.num_servers()];
        for work in works.iter_mut() {
            own_contribution_into(scenario, &work.users, &work.local, &mut work.contrib);
            for (t, c) in totals.iter_mut().zip(work.contrib.iter()) {
                *t += c;
            }
        }
        Self {
            scenario,
            config,
            workers,
            partition,
            works,
            global,
            totals,
            sweeps: 0,
            converged: false,
            certifying: false,
            proposals,
            last_residual: f64::INFINITY,
            resolved_clusters,
            reused_clusters,
        }
    }

    /// Warm construction from a previous outcome: reuses `prev`'s server
    /// clustering ([`Partition::rebuild_users`]), patches survivor slots
    /// via [`Assignment::patched`] (`old_of_new[v]` names the previous
    /// user that new index `v` continues, `None` for arrivals), and
    /// classifies every non-empty cluster:
    ///
    /// - **fresh** — no surviving user: the full cold tempered solve,
    ///   with the same derived seed as the cold path (which is why a warm
    ///   run from [`ShardOutcome::empty`] is bit-identical to
    ///   [`ShardRun::new`]);
    /// - **dirty** — membership churn (an arrival, a departure, a
    ///   survivor that changed clusters or held a slot outside its new
    ///   cluster) or halo pressure beyond
    ///   [`ShardConfig::warm_halo_threshold`] against `prev.halo`: a
    ///   shortened [`ShardConfig::warm_budget`] tempered refresh from the
    ///   patched slice;
    /// - **clean** — the patched slice is carried over verbatim, zero
    ///   proposals.
    ///
    /// The reconciliation sweeps then run exactly as on the cold path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `old_of_new` doesn't cover
    /// the scenario's population or `prev` has a different `(S, N)`
    /// geometry, and propagates configuration, patch and subset failures.
    pub fn warm(
        scenario: &'a Scenario,
        config: ShardConfig,
        workers: usize,
        prev: &ShardOutcome,
        old_of_new: &[Option<UserId>],
    ) -> Result<Self, Error> {
        config.validate()?;
        if old_of_new.len() != scenario.num_users() {
            return Err(Error::DimensionMismatch {
                what: "old_of_new vs scenario users",
                expected: scenario.num_users(),
                actual: old_of_new.len(),
            });
        }
        let s_count = scenario.num_servers();
        let n = scenario.num_subchannels();
        if prev.assignment.num_servers() != s_count
            || prev.assignment.num_subchannels() != n
            || prev.halo.len() != n * s_count
        {
            return Err(Error::DimensionMismatch {
                what: "previous shard outcome vs scenario geometry",
                expected: n * s_count,
                actual: prev.halo.len(),
            });
        }
        let partition = prev.partition.rebuild_users(scenario)?;

        // Same derivation as the cold path: every cluster's stream, in
        // index order, before any dispatch.
        let mut seed_rng = StdRng::seed_from_u64(config.seed);
        let cluster_seeds: Vec<u64> = (0..partition.num_clusters())
            .map(|_| seed_rng.gen())
            .collect();

        let mut patched = prev.assignment.patched(old_of_new)?;
        let mut dirty = vec![false; partition.num_clusters()];

        // Survivors whose slot landed outside their (possibly new)
        // attachment cluster go local again; both clusters re-solve.
        for v in 0..old_of_new.len() {
            let u = UserId::new(v);
            if let Some((s, _)) = patched.slot(u) {
                let cu = partition.cluster_of_user(u);
                let cs = partition.cluster_of_server(s);
                if cu != cs {
                    patched.release(u);
                    dirty[cu] = true;
                    dirty[cs] = true;
                }
            }
        }

        // Membership churn: arrivals dirty their cluster, moved survivors
        // dirty both sides, departures dirty the cluster they left.
        let mut continued = vec![false; prev.assignment.num_users()];
        for (v, old) in old_of_new.iter().enumerate() {
            let c = partition.cluster_of_user(UserId::new(v));
            match old {
                None => dirty[c] = true,
                Some(o) => {
                    continued[o.index()] = true;
                    let co = prev.partition.cluster_of_user(*o);
                    if co != c {
                        dirty[c] = true;
                        if co < dirty.len() {
                            dirty[co] = true;
                        }
                    }
                }
            }
        }
        for (o, was_continued) in continued.iter().enumerate() {
            if !was_continued {
                let co = prev.partition.cluster_of_user(UserId::new(o));
                if co < dirty.len() {
                    dirty[co] = true;
                }
            }
        }

        // Halo pressure: clusters whose servers' external field moved
        // beyond the threshold re-solve even with untouched membership.
        let patched_halo = halo_totals(scenario, &patched);
        let scale = halo_scale(&patched_halo).max(halo_scale(&prev.halo));
        let halo_gate = config.warm_halo_threshold * scale;
        for (k, (new_v, old_v)) in patched_halo.iter().zip(prev.halo.iter()).enumerate() {
            if (new_v - old_v).abs() > halo_gate {
                dirty[partition.cluster_of_server(ServerId::new(k % s_count))] = true;
            }
        }

        let mut works = Vec::new();
        let mut refresh = Vec::new();
        for (index, members) in partition.clusters().iter().enumerate() {
            if members.users.is_empty() {
                continue;
            }
            let survivors = members
                .users
                .iter()
                .any(|&u| old_of_new[u.index()].is_some());
            works.push(ClusterWork::new(
                index,
                scenario.subset(&members.users, &members.servers)?,
                members.users.clone(),
                members.servers.clone(),
                s_count,
            ));
            refresh.push(if !survivors {
                WarmClass::Fresh
            } else if dirty[index] {
                WarmClass::Dirty
            } else {
                WarmClass::Clean
            });
        }

        // Dirty clusters refresh against the patched city's halo; fresh
        // clusters must stay bit-identical to the cold path, so their
        // subsets keep no external.
        let mut starts: Vec<Option<Assignment>> = Vec::with_capacity(works.len());
        for (work, class) in works.iter_mut().zip(refresh.iter()) {
            if *class == WarmClass::Dirty {
                let ext = cluster_external(scenario, &partition, work.index, &patched);
                install_external(work, &ext, s_count)?;
            }
            starts.push(if *class == WarmClass::Fresh {
                None
            } else {
                Some(local_assignment(work, &patched)?)
            });
        }

        // Solve phase, pinned to workers exactly like the cold path.
        let mut outcomes: Vec<Option<AnnealOutcome>> = Vec::new();
        outcomes.resize_with(works.len(), || None);
        let worker_count = workers.max(1).min(works.len().max(1));
        let solve_one = |i: usize, kernel: &NeighborhoodKernel| -> Option<AnnealOutcome> {
            match refresh[i] {
                WarmClass::Fresh => Some(cold_solve(&works[i], &config, &cluster_seeds, kernel)),
                WarmClass::Dirty => Some(warm_refresh(
                    &works[i],
                    &config,
                    &cluster_seeds,
                    kernel,
                    starts[i].clone().expect("dirty clusters have a start"),
                )),
                WarmClass::Clean => None,
            }
        };
        if worker_count <= 1 {
            let kernel = NeighborhoodKernel::new();
            for (i, slot) in outcomes.iter_mut().enumerate() {
                *slot = solve_one(i, &kernel);
            }
        } else {
            let work_count = works.len();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|w| {
                        let solve_one = &solve_one;
                        scope.spawn(move || {
                            let kernel = NeighborhoodKernel::new();
                            let mut results = Vec::new();
                            let mut i = w;
                            while i < work_count {
                                results.push((i, solve_one(i, &kernel)));
                                i += worker_count;
                            }
                            results
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, outcome) in handle.join().expect("cluster worker panicked") {
                        outcomes[i] = outcome;
                    }
                }
            });
        }

        // Merge in cluster index order (same order as the cold path).
        let mut global = Assignment::all_local(scenario);
        let mut proposals = 0u64;
        let mut resolved = 0usize;
        let mut reused = 0usize;
        for i in 0..works.len() {
            let final_local = match outcomes[i].take() {
                Some(outcome) => {
                    proposals += outcome.proposals;
                    resolved += 1;
                    works[i].last_obj = outcome.objective;
                    outcome.assignment
                }
                None => {
                    reused += 1;
                    starts[i].take().expect("clean clusters keep their slice")
                }
            };
            for (ul, sl, j) in final_local.offloaded() {
                global
                    .assign(works[i].users[ul.index()], works[i].servers[sl.index()], j)
                    .expect("cluster servers are disjoint");
            }
            works[i].local = final_local;
        }

        let mut run = Self::assemble(
            scenario, config, workers, partition, works, global, proposals, resolved, reused,
        );
        // Clean clusters enter the sweep phase settled: their slice was a
        // descent fixed point under the previous decision's halo, so the
        // aging gate — not an unconditional first visit — decides when
        // they re-descend. Their `seen` snapshot is stamped from the
        // patched exchange so the first epoch measures genuine drift
        // rather than distance from the zero-initialized buffer. The
        // certification epoch still visits every cluster before the run
        // may converge, so the exact fixed-point contract is unchanged.
        for (work, class) in run.works.iter_mut().zip(refresh.iter()) {
            if *class != WarmClass::Clean {
                continue;
            }
            let s_local = work.servers.len();
            for (j, seen_row) in work.seen.chunks_exact_mut(s_local).enumerate() {
                let totals_row = &run.totals[j * s_count..][..s_count];
                let contrib_row = &work.contrib[j * s_count..][..s_count];
                for (dst, sid) in seen_row.iter_mut().zip(work.servers.iter()) {
                    *dst = (totals_row[sid.index()] - contrib_row[sid.index()]).max(0.0);
                }
            }
            work.settled = true;
        }
        Ok(run)
    }

    /// The partition driving the run.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The current merged city-wide decision.
    pub fn assignment(&self) -> &Assignment {
        &self.global
    }

    /// Reconciliation sweeps executed so far.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Whether a fixed point has been reached.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Total proposals spent so far.
    pub fn proposals(&self) -> u64 {
        self.proposals
    }

    /// The largest per-sweep halo-exchange residual (see
    /// [`ShardOutcome::sweep_residual`]); `INFINITY` before the first
    /// sweep.
    pub fn sweep_residual(&self) -> f64 {
        self.last_residual
    }

    /// Runs one reconciliation pass of the configured [`Reconcile`] mode.
    /// Returns whether another pass is needed; `false` marks the run
    /// converged.
    ///
    /// # Errors
    ///
    /// Propagates halo installation and warm-start failures (none occur
    /// for states produced by [`ShardRun::new`] / [`ShardRun::warm`]).
    pub fn sweep(&mut self) -> Result<bool, Error> {
        match self.config.reconcile {
            Reconcile::Sequential => self.sequential_sweep(),
            Reconcile::Pipelined => self.pipelined_sweep(),
        }
    }

    /// The PR-9 Gauss–Seidel sweep: every non-empty cluster, in index
    /// order, gets the current cross-cluster halo freshly recomputed and
    /// installed, then runs the deterministic first-improvement descent.
    /// Bit-compatible with the PR-9 engine; the exchange bookkeeping on
    /// top is observational only.
    fn sequential_sweep(&mut self) -> Result<bool, Error> {
        if self.converged {
            return Ok(false);
        }
        let scale = halo_scale(&self.totals);
        let mut max_delta = 0.0f64;
        let mut changed = false;
        for wi in 0..self.works.len() {
            let ext = cluster_external(
                self.scenario,
                &self.partition,
                self.works[wi].index,
                &self.global,
            );
            let work = &mut self.works[wi];
            install_external(work, &ext, self.scenario.num_servers())?;
            let local = local_assignment(work, &self.global)?;
            let mut inc = IncrementalObjective::new(&work.scenario, local)?;
            let outcome = descent(
                &mut inc,
                self.config.descent_budget,
                self.config.descent_floor,
            );
            self.proposals += outcome.spent;
            work.last_obj = inc.current();
            work.settled = !outcome.exhausted;
            if outcome.changed {
                changed = true;
                work.local = inc.into_assignment();
                for &u in &work.users {
                    self.global.release(u);
                }
                for (ul, sl, j) in work.local.offloaded() {
                    self.global
                        .assign(work.users[ul.index()], work.servers[sl.index()], j)
                        .expect("cluster servers are disjoint");
                }
                own_contribution_into(
                    self.scenario,
                    &work.users,
                    &work.local,
                    &mut work.contrib_next,
                );
                max_delta = max_delta.max(publish_halo_delta(
                    &mut self.totals,
                    &work.contrib,
                    &work.contrib_next,
                ));
                std::mem::swap(&mut work.contrib, &mut work.contrib_next);
            }
        }
        self.sweeps += 1;
        self.last_residual = max_delta / scale;
        if !changed {
            self.converged = true;
        }
        Ok(changed)
    }

    /// One pipelined Jacobi-with-aging epoch:
    ///
    /// 1. **Snapshot** (coordinator) — every cluster's external is read
    ///    off the exchange (`totals − own contribution`, clamped at 0
    ///    against cancellation residue) and its drift against the
    ///    last-descended snapshot decides eligibility: settled clusters
    ///    whose drift stays under [`ShardConfig::stale_threshold`] skip
    ///    the epoch (unless this is a certification epoch).
    /// 2. **Descend** (worker pool) — eligible clusters install their
    ///    snapshot and run the deterministic descent concurrently; each
    ///    visit touches only its own cluster's state, so the schedule of
    ///    visits over workers cannot affect any result.
    /// 3. **Publish** (coordinator, cluster index order) — changed
    ///    clusters re-merge into the global decision and publish their
    ///    contribution delta into the exchange via the double buffer.
    ///
    /// Convergence requires a change-free **certification epoch** (no
    /// aging skips): epochs that skipped anyone only schedule one, so
    /// the fixed point the sequential mode guarantees is certified, not
    /// assumed.
    fn pipelined_sweep(&mut self) -> Result<bool, Error> {
        if self.converged {
            return Ok(false);
        }
        let s_count = self.scenario.num_servers();
        let scale = halo_scale(&self.totals);
        let force = self.certifying;

        // Phase 1: epoch-stamp the exchange into per-cluster snapshots
        // and decide eligibility.
        let stale_gate = self.config.stale_threshold * scale;
        for work in self.works.iter_mut() {
            let s_local = work.servers.len();
            let mut drift = 0.0f64;
            for (j, (ext_row, seen_row)) in work
                .ext
                .chunks_exact_mut(s_local)
                .zip(work.seen.chunks_exact(s_local))
                .enumerate()
            {
                let totals_row = &self.totals[j * s_count..][..s_count];
                let contrib_row = &work.contrib[j * s_count..][..s_count];
                for ((dst, &old), sid) in ext_row
                    .iter_mut()
                    .zip(seen_row.iter())
                    .zip(work.servers.iter())
                {
                    let v = (totals_row[sid.index()] - contrib_row[sid.index()]).max(0.0);
                    drift = drift.max((v - old).abs());
                    *dst = v;
                }
            }
            work.eligible = force || !work.settled || drift > stale_gate;
        }

        // Phase 2: concurrent descents against the frozen snapshots.
        {
            let scenario = self.scenario;
            let budget = self.config.descent_budget;
            let floor = self.config.descent_floor;
            let mut eligible: Vec<&mut ClusterWork> =
                self.works.iter_mut().filter(|w| w.eligible).collect();
            let worker_count = self.workers.max(1).min(eligible.len().max(1));
            if worker_count <= 1 {
                for work in eligible.iter_mut() {
                    pipelined_visit(work, scenario, budget, floor)?;
                }
            } else {
                let mut buckets: Vec<Vec<&mut ClusterWork>> = Vec::new();
                buckets.resize_with(worker_count, Vec::new);
                for (i, work) in eligible.into_iter().enumerate() {
                    buckets[i % worker_count].push(work);
                }
                let results: Vec<Result<(), Error>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = buckets
                        .into_iter()
                        .map(|bucket| {
                            scope.spawn(move || {
                                for work in bucket {
                                    pipelined_visit(work, scenario, budget, floor)?;
                                }
                                Ok(())
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("halo worker panicked"))
                        .collect()
                });
                for result in results {
                    result?;
                }
            }
        }

        // Phase 3: barrier — merge and publish deltas in cluster index
        // order (deterministic regardless of who descended where).
        let mut epoch_changed = false;
        let mut max_delta = 0.0f64;
        for work in self.works.iter_mut() {
            if !work.eligible {
                continue;
            }
            self.proposals += work.spent;
            work.spent = 0;
            if work.changed {
                work.changed = false;
                epoch_changed = true;
                for &u in &work.users {
                    self.global.release(u);
                }
                for (ul, sl, j) in work.local.offloaded() {
                    self.global
                        .assign(work.users[ul.index()], work.servers[sl.index()], j)
                        .expect("cluster servers are disjoint");
                }
                max_delta = max_delta.max(publish_halo_delta(
                    &mut self.totals,
                    &work.contrib,
                    &work.contrib_next,
                ));
                std::mem::swap(&mut work.contrib, &mut work.contrib_next);
            }
        }

        self.sweeps += 1;
        self.last_residual = max_delta / scale;
        if epoch_changed {
            self.certifying = false;
            return Ok(true);
        }
        if self.works.iter().any(|w| !w.eligible) {
            // A change-free epoch that skipped someone proves nothing yet:
            // certify the fixed point with one full epoch.
            self.certifying = true;
            return Ok(true);
        }
        self.certifying = false;
        self.converged = true;
        Ok(false)
    }

    /// Re-scores the merged schedule through one monolithic
    /// [`IncrementalObjective`] resync, cross-checks it against the
    /// per-cluster halo-accounting sum, and returns the outcome. Falls
    /// back to the all-local decision if the merged schedule is worse than
    /// doing nothing (matching every other engine's contract).
    ///
    /// # Errors
    ///
    /// Propagates monolithic-evaluation failures (none occur for states
    /// produced by [`ShardRun::new`] / [`ShardRun::warm`]).
    pub fn finish(mut self) -> Result<ShardOutcome, Error> {
        // Halo accounting: with the final halos installed, the objective
        // decomposes exactly into per-cluster terms — each user's SINR
        // depends only on its own server's per-subchannel total, and the
        // external supplies the cross-cluster share of it.
        let mut cluster_sum = 0.0;
        for wi in 0..self.works.len() {
            let ext = cluster_external(
                self.scenario,
                &self.partition,
                self.works[wi].index,
                &self.global,
            );
            let work = &mut self.works[wi];
            install_external(work, &ext, self.scenario.num_servers())?;
            let local = local_assignment(work, &self.global)?;
            let inc = IncrementalObjective::new(&work.scenario, local)?;
            cluster_sum += inc.current();
        }

        let clusters = self.works.len();
        let inc = IncrementalObjective::new(self.scenario, self.global)?;
        let mut objective = inc.current();
        let halo_residual = (cluster_sum - objective).abs() / objective.abs().max(1.0);
        let mut assignment = inc.into_assignment();
        if objective < 0.0 {
            assignment = Assignment::all_local(self.scenario);
            objective = 0.0;
        }
        let halo = halo_totals(self.scenario, &assignment);
        let sweep_residual = if self.last_residual.is_finite() {
            self.last_residual
        } else {
            0.0
        };
        Ok(ShardOutcome {
            assignment,
            objective,
            clusters,
            sweeps: self.sweeps,
            converged: self.converged,
            proposals: self.proposals,
            halo_residual,
            sweep_residual,
            resolved_clusters: self.resolved_clusters,
            reused_clusters: self.reused_clusters,
            partition: self.partition,
            halo,
        })
    }

    /// [`finish`](Self::finish) without the `O(U·S)` monolithic resync:
    /// the objective is the sum of each cluster's objective at its last
    /// descent (approximate — the externals those descents saw lag the
    /// final exchange state by at most one epoch), and `halo_residual`
    /// reports the cheap per-sweep exchange residual instead of the
    /// audited accounting gap. Bench timing loops use this so a
    /// measurement point costs only what the reconciler itself costs;
    /// anything user-facing goes through [`finish`](Self::finish).
    pub fn finish_fast(self) -> ShardOutcome {
        let clusters = self.works.len();
        let mut objective: f64 = self.works.iter().map(|w| w.last_obj).sum();
        let mut assignment = self.global;
        if !objective.is_finite() || objective < 0.0 {
            assignment = Assignment::all_local(self.scenario);
            objective = 0.0;
        }
        let halo = halo_totals(self.scenario, &assignment);
        let sweep_residual = if self.last_residual.is_finite() {
            self.last_residual
        } else {
            0.0
        };
        ShardOutcome {
            assignment,
            objective,
            clusters,
            sweeps: self.sweeps,
            converged: self.converged,
            proposals: self.proposals,
            halo_residual: sweep_residual,
            sweep_residual,
            resolved_clusters: self.resolved_clusters,
            reused_clusters: self.reused_clusters,
            partition: self.partition,
            halo,
        }
    }
}

/// One cluster's cold solve: tempered TTSA on the subset, single-threaded
/// (parallelism lives at the cluster level), seeded from the cluster's
/// pre-derived stream.
fn cold_solve(
    work: &ClusterWork,
    config: &ShardConfig,
    cluster_seeds: &[u64],
    kernel: &NeighborhoodKernel,
) -> AnnealOutcome {
    let mut rng = StdRng::seed_from_u64(cluster_seeds[work.index]);
    temper(
        &work.scenario,
        &config.tempering,
        &config.ttsa,
        kernel,
        &mut rng,
        1,
    )
}

/// How the warm path treats one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarmClass {
    /// No surviving user — full cold solve (identical to the cold path).
    Fresh,
    /// Membership churn or halo pressure — shortened tempered refresh
    /// from the patched slice.
    Dirty,
    /// Untouched — the patched slice is kept verbatim.
    Clean,
}

/// One dirty cluster's warm refresh: a shortened tempered run
/// ([`ShardConfig::warm_budget`] proposals at the online engine's fixed
/// refresh temperature) from the patched local slice, against the
/// pre-installed patched-city halo, seeded from the same pre-derived
/// cluster stream as a cold solve.
fn warm_refresh(
    work: &ClusterWork,
    config: &ShardConfig,
    cluster_seeds: &[u64],
    kernel: &NeighborhoodKernel,
    start: Assignment,
) -> AnnealOutcome {
    let mut rng = StdRng::seed_from_u64(cluster_seeds[work.index]);
    let ttsa = config
        .ttsa
        .with_proposal_budget(config.warm_budget)
        .with_initial_temperature(InitialTemperature::Fixed(DEFAULT_REFRESH_TEMPERATURE));
    temper_from(
        &work.scenario,
        &config.tempering,
        &ttsa,
        kernel,
        &mut rng,
        1,
        start,
    )
}

/// The exchange's magnitude scale: the largest absolute halo entry,
/// floored away from zero so relative gates stay well-defined on an
/// all-local city.
fn halo_scale(totals: &[f64]) -> f64 {
    totals
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE)
}

/// Installs a global-layout halo into a cluster subset's `external_rx`,
/// re-indexed to the cluster's local servers. Recycles the subset's
/// previous external buffer ([`Scenario::take_external_rx`]) so repeated
/// visits don't allocate.
fn install_external(work: &mut ClusterWork, ext: &[f64], s_count: usize) -> Result<(), Error> {
    let s_local = work.servers.len();
    let n = work.scenario.num_subchannels();
    let mut local_ext = work.scenario.take_external_rx().unwrap_or_default();
    local_ext.clear();
    local_ext.resize(n * s_local, 0.0);
    for (j, row) in local_ext.chunks_exact_mut(s_local).enumerate() {
        let global_row = &ext[j * s_count..][..s_count];
        for (dst, sid) in row.iter_mut().zip(work.servers.iter()) {
            *dst = global_row[sid.index()];
        }
    }
    work.scenario.set_external_rx(Some(local_ext))
}

/// Installs the cluster's already-local epoch snapshot (`work.ext`) as
/// its subset's `external_rx`, recycling the previous buffer.
fn install_snapshot(work: &mut ClusterWork) -> Result<(), Error> {
    let mut buf = work.scenario.take_external_rx().unwrap_or_default();
    buf.clear();
    buf.extend_from_slice(&work.ext);
    work.scenario.set_external_rx(Some(buf))
}

/// One pipelined epoch visit: install the frozen snapshot, descend, and
/// stage the results (`changed`/`spent`/`settled`/`last_obj`, the
/// refreshed contribution, the aging reference) for the barrier. Reads
/// nothing outside its own cluster's state, which is what makes the
/// epoch worker-count independent.
fn pipelined_visit(
    work: &mut ClusterWork,
    scenario: &Scenario,
    budget: u64,
    floor: f64,
) -> Result<(), Error> {
    install_snapshot(work)?;
    let local = std::mem::replace(&mut work.local, Assignment::with_dims(0, 0, 0));
    let mut inc = IncrementalObjective::new(&work.scenario, local)?;
    let outcome = descent(&mut inc, budget, floor);
    work.last_obj = inc.current();
    work.local = inc.into_assignment();
    work.settled = !outcome.exhausted;
    work.changed = outcome.changed;
    work.spent = outcome.spent;
    work.seen.copy_from_slice(&work.ext);
    if outcome.changed {
        own_contribution_into(scenario, &work.users, &work.local, &mut work.contrib_next);
    }
    Ok(())
}

/// Extracts a cluster's slice of the merged global assignment in local
/// ids. Cluster users only ever hold slots on cluster servers, so the
/// server lookup cannot fail.
fn local_assignment(work: &ClusterWork, global: &Assignment) -> Result<Assignment, Error> {
    let mut local = Assignment::with_dims(
        work.users.len(),
        work.servers.len(),
        work.scenario.num_subchannels(),
    );
    for (k, &u) in work.users.iter().enumerate() {
        if let Some((s, j)) = global.slot(u) {
            let sl = work
                .servers
                .binary_search(&s)
                .expect("cluster users stay on cluster servers");
            local.assign(UserId::new(k), ServerId::new(sl), j)?;
        }
    }
    Ok(local)
}

/// Relative improvement floor for the descent: an accepted move must beat
/// the incumbent by more than this fraction of its magnitude. The
/// incremental score/apply arithmetic drifts by a few ulps (~`1e-16`
/// relative) per accepted move, so without a floor a pair of moves that
/// nets to zero can each look "improving" by ~`1e-15` and the descent
/// cycles forever; `1e-12` is two orders of magnitude above the drift and
/// three below the suite-wide `1e-9` tolerance, so it kills the cycles
/// without discarding any improvement the conformance suite could see.
/// Default relative improvement floor for [`descent`] — just enough to
/// keep the fixed point stable under floating-point drift. See
/// [`ShardConfig::descent_floor`] for when to raise it.
pub const DESCENT_IMPROVEMENT_FLOOR: f64 = 1e-12;

/// What one [`descent`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descent {
    /// Whether any move was accepted.
    pub changed: bool,
    /// Proposals spent.
    pub spent: u64,
    /// Whether the budget ran out before a full improvement-free pass —
    /// i.e. the state may *not* be a local optimum. The pipelined aging
    /// gate only ever skips clusters that ended unexhausted (`settled`).
    pub exhausted: bool,
}

/// Deterministic, RNG-free first-improvement descent — the tempering
/// quench's move order (every single-user relocation including evictions,
/// then pairwise slot swaps), repeated until a local optimum or the
/// budget. A move is accepted only if it improves the objective by more
/// than `floor` relative to its magnitude — at the default
/// [`DESCENT_IMPROVEMENT_FLOOR`] that merely makes the fixed point stable
/// under floating-point drift; see [`ShardConfig::descent_floor`] for the
/// limit-cycle damping use. This is the per-cluster proposal loop of
/// [`ShardRun::sweep`], exposed so the counting-allocator gate in
/// `tests/shard_alloc_free.rs` can pin it: the loop reuses the
/// incremental state's buffers only, so at a fixed point it allocates
/// nothing.
pub fn descent(inc: &mut IncrementalObjective<'_>, budget: u64, floor: f64) -> Descent {
    let scenario = inc.scenario();
    let mut current = inc.current();
    let mut spent: u64 = 0;
    let mut changed = false;
    let mut exhausted = false;
    let mut improved = true;
    let n = scenario.num_subchannels();
    let total_slots = scenario.num_servers() * n;
    let slot = |p: usize| (ServerId::new(p / n), SubchannelId::new(p % n));
    'descent: while improved && spent < budget {
        improved = false;
        // Phase 1: every single-user relocation — back to local, or onto
        // any slot, evicting its occupant when taken.
        for u in scenario.user_ids() {
            let slots = scenario
                .server_ids()
                .flat_map(|s| SubchannelId::all(n).map(move |j| Some((s, j))));
            for target in std::iter::once(None).chain(slots) {
                if spent >= budget {
                    exhausted = true;
                    break 'descent;
                }
                let mv = match target {
                    None => MoveDesc::relocate(inc.assignment(), u, None),
                    Some((s, j)) => MoveDesc::relocate_evicting(inc.assignment(), u, s, j),
                };
                if mv.is_noop() {
                    continue;
                }
                let candidate = inc.score(&mv);
                spent += 1;
                if candidate - current > floor * current.abs().max(1.0) {
                    inc.apply(&mv);
                    inc.commit();
                    current = candidate;
                    improved = true;
                    changed = true;
                }
            }
        }
        // Phase 2: pairwise slot exchanges between offloaded users.
        for p in 0..total_slots {
            for q in (p + 1)..total_slots {
                if spent >= budget {
                    exhausted = true;
                    break 'descent;
                }
                let (s1, j1) = slot(p);
                let (s2, j2) = slot(q);
                let (Some(a), Some(b)) = (
                    inc.assignment().occupant(s1, j1),
                    inc.assignment().occupant(s2, j2),
                ) else {
                    continue;
                };
                let mv = MoveDesc::swap(inc.assignment(), a, b);
                if mv.is_noop() {
                    continue;
                }
                let candidate = inc.score(&mv);
                spent += 1;
                if candidate - current > floor * current.abs().max(1.0) {
                    inc.apply(&mv);
                    inc.commit();
                    current = candidate;
                    improved = true;
                    changed = true;
                }
            }
        }
    }
    // Exiting the while because `improved && spent >= budget` also means
    // the budget cut a pass short of proving a local optimum.
    Descent {
        changed,
        spent,
        exhausted: exhausted || (improved && spent >= budget),
    }
}

/// Runs the sharded engine to convergence (or the sweep cap): cold shard
/// phase, Gauss–Seidel halo sweeps, monolithic re-score.
///
/// `workers` caps the cluster-solve pool (resolve it with
/// [`mec_types::effective_parallelism`]); it never affects the result.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for an invalid configuration and
/// propagates scenario-subset failures.
pub fn solve_sharded(
    scenario: &Scenario,
    config: &ShardConfig,
    workers: usize,
) -> Result<ShardOutcome, Error> {
    let mut run = ShardRun::new(scenario, *config, workers)?;
    while run.sweeps() < config.max_sweeps {
        if !run.sweep()? {
            break;
        }
    }
    run.finish()
}

/// Warm-resolves a churned population against a previous outcome: the
/// [`ShardRun::warm`] patch-and-refresh phase, then the same
/// reconciliation drive as [`solve_sharded`]. With
/// `prev = `[`ShardOutcome::empty`] and an all-`None` map this is
/// bit-identical to [`solve_sharded`].
///
/// `workers` caps the cluster-solve pool; it never affects the result.
///
/// # Errors
///
/// As [`ShardRun::warm`].
pub fn resolve_sharded(
    scenario: &Scenario,
    config: &ShardConfig,
    workers: usize,
    prev: &ShardOutcome,
    old_of_new: &[Option<UserId>],
) -> Result<ShardOutcome, Error> {
    let mut run = ShardRun::warm(scenario, *config, workers, prev, old_of_new)?;
    while run.sweeps() < config.max_sweeps {
        if !run.sweep()? {
            break;
        }
    }
    run.finish()
}

/// Scalar diagnostics of the most recent [`ShardSolver`] solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Non-empty clusters solved.
    pub clusters: usize,
    /// Reconciliation sweeps executed.
    pub sweeps: usize,
    /// Whether the run reached a fixed point before the sweep cap.
    pub converged: bool,
    /// Halo-accounting residual (see [`ShardOutcome::halo_residual`]).
    pub halo_residual: f64,
    /// Largest last-sweep exchange delta (see
    /// [`ShardOutcome::sweep_residual`]).
    pub sweep_residual: f64,
    /// Clusters (re-)solved (see [`ShardOutcome::resolved_clusters`]).
    pub resolved_clusters: usize,
    /// Clusters carried over verbatim by the warm path (0 on cold
    /// solves).
    pub reused_clusters: usize,
}

/// The sharded city-scale scheduler behind `--solver shard`.
///
/// Implements [`Solver`]. Unlike [`TsajsSolver`](crate::TsajsSolver),
/// repeated `solve` calls are bit-identical: the shard seed fully
/// determines the partition and every cluster stream.
#[derive(Debug, Clone)]
pub struct ShardSolver {
    config: ShardConfig,
    threads: Option<usize>,
    last_stats: Option<ShardStats>,
    last_outcome: Option<ShardOutcome>,
}

impl ShardSolver {
    /// Creates a solver from a configuration.
    pub fn new(config: ShardConfig) -> Self {
        Self {
            config,
            threads: None,
            last_stats: None,
            last_outcome: None,
        }
    }

    /// Creates a solver with [`ShardConfig::paper_default`] and the given
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(ShardConfig::paper_default().with_seed(seed))
    }

    /// Caps the cluster-solve worker pool. Without an explicit cap,
    /// `TSAJS_THREADS` and the hardware parallelism decide (see
    /// [`mec_types::effective_parallelism`]). Thread count never affects
    /// results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Diagnostics of the most recent solve.
    pub fn last_stats(&self) -> Option<ShardStats> {
        self.last_stats
    }

    /// The full outcome of the most recent [`Solver::solve`] or
    /// [`ShardSolver::resolve_from`] — the previous decision a follow-up
    /// `resolve_from` patches.
    pub fn last_outcome(&self) -> Option<&ShardOutcome> {
        self.last_outcome.as_ref()
    }

    /// Warm-resolves a churned scenario against a previous outcome (see
    /// [`resolve_sharded`]): only fresh/dirty clusters re-solve, clean
    /// clusters keep their patched slices, and the usual reconciliation
    /// polishes the merge. Records the outcome for the next chain link.
    ///
    /// # Errors
    ///
    /// As [`resolve_sharded`].
    pub fn resolve_from(
        &mut self,
        scenario: &Scenario,
        prev: &ShardOutcome,
        old_of_new: &[Option<UserId>],
    ) -> Result<Solution, Error> {
        let start = Instant::now();
        let workers = effective_parallelism(self.threads);
        let out = resolve_sharded(scenario, &self.config, workers, prev, old_of_new)?;
        let elapsed = start.elapsed();
        Ok(self.record(out, elapsed))
    }

    /// Stores stats + outcome and shapes the [`Solution`].
    fn record(&mut self, out: ShardOutcome, elapsed: std::time::Duration) -> Solution {
        self.last_stats = Some(ShardStats {
            clusters: out.clusters,
            sweeps: out.sweeps,
            converged: out.converged,
            halo_residual: out.halo_residual,
            sweep_residual: out.sweep_residual,
            resolved_clusters: out.resolved_clusters,
            reused_clusters: out.reused_clusters,
        });
        let solution = Solution {
            assignment: out.assignment.clone(),
            utility: out.objective,
            stats: SolverStats {
                // One evaluation per proposal plus each cluster's initial
                // solution and the final monolithic re-score.
                objective_evaluations: out.proposals + out.clusters as u64 + 1,
                iterations: out.proposals,
                elapsed,
            },
        };
        self.last_outcome = Some(out);
        solution
    }
}

impl Solver for ShardSolver {
    fn name(&self) -> &str {
        "TSAJS-SHARD"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        let start = Instant::now();
        let workers = effective_parallelism(self.threads);
        let out = solve_sharded(scenario, &self.config, workers)?;
        let elapsed = start.elapsed();
        Ok(self.record(out, elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Evaluator, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    /// A scenario with block-diagonal-dominant gains: user `u` hears
    /// server `u mod servers` best, so the strongest-server rule spreads
    /// users over every cluster.
    fn scenario(users: usize, servers: usize, subchannels: usize) -> Scenario {
        let gains = ChannelGains::shared_from_fn(users, servers, subchannels, |u, s| {
            if u.index() % servers == s.index() {
                1e-10
            } else {
                2e-11 + 1e-13 * ((u.index() + s.index()) % 7) as f64
            }
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn quick_config() -> ShardConfig {
        ShardConfig::paper_default()
            .with_cluster_size(2)
            .with_ttsa(TtsaConfig::paper_default().with_min_temperature(1e-2))
            .with_tempering(
                TemperingConfig::paper_default()
                    .with_replicas(4)
                    .with_rounds(4),
            )
    }

    #[test]
    fn partition_covers_every_entity_exactly_once() {
        let sc = scenario(12, 5, 2);
        let p = Partition::build(&sc, 2, 7).unwrap();
        assert_eq!(p.num_clusters(), 3);
        let mut seen_servers = [0usize; 5];
        let mut seen_users = [0usize; 12];
        for (c, members) in p.clusters().iter().enumerate() {
            assert!(members.servers.len() <= 2);
            for &s in &members.servers {
                seen_servers[s.index()] += 1;
                assert_eq!(p.cluster_of_server(s), c);
            }
            for &u in &members.users {
                seen_users[u.index()] += 1;
                assert_eq!(p.cluster_of_user(u), c);
            }
        }
        assert!(seen_servers.iter().all(|&n| n == 1));
        assert!(seen_users.iter().all(|&n| n == 1));
    }

    #[test]
    fn partition_rotation_depends_on_seed() {
        let sc = scenario(8, 6, 2);
        let a = Partition::build(&sc, 2, 0).unwrap();
        let b = Partition::build(&sc, 2, 1).unwrap();
        assert_ne!(a, b, "different seeds must rotate the chunk boundaries");
        let a2 = Partition::build(&sc, 2, 0).unwrap();
        assert_eq!(a, a2, "same seed must reproduce the partition");
    }

    #[test]
    fn solves_and_matches_monolithic_rescore() {
        let sc = scenario(10, 4, 2);
        let out = solve_sharded(&sc, &quick_config(), 2).unwrap();
        out.assignment.verify_feasible(&sc).unwrap();
        assert!(out.objective > 0.0, "got {}", out.objective);
        assert!(out.clusters >= 2);
        assert!(out.sweeps >= 1);
        assert!(out.halo_residual <= 1e-9, "residual {}", out.halo_residual);
        // The reported objective IS the monolithic resync, bit for bit.
        let inc = IncrementalObjective::new(&sc, out.assignment.clone()).unwrap();
        assert_eq!(out.objective.to_bits(), inc.current().to_bits());
        let fresh = Evaluator::new(&sc).objective(&out.assignment);
        assert!((fresh - out.objective).abs() <= 1e-9 * fresh.abs().max(1.0));
    }

    #[test]
    fn bit_identical_at_any_worker_count() {
        let sc = scenario(12, 4, 2);
        let cfg = quick_config().with_seed(23);
        let runs: Vec<ShardOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&w| solve_sharded(&sc, &cfg, w).unwrap())
            .collect();
        for run in &runs[1..] {
            assert_eq!(runs[0].assignment, run.assignment);
            assert_eq!(runs[0].objective.to_bits(), run.objective.to_bits());
            assert_eq!(runs[0].proposals, run.proposals);
            assert_eq!(runs[0].sweeps, run.sweeps);
        }
    }

    #[test]
    fn stepping_api_exposes_consistent_halos() {
        let sc = scenario(10, 4, 2);
        let mut run = ShardRun::new(&sc, quick_config(), 1).unwrap();
        let _ = run.sweep().unwrap();
        // Accounting identity: for every cluster, what it sees (external)
        // plus what it emits equals the global halo.
        let totals = halo_totals(&sc, run.assignment());
        for c in 0..run.partition().num_clusters() {
            let ext = cluster_external(&sc, run.partition(), c, run.assignment());
            let own: Vec<f64> = {
                let all = halo_totals(&sc, run.assignment());
                all.iter().zip(ext.iter()).map(|(t, e)| t - e).collect()
            };
            for ((t, e), o) in totals.iter().zip(ext.iter()).zip(own.iter()) {
                assert!((t - (e + o)).abs() <= 1e-12 * t.abs().max(1.0));
            }
        }
    }

    #[test]
    fn sweeps_reach_a_fixed_point_within_the_cap() {
        let sc = scenario(10, 4, 2);
        let out = solve_sharded(&sc, &quick_config(), 1).unwrap();
        assert!(
            out.converged,
            "expected a fixed point, ran {} sweeps",
            out.sweeps
        );
        assert!(out.sweeps <= quick_config().max_sweeps);
    }

    #[test]
    fn single_cluster_degenerates_to_plain_solve() {
        let sc = scenario(6, 3, 2);
        let cfg = quick_config().with_cluster_size(8);
        let out = solve_sharded(&sc, &cfg, 2).unwrap();
        assert_eq!(out.clusters, 1);
        assert!(out.converged);
        out.assignment.verify_feasible(&sc).unwrap();
        assert!(out.objective >= 0.0);
    }

    #[test]
    fn solver_trait_reports_stats() {
        let sc = scenario(10, 4, 2);
        let mut solver = ShardSolver::new(quick_config()).with_threads(2);
        assert_eq!(solver.name(), "TSAJS-SHARD");
        assert!(solver.last_stats().is_none());
        let solution = solver.solve(&sc).unwrap();
        solution.assignment.verify_feasible(&sc).unwrap();
        let stats = solver.last_stats().expect("stats recorded");
        assert!(stats.clusters >= 2);
        assert!(stats.halo_residual <= 1e-9);
        let recomputed = Evaluator::new(&sc).objective(&solution.assignment);
        assert!((solution.utility - recomputed).abs() <= 1e-9 * recomputed.abs().max(1.0));
    }

    #[test]
    fn repeated_solves_are_bit_identical() {
        let sc = scenario(8, 4, 2);
        let mut solver = ShardSolver::new(quick_config());
        let a = solver.solve(&sc).unwrap();
        let b = solver.solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let sc = scenario(4, 2, 2);
        assert!(Partition::build(&sc, 0, 0).is_err());
        assert!(quick_config().with_cluster_size(0).validate().is_err());
        assert!(quick_config().with_max_sweeps(0).validate().is_err());
        assert!(quick_config().with_descent_budget(0).validate().is_err());
        assert!(quick_config()
            .with_stale_threshold(-1.0)
            .validate()
            .is_err());
        assert!(quick_config()
            .with_stale_threshold(f64::NAN)
            .validate()
            .is_err());
        assert!(quick_config().with_warm_budget(0).validate().is_err());
        assert!(quick_config()
            .with_warm_halo_threshold(-0.1)
            .validate()
            .is_err());
        let mut solver = ShardSolver::new(quick_config().with_max_sweeps(0));
        assert!(solver.solve(&sc).is_err());
    }

    #[test]
    fn both_reconcilers_converge_and_pass_the_audit() {
        let sc = scenario(12, 4, 2);
        for mode in [Reconcile::Sequential, Reconcile::Pipelined] {
            let out = solve_sharded(&sc, &quick_config().with_reconcile(mode), 1).unwrap();
            out.assignment.verify_feasible(&sc).unwrap();
            assert!(out.converged, "{mode:?} must reach a fixed point");
            assert!(out.objective > 0.0);
            assert!(
                out.halo_residual <= 1e-9,
                "{mode:?} residual {}",
                out.halo_residual
            );
            assert_eq!(
                out.sweep_residual, 0.0,
                "{mode:?}: the last sweep of a converged run publishes no delta"
            );
        }
    }

    #[test]
    fn pipelined_is_bit_identical_across_worker_counts() {
        let sc = scenario(14, 6, 2);
        for seed in [11u64, 23, 47] {
            let cfg = quick_config()
                .with_seed(seed)
                .with_reconcile(Reconcile::Pipelined);
            let base = solve_sharded(&sc, &cfg, 1).unwrap();
            for workers in [2usize, 8] {
                let other = solve_sharded(&sc, &cfg, workers).unwrap();
                assert_eq!(base.assignment, other.assignment, "seed {seed}");
                assert_eq!(base.objective.to_bits(), other.objective.to_bits());
                assert_eq!(base.proposals, other.proposals);
                assert_eq!(base.sweeps, other.sweeps);
            }
        }
    }

    #[test]
    fn warm_from_empty_previous_is_bit_identical_to_cold() {
        let sc = scenario(12, 4, 2);
        for mode in [Reconcile::Sequential, Reconcile::Pipelined] {
            let cfg = quick_config().with_seed(23).with_reconcile(mode);
            let cold = solve_sharded(&sc, &cfg, 2).unwrap();
            let empty = ShardOutcome::empty(&sc, &cfg).unwrap();
            let map = vec![None; sc.num_users()];
            let warm = resolve_sharded(&sc, &cfg, 2, &empty, &map).unwrap();
            assert_eq!(cold.assignment, warm.assignment, "{mode:?}");
            assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
            assert_eq!(cold.proposals, warm.proposals);
            assert_eq!(cold.sweeps, warm.sweeps);
            assert_eq!(warm.reused_clusters, 0);
            assert_eq!(warm.resolved_clusters, cold.resolved_clusters);
        }
    }

    #[test]
    fn warm_resolve_patches_churn_and_reuses_clean_clusters() {
        let sc = scenario(16, 4, 2);
        let cfg = quick_config().with_seed(7).with_warm_halo_threshold(0.5);
        let prior = solve_sharded(&sc, &cfg, 1).unwrap();
        // Identity churn: every user survives. With a loose halo gate all
        // clusters come back clean and the fixed point must hold.
        let identity: Vec<Option<UserId>> =
            (0..sc.num_users()).map(|v| Some(UserId::new(v))).collect();
        let resolved = resolve_sharded(&sc, &cfg, 1, &prior, &identity).unwrap();
        resolved.assignment.verify_feasible(&sc).unwrap();
        assert_eq!(
            resolved.reused_clusters, resolved.clusters,
            "identity churn must reuse every cluster"
        );
        assert_eq!(resolved.resolved_clusters, 0);
        assert_eq!(resolved.assignment, prior.assignment);
        assert!(resolved.proposals < prior.proposals);
        // 25% churn: survivors keep slots, the decision stays feasible
        // and at least as good as a fixed point of the same engine.
        let churned: Vec<Option<UserId>> = (0..sc.num_users())
            .map(|v| {
                if v % 4 == 0 {
                    None
                } else {
                    Some(UserId::new(v))
                }
            })
            .collect();
        let warm = resolve_sharded(&sc, &cfg, 1, &prior, &churned).unwrap();
        warm.assignment.verify_feasible(&sc).unwrap();
        assert!(warm.objective > 0.0);
        assert!(
            warm.halo_residual <= 1e-9,
            "residual {}",
            warm.halo_residual
        );
    }

    #[test]
    fn warm_resolve_is_bit_identical_across_worker_counts() {
        let sc = scenario(16, 4, 2);
        let cfg = quick_config().with_seed(31);
        let prior = solve_sharded(&sc, &cfg, 1).unwrap();
        let churned: Vec<Option<UserId>> = (0..sc.num_users())
            .map(|v| {
                if v % 5 == 0 {
                    None
                } else {
                    Some(UserId::new(v))
                }
            })
            .collect();
        let base = resolve_sharded(&sc, &cfg, 1, &prior, &churned).unwrap();
        for workers in [2usize, 8] {
            let other = resolve_sharded(&sc, &cfg, workers, &prior, &churned).unwrap();
            assert_eq!(base.assignment, other.assignment, "workers {workers}");
            assert_eq!(base.objective.to_bits(), other.objective.to_bits());
            assert_eq!(base.proposals, other.proposals);
        }
    }

    #[test]
    fn warm_rejects_mismatched_shapes() {
        let sc = scenario(8, 4, 2);
        let cfg = quick_config();
        let prior = solve_sharded(&sc, &cfg, 1).unwrap();
        // Map shorter than the population.
        assert!(ShardRun::warm(&sc, cfg, 1, &prior, &[None]).is_err());
        // Previous outcome from a different geometry.
        let other = scenario(8, 5, 2);
        let map = vec![None; other.num_users()];
        assert!(ShardRun::warm(&other, cfg, 1, &prior, &map).is_err());
    }

    #[test]
    fn finish_fast_tracks_the_audited_objective() {
        let sc = scenario(14, 4, 2);
        let cfg = quick_config().with_seed(3);
        let audited = solve_sharded(&sc, &cfg, 1).unwrap();
        let mut run = ShardRun::new(&sc, cfg, 1).unwrap();
        while run.sweeps() < cfg.max_sweeps {
            if !run.sweep().unwrap() {
                break;
            }
        }
        let fast = run.finish_fast();
        assert_eq!(fast.assignment, audited.assignment);
        // The per-cluster sum lags the audited monolithic resync by at
        // most the accounting tolerance once converged.
        let gap = (fast.objective - audited.objective).abs() / audited.objective.abs().max(1.0);
        assert!(
            gap <= 1e-6,
            "fast {} vs audited {}",
            fast.objective,
            audited.objective
        );
        assert_eq!(fast.converged, audited.converged);
        assert_eq!(
            fast.sweep_residual.to_bits(),
            audited.sweep_residual.to_bits(),
            "both finishes report the same cheap per-sweep residual"
        );
        if fast.converged {
            assert_eq!(fast.sweep_residual, 0.0);
        }
        assert_eq!(fast.halo, audited.halo);
    }

    #[test]
    fn rebuild_users_preserves_server_clusters() {
        let sc = scenario(12, 5, 2);
        let p = Partition::build(&sc, 2, 9).unwrap();
        let rebuilt = p.rebuild_users(&sc).unwrap();
        assert_eq!(p, rebuilt, "same scenario ⇒ identical partition");
        let other = scenario(20, 5, 2);
        let carried = p.rebuild_users(&other).unwrap();
        assert_eq!(carried.num_clusters(), p.num_clusters());
        for s in other.server_ids() {
            assert_eq!(carried.cluster_of_server(s), p.cluster_of_server(s));
        }
        let mismatched = scenario(12, 4, 2);
        assert!(p.rebuild_users(&mismatched).is_err());
    }

    #[test]
    fn empty_outcome_matches_the_cold_partition() {
        let sc = scenario(10, 4, 2);
        let cfg = quick_config().with_seed(23);
        let empty = ShardOutcome::empty(&sc, &cfg).unwrap();
        assert_eq!(empty.assignment.num_users(), 0);
        assert_eq!(empty.halo.len(), sc.num_subchannels() * sc.num_servers());
        assert!(empty.halo.iter().all(|&h| h == 0.0));
        let cold = Partition::build(&sc, cfg.cluster_size, cfg.seed).unwrap();
        assert_eq!(empty.partition, cold);
    }
}
