//! The [`Solver`] wrapper around the TTSA loop.

use crate::annealing::{anneal, anneal_from, AnnealOutcome};
use crate::config::{SearchStrategy, TtsaConfig};
use crate::moves::{MoveMix, NeighborhoodKernel};
use crate::tempering::{temper, temper_from};
use crate::trace::SearchTrace;
use mec_system::{Assignment, Scenario, Solution, Solver, SolverStats};
use mec_types::{effective_parallelism, Error};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The TSAJS scheduler: TTSA task offloading + KKT resource allocation.
///
/// The [`SearchStrategy`] selects the engine behind `solve`: the paper's
/// single chain (default), independent multi-start chains, or the
/// cooperative parallel-tempering ladder. All three are deterministic
/// under the configured seed, at any worker-thread count.
///
/// Implements [`Solver`]; repeated `solve` calls advance the internal RNG,
/// so solving the same scenario twice explores different trajectories
/// (construct a fresh solver for bit-identical reruns).
#[derive(Debug, Clone)]
pub struct TsajsSolver {
    config: TtsaConfig,
    kernel: NeighborhoodKernel,
    rng: StdRng,
    strategy: SearchStrategy,
    threads: Option<usize>,
    last_trace: Option<SearchTrace>,
}

impl TsajsSolver {
    /// Creates a solver from a configuration (seeded by `config.seed`).
    pub fn new(config: TtsaConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(config.seed),
            kernel: NeighborhoodKernel::new(),
            config,
            strategy: SearchStrategy::SingleChain,
            threads: None,
            last_trace: None,
        }
    }

    /// Creates a solver with the paper's defaults and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(TtsaConfig::paper_default().with_seed(seed))
    }

    /// Replaces the neighborhood move mix (ablation hook).
    pub fn with_move_mix(mut self, mix: MoveMix) -> Self {
        self.kernel = NeighborhoodKernel::with_mix(mix);
        self
    }

    /// Selects the search strategy driving `solve`.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs `restarts` independent annealing chains per `solve` (each with
    /// its own derived seed) in parallel threads and keeps the best — the
    /// classic multi-start hedge against a single chain freezing in a
    /// local optimum. `1` is the paper's single chain. Sugar for
    /// [`with_strategy`](Self::with_strategy).
    ///
    /// # Panics
    ///
    /// Panics if `restarts` is zero.
    pub fn with_restarts(self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one annealing chain");
        self.with_strategy(if restarts == 1 {
            SearchStrategy::SingleChain
        } else {
            SearchStrategy::MultiStart { restarts }
        })
    }

    /// Selects the parallel-tempering engine. Sugar for
    /// [`with_strategy`](Self::with_strategy).
    pub fn with_tempering(self, tempering: crate::config::TemperingConfig) -> Self {
        self.with_strategy(SearchStrategy::Tempering(tempering))
    }

    /// Caps the worker threads used by the multi-start and tempering
    /// engines. Without an explicit cap, `TSAJS_THREADS` and then the
    /// hardware parallelism decide (see
    /// [`mec_types::effective_parallelism`]). Thread count never affects
    /// results, only wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &TtsaConfig {
        &self.config
    }

    /// The active search strategy.
    pub fn strategy(&self) -> &SearchStrategy {
        &self.strategy
    }

    /// The per-epoch trace of the most recent `solve`, when
    /// [`TtsaConfig::record_trace`] was set.
    pub fn last_trace(&self) -> Option<&SearchTrace> {
        self.last_trace.as_ref()
    }

    /// Warm-started solve: continues from an explicit starting decision
    /// instead of a fresh initial solution — the entry point for periodic
    /// re-solves that inherit the previous epoch's schedule. Pair it with
    /// a refresh configuration (see
    /// [`ResolveMode::refresh_config`](crate::ResolveMode::refresh_config))
    /// to keep the refresh cheap. Runs a single chain, or — under
    /// [`SearchStrategy::Tempering`] — a shortened warm ladder seeded
    /// with `warm` on every rung; the multi-start setting applies only to
    /// cold solves.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an invalid configuration
    /// and [`Error::InfeasibleAssignment`] /
    /// [`Error::DimensionMismatch`]-class errors if `warm` does not fit
    /// the scenario's geometry.
    pub fn solve_from(&mut self, scenario: &Scenario, warm: Assignment) -> Result<Solution, Error> {
        self.config.validate()?;
        self.strategy.validate()?;
        warm.verify_feasible(scenario)?;
        let start = Instant::now();
        let outcome = match self.strategy {
            SearchStrategy::Tempering(tcfg) => {
                let workers = effective_parallelism(self.threads);
                temper_from(
                    scenario,
                    &tcfg,
                    &self.config,
                    &self.kernel,
                    &mut self.rng,
                    workers,
                    warm,
                )
            }
            _ => anneal_from(scenario, &self.config, &self.kernel, &mut self.rng, warm),
        };
        let elapsed = start.elapsed();
        self.last_trace = outcome.trace;
        Ok(Solution {
            assignment: outcome.assignment,
            utility: outcome.objective,
            stats: SolverStats {
                objective_evaluations: outcome.proposals + 1,
                iterations: outcome.proposals,
                elapsed,
            },
        })
    }

    /// The multi-start engine: independent chains with derived seeds,
    /// statically partitioned over a scoped worker pool. Each worker
    /// returns its `(chain index, outcome)` pairs through its join handle
    /// into indexed slots — no locks anywhere near the chain hot path —
    /// and the fold runs in chain order, so the result is identical at
    /// any worker count.
    fn solve_multi_start(&mut self, scenario: &Scenario, restarts: usize) -> AnnealOutcome {
        let seeds: Vec<u64> = (0..restarts).map(|_| self.rng.gen()).collect();
        let config = self.config;
        let kernel = self.kernel;
        let workers = effective_parallelism(self.threads).min(seeds.len());
        let mut outcomes: Vec<Option<AnnealOutcome>> = Vec::new();
        outcomes.resize_with(seeds.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let seeds = &seeds;
                    scope.spawn(move || {
                        // Worker w owns chains w, w+W, w+2W, …
                        let mut results = Vec::new();
                        let mut i = w;
                        while i < seeds.len() {
                            let mut rng = StdRng::seed_from_u64(seeds[i]);
                            results.push((i, anneal(scenario, &config, &kernel, &mut rng)));
                            i += workers;
                        }
                        results
                    })
                })
                .collect();
            for handle in handles {
                for (i, outcome) in handle.join().expect("chain worker panicked") {
                    outcomes[i] = Some(outcome);
                }
            }
        });
        // The best chain wins; ties break toward the lowest chain index.
        let mut best: Option<AnnealOutcome> = None;
        let mut total_proposals = 0;
        for outcome in outcomes.into_iter().map(|o| o.expect("chain ran")) {
            total_proposals += outcome.proposals;
            if best
                .as_ref()
                .is_none_or(|b| outcome.objective > b.objective)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.expect("at least one chain");
        best.proposals = total_proposals;
        best
    }
}

impl Solver for TsajsSolver {
    fn name(&self) -> &str {
        match self.strategy {
            SearchStrategy::Tempering(_) => "TSAJS-PT",
            _ => "TSAJS",
        }
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        self.config.validate()?;
        self.strategy.validate()?;
        let start = Instant::now();
        let (outcome, initial_solutions) = match self.strategy {
            SearchStrategy::SingleChain => (
                anneal(scenario, &self.config, &self.kernel, &mut self.rng),
                1u64,
            ),
            SearchStrategy::MultiStart { restarts } => {
                (self.solve_multi_start(scenario, restarts), restarts as u64)
            }
            SearchStrategy::Tempering(tcfg) => {
                let workers = effective_parallelism(self.threads);
                (
                    temper(
                        scenario,
                        &tcfg,
                        &self.config,
                        &self.kernel,
                        &mut self.rng,
                        workers,
                    ),
                    tcfg.replicas as u64,
                )
            }
        };
        let elapsed = start.elapsed();
        self.last_trace = outcome.trace;
        Ok(Solution {
            assignment: outcome.assignment,
            utility: outcome.objective,
            stats: SolverStats {
                // One evaluation per proposal plus the initial solution(s).
                objective_evaluations: outcome.proposals + initial_solutions,
                iterations: outcome.proposals,
                elapsed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cooling, TemperingConfig};
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Evaluator, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    fn scenario(users: usize) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(users, 2, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn quick() -> TtsaConfig {
        TtsaConfig::paper_default().with_min_temperature(1e-3)
    }

    #[test]
    fn solver_reports_consistent_utility() {
        let sc = scenario(4);
        let mut solver = TsajsSolver::new(quick().with_seed(1));
        let solution = solver.solve(&sc).unwrap();
        let recomputed = Evaluator::new(&sc).objective(&solution.assignment);
        assert!((solution.utility - recomputed).abs() < 1e-12);
        assert!(solution.stats.objective_evaluations > 0);
        assert_eq!(
            solution.stats.objective_evaluations,
            solution.stats.iterations + 1
        );
    }

    #[test]
    fn fresh_solvers_with_same_seed_agree() {
        let sc = scenario(5);
        let a = TsajsSolver::new(quick().with_seed(3)).solve(&sc).unwrap();
        let b = TsajsSolver::new(quick().with_seed(3)).solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
    }

    #[test]
    fn repeated_solves_advance_the_rng() {
        let sc = scenario(5);
        let mut solver = TsajsSolver::new(quick().with_seed(3));
        let first = solver.solve(&sc).unwrap();
        let second = solver.solve(&sc).unwrap();
        // Both runs are valid; they explored different trajectories (the
        // proposals differ with overwhelming probability, and utilities
        // stay within the same ballpark).
        assert!(first.utility > 0.0 && second.utility > 0.0);
    }

    #[test]
    fn trace_is_exposed_after_solve() {
        let sc = scenario(3);
        let mut solver = TsajsSolver::new(quick().with_seed(2).with_trace());
        assert!(solver.last_trace().is_none());
        let _ = solver.solve(&sc).unwrap();
        let trace = solver.last_trace().expect("trace recorded");
        assert!(!trace.is_empty());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let sc = scenario(2);
        let mut solver = TsajsSolver::new(quick().with_cooling(Cooling::Geometric { alpha: 1.5 }));
        assert!(solver.solve(&sc).is_err());
        let mut bad_strategy = TsajsSolver::new(quick()).with_strategy(SearchStrategy::Tempering(
            TemperingConfig::paper_default().with_replicas(0),
        ));
        assert!(bad_strategy.solve(&sc).is_err());
    }

    #[test]
    fn name_tracks_the_strategy() {
        assert_eq!(TsajsSolver::with_seed(0).name(), "TSAJS");
        assert_eq!(TsajsSolver::with_seed(0).with_restarts(4).name(), "TSAJS");
        assert_eq!(
            TsajsSolver::with_seed(0)
                .with_tempering(TemperingConfig::paper_default())
                .name(),
            "TSAJS-PT"
        );
    }

    #[test]
    fn multi_start_is_deterministic_and_never_worse_in_expectation() {
        let sc = scenario(8);
        let single = TsajsSolver::new(quick().with_seed(4)).solve(&sc).unwrap();
        let run_multi = |threads: usize| {
            TsajsSolver::new(quick().with_seed(4))
                .with_restarts(4)
                .with_threads(threads)
                .solve(&sc)
                .unwrap()
        };
        let a = run_multi(1);
        let b = run_multi(3);
        assert_eq!(
            a.assignment, b.assignment,
            "multi-start must be deterministic at any worker count"
        );
        assert_eq!(a.utility, b.utility);
        // Work is accounted across all chains.
        assert!(a.stats.iterations > single.stats.iterations);
        // The best-of-4 cannot be worse than its own single chains; as a
        // sanity proxy it should at least be feasible and non-negative.
        a.assignment.verify_feasible(&sc).unwrap();
        assert!(a.utility >= 0.0);
    }

    #[test]
    fn tempering_strategy_solves_and_is_thread_independent() {
        let sc = scenario(8);
        let tcfg = TemperingConfig::paper_default()
            .with_replicas(4)
            .with_rounds(5);
        let run = |threads: usize| {
            TsajsSolver::new(quick().with_seed(6))
                .with_tempering(tcfg)
                .with_threads(threads)
                .solve(&sc)
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
        assert_eq!(a.stats.iterations, b.stats.iterations);
        a.assignment.verify_feasible(&sc).unwrap();
        assert!(a.utility >= 0.0);
        let recomputed = Evaluator::new(&sc).objective(&a.assignment);
        assert!((a.utility - recomputed).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_restarts_panics() {
        let _ = TsajsSolver::with_seed(0).with_restarts(0);
    }

    #[test]
    fn warm_start_solve_is_deterministic_and_consistent() {
        use crate::config::ResolveMode;
        let sc = scenario(6);
        let warm = TsajsSolver::new(quick().with_seed(5))
            .solve(&sc)
            .unwrap()
            .assignment;
        let refresh = ResolveMode::warm(200).refresh_config(&quick());
        let run = || {
            TsajsSolver::new(refresh.with_seed(8))
                .solve_from(&sc, warm.clone())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
        // The refresh respects its budget (anytime mode stops at the end
        // of the epoch in which the cap is reached).
        assert!(a.stats.iterations <= 200 + refresh.inner_iterations as u64);
        let recomputed = Evaluator::new(&sc).objective(&a.assignment);
        assert!((a.utility - recomputed).abs() < 1e-12);
        a.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn tempered_warm_start_routes_through_the_short_ladder() {
        let sc = scenario(6);
        let warm = TsajsSolver::new(quick().with_seed(5))
            .solve(&sc)
            .unwrap()
            .assignment;
        let warm_obj = Evaluator::new(&sc).objective(&warm);
        let tcfg = TemperingConfig::paper_default().with_replicas(4);
        let refresh = quick()
            .with_proposal_budget(2_000)
            .with_initial_temperature(crate::config::InitialTemperature::Fixed(0.05));
        let run = |threads: usize| {
            TsajsSolver::new(refresh.with_seed(9))
                .with_tempering(tcfg)
                .with_threads(threads)
                .solve_from(&sc, warm.clone())
                .unwrap()
        };
        let a = run(1);
        let b = run(2);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
        // The budget-derived ladder stays within the anytime cap.
        assert!(a.stats.iterations <= 2_000);
        assert!(a.utility >= warm_obj - 1e-12);
        a.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn warm_start_rejects_mismatched_geometry_and_bad_configs() {
        let sc = scenario(4);
        let wrong_dims = Assignment::with_dims(3, 2, 2);
        assert!(TsajsSolver::new(quick().with_seed(0))
            .solve_from(&sc, wrong_dims)
            .is_err());
        let mut bad = TsajsSolver::new(quick().with_cooling(Cooling::Geometric { alpha: 1.5 }));
        assert!(bad.solve_from(&sc, Assignment::all_local(&sc)).is_err());
    }
}
