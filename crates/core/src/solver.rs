//! The [`Solver`] wrapper around the TTSA loop.

use crate::annealing::{anneal, anneal_from};
use crate::config::TtsaConfig;
use crate::moves::{MoveMix, NeighborhoodKernel};
use crate::trace::SearchTrace;
use mec_system::{Assignment, Scenario, Solution, Solver, SolverStats};
use mec_types::Error;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The TSAJS scheduler: TTSA task offloading + KKT resource allocation.
///
/// Implements [`Solver`]; repeated `solve` calls advance the internal RNG,
/// so solving the same scenario twice explores different trajectories
/// (construct a fresh solver for bit-identical reruns).
#[derive(Debug, Clone)]
pub struct TsajsSolver {
    config: TtsaConfig,
    kernel: NeighborhoodKernel,
    rng: StdRng,
    restarts: usize,
    last_trace: Option<SearchTrace>,
}

impl TsajsSolver {
    /// Creates a solver from a configuration (seeded by `config.seed`).
    pub fn new(config: TtsaConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(config.seed),
            kernel: NeighborhoodKernel::new(),
            config,
            restarts: 1,
            last_trace: None,
        }
    }

    /// Creates a solver with the paper's defaults and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(TtsaConfig::paper_default().with_seed(seed))
    }

    /// Replaces the neighborhood move mix (ablation hook).
    pub fn with_move_mix(mut self, mix: MoveMix) -> Self {
        self.kernel = NeighborhoodKernel::with_mix(mix);
        self
    }

    /// Runs `restarts` independent annealing chains per `solve` (each with
    /// its own derived seed) in parallel threads and keeps the best — the
    /// classic multi-start hedge against a single chain freezing in a
    /// local optimum. `1` (the default) is the paper's single chain.
    ///
    /// # Panics
    ///
    /// Panics if `restarts` is zero.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one annealing chain");
        self.restarts = restarts;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &TtsaConfig {
        &self.config
    }

    /// The per-epoch trace of the most recent `solve`, when
    /// [`TtsaConfig::record_trace`] was set.
    pub fn last_trace(&self) -> Option<&SearchTrace> {
        self.last_trace.as_ref()
    }

    /// Warm-started solve: anneals from an explicit starting decision
    /// instead of a fresh initial solution — the entry point for periodic
    /// re-solves that inherit the previous epoch's schedule. Pair it with
    /// a refresh configuration (see
    /// [`ResolveMode::refresh_config`](crate::ResolveMode::refresh_config))
    /// to keep the refresh cheap. Runs a single chain; the
    /// [`with_restarts`](Self::with_restarts) multi-start setting applies
    /// only to cold solves.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an invalid configuration
    /// and [`Error::InfeasibleAssignment`] /
    /// [`Error::DimensionMismatch`]-class errors if `warm` does not fit
    /// the scenario's geometry.
    pub fn solve_from(&mut self, scenario: &Scenario, warm: Assignment) -> Result<Solution, Error> {
        self.config.validate()?;
        warm.verify_feasible(scenario)?;
        let start = Instant::now();
        let outcome = anneal_from(scenario, &self.config, &self.kernel, &mut self.rng, warm);
        let elapsed = start.elapsed();
        self.last_trace = outcome.trace;
        Ok(Solution {
            assignment: outcome.assignment,
            utility: outcome.objective,
            stats: SolverStats {
                objective_evaluations: outcome.proposals + 1,
                iterations: outcome.proposals,
                elapsed,
            },
        })
    }
}

impl Solver for TsajsSolver {
    fn name(&self) -> &str {
        "TSAJS"
    }

    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
        self.config.validate()?;
        let start = Instant::now();
        let outcome = if self.restarts == 1 {
            anneal(scenario, &self.config, &self.kernel, &mut self.rng)
        } else {
            // Derive one independent seed per chain from this solver's RNG
            // stream, then run the chains in parallel. The best chain wins;
            // ties break toward the lowest chain index for determinism.
            use rand::Rng;
            let seeds: Vec<u64> = (0..self.restarts).map(|_| self.rng.gen()).collect();
            let config = self.config;
            let kernel = self.kernel;
            let mut outcomes: Vec<Option<crate::annealing::AnnealOutcome>> = Vec::new();
            outcomes.resize_with(seeds.len(), || None);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let outcomes_mutex = std::sync::Mutex::new(&mut outcomes);
            std::thread::scope(|scope| {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(seeds.len());
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= seeds.len() {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(seeds[i]);
                        let outcome = anneal(scenario, &config, &kernel, &mut rng);
                        let mut guard = outcomes_mutex.lock().expect("no poisoned chains");
                        guard[i] = Some(outcome);
                    });
                }
            });
            let mut best: Option<crate::annealing::AnnealOutcome> = None;
            let mut total_proposals = 0;
            for outcome in outcomes.into_iter().map(|o| o.expect("chain ran")) {
                total_proposals += outcome.proposals;
                if best
                    .as_ref()
                    .is_none_or(|b| outcome.objective > b.objective)
                {
                    best = Some(outcome);
                }
            }
            let mut best = best.expect("at least one chain");
            best.proposals = total_proposals;
            best
        };
        let elapsed = start.elapsed();
        self.last_trace = outcome.trace;
        Ok(Solution {
            assignment: outcome.assignment,
            utility: outcome.objective,
            stats: SolverStats {
                // One evaluation per proposal plus the initial solution(s).
                objective_evaluations: outcome.proposals + self.restarts as u64,
                iterations: outcome.proposals,
                elapsed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Cooling;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Evaluator, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    fn scenario(users: usize) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(users, 2, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn quick() -> TtsaConfig {
        TtsaConfig::paper_default().with_min_temperature(1e-3)
    }

    #[test]
    fn solver_reports_consistent_utility() {
        let sc = scenario(4);
        let mut solver = TsajsSolver::new(quick().with_seed(1));
        let solution = solver.solve(&sc).unwrap();
        let recomputed = Evaluator::new(&sc).objective(&solution.assignment);
        assert!((solution.utility - recomputed).abs() < 1e-12);
        assert!(solution.stats.objective_evaluations > 0);
        assert_eq!(
            solution.stats.objective_evaluations,
            solution.stats.iterations + 1
        );
    }

    #[test]
    fn fresh_solvers_with_same_seed_agree() {
        let sc = scenario(5);
        let a = TsajsSolver::new(quick().with_seed(3)).solve(&sc).unwrap();
        let b = TsajsSolver::new(quick().with_seed(3)).solve(&sc).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
    }

    #[test]
    fn repeated_solves_advance_the_rng() {
        let sc = scenario(5);
        let mut solver = TsajsSolver::new(quick().with_seed(3));
        let first = solver.solve(&sc).unwrap();
        let second = solver.solve(&sc).unwrap();
        // Both runs are valid; they explored different trajectories (the
        // proposals differ with overwhelming probability, and utilities
        // stay within the same ballpark).
        assert!(first.utility > 0.0 && second.utility > 0.0);
    }

    #[test]
    fn trace_is_exposed_after_solve() {
        let sc = scenario(3);
        let mut solver = TsajsSolver::new(quick().with_seed(2).with_trace());
        assert!(solver.last_trace().is_none());
        let _ = solver.solve(&sc).unwrap();
        let trace = solver.last_trace().expect("trace recorded");
        assert!(!trace.is_empty());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let sc = scenario(2);
        let mut solver = TsajsSolver::new(quick().with_cooling(Cooling::Geometric { alpha: 1.5 }));
        assert!(solver.solve(&sc).is_err());
    }

    #[test]
    fn name_is_tsajs() {
        assert_eq!(TsajsSolver::with_seed(0).name(), "TSAJS");
    }

    #[test]
    fn multi_start_is_deterministic_and_never_worse_in_expectation() {
        let sc = scenario(8);
        let single = TsajsSolver::new(quick().with_seed(4)).solve(&sc).unwrap();
        let run_multi = || {
            TsajsSolver::new(quick().with_seed(4))
                .with_restarts(4)
                .solve(&sc)
                .unwrap()
        };
        let a = run_multi();
        let b = run_multi();
        assert_eq!(
            a.assignment, b.assignment,
            "multi-start must be deterministic"
        );
        assert_eq!(a.utility, b.utility);
        // Work is accounted across all chains.
        assert!(a.stats.iterations > single.stats.iterations);
        // The best-of-4 cannot be worse than its own single chains; as a
        // sanity proxy it should at least be feasible and non-negative.
        a.assignment.verify_feasible(&sc).unwrap();
        assert!(a.utility >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_restarts_panics() {
        let _ = TsajsSolver::with_seed(0).with_restarts(0);
    }

    #[test]
    fn warm_start_solve_is_deterministic_and_consistent() {
        use crate::config::ResolveMode;
        let sc = scenario(6);
        let warm = TsajsSolver::new(quick().with_seed(5))
            .solve(&sc)
            .unwrap()
            .assignment;
        let refresh = ResolveMode::warm(200).refresh_config(&quick());
        let run = || {
            TsajsSolver::new(refresh.with_seed(8))
                .solve_from(&sc, warm.clone())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility, b.utility);
        // The refresh respects its budget (anytime mode stops at the end
        // of the epoch in which the cap is reached).
        assert!(a.stats.iterations <= 200 + refresh.inner_iterations as u64);
        let recomputed = Evaluator::new(&sc).objective(&a.assignment);
        assert!((a.utility - recomputed).abs() < 1e-12);
        a.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn warm_start_rejects_mismatched_geometry_and_bad_configs() {
        let sc = scenario(4);
        let wrong_dims = Assignment::with_dims(3, 2, 2);
        assert!(TsajsSolver::new(quick().with_seed(0))
            .solve_from(&sc, wrong_dims)
            .is_err());
        let mut bad = TsajsSolver::new(quick().with_cooling(Cooling::Geometric { alpha: 1.5 }));
        assert!(bad.solve_from(&sc, Assignment::all_local(&sc)).is_err());
    }
}
