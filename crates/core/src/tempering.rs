//! Parallel-tempering (replica-exchange) search on top of TTSA.
//!
//! [`temper`] runs `K` TTSA replicas on a geometric temperature ladder,
//! each on its own incremental-objective state, and periodically lets
//! neighboring rungs exchange states with the Metropolis probability
//! `min(1, exp(Δ(1/T)·ΔJ))` (for a maximized `J`, a hotter replica that
//! found a better schedule almost surely hands it down the ladder). The
//! ensemble runs a sharply shortened schedule — a fraction
//! ([`TemperingConfig::schedule_factor`]) of the single chain's epoch
//! count — because cooperation replaces the long low-temperature tail
//! that Algorithm 1 spends most of its proposals on. That is where the
//! wall-clock win comes from even on one core; worker threads only
//! spread the rounds wider.
//!
//! The epoch budget of a round is not split uniformly: rung epoch
//! shares grow geometrically toward the cold end
//! ([`TemperingConfig::cold_bias`]), so the hot rungs act as cheap
//! scouts feeding the exchange sweep while the cold rungs — the only
//! place where worsening moves are reliably rejected — do the actual
//! refinement. Elite migration re-seeds both ends of the ladder from
//! the global best after every sweep.
//!
//! ## Determinism
//!
//! Results are bit-identical for a given seed at any worker count:
//!
//! * each rung owns an RNG stream seeded from the solver RNG in rung
//!   order before any work starts, and only that rung's epochs consume
//!   it — the schedule of draws per rung is fixed by the configuration,
//!   not by thread interleaving;
//! * exchange decisions come from a dedicated ladder RNG, and every
//!   sweep draws exactly one uniform per adjacent pair (before deciding),
//!   so the ladder stream's length is fixed too;
//! * exchange sweeps and best-fold reductions run sequentially on the
//!   coordinator in rung order, between rounds.
//!
//! Worker threads therefore only change *when* a rung's round is
//! computed, never *what* it computes.

use crate::annealing::{
    apply_cooling, initial_solution, resolve_initial_temperature, resolve_max_count, run_epoch,
    AnnealOutcome, ChainState, EpochStats,
};
use crate::config::{Cooling, TemperingConfig, TtsaConfig};
use crate::moves::NeighborhoodKernel;
use crate::trace::{EpochRecord, SearchTrace};
use mec_system::{Assignment, IncrementalObjective, MoveDesc, Scenario};
use mec_types::{ServerId, SubchannelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc;

/// One rung of the ladder: its temperature schedule, its RNG stream, and
/// the chain state currently living there. Exchanges swap the *state*
/// between rungs; temperature, accepted-worse counter, and RNG stay put,
/// so each rung's stream is consumed on a fixed schedule.
struct Replica<'a> {
    state: ChainState<'a>,
    rng: StdRng,
    temperature: f64,
    round_stats: EpochStats,
}

impl Replica<'_> {
    /// Runs one exchange round: this rung's per-round epoch share at its
    /// (cooling) temperature.
    fn run_round(
        &mut self,
        scenario: &Scenario,
        base: &TtsaConfig,
        kernel: &NeighborhoodKernel,
        epochs: u64,
        max_count: u64,
    ) {
        let mut stats = EpochStats::default();
        for _ in 0..epochs {
            let s = run_epoch(
                scenario,
                base,
                kernel,
                self.temperature,
                &mut self.state,
                &mut self.rng,
            );
            stats.accepted_worse += s.accepted_worse;
            stats.accepted_better += s.accepted_better;
            apply_cooling(
                base.cooling,
                max_count,
                &mut self.temperature,
                &mut self.state.count,
            );
        }
        self.round_stats = stats;
    }
}

/// Per-round epoch share of each rung (index 0 coldest): proportional
/// to `cold_bias^(K−1−i)`, normalized so one round spends `K·E` epochs
/// in total, with every rung guaranteed at least one epoch. With
/// `cold_bias = 1` this is the uniform split `E` everywhere.
fn rung_epochs(tcfg: &TemperingConfig) -> Vec<u64> {
    let k = tcfg.replicas;
    let total = (k as u64 * tcfg.exchange_interval) as f64;
    let weights: Vec<f64> = (0..k)
        .map(|i| tcfg.cold_bias.powi((k - 1 - i) as i32))
        .collect();
    let norm: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| ((total * w / norm).round() as u64).max(1))
        .collect()
}

/// How many exchange rounds the ensemble runs: an explicit override, a
/// budget-derived count when the base config carries an anytime proposal
/// budget (the warm-refresh path), or the `schedule_factor` fraction of
/// the single chain's estimated epoch count.
fn planned_rounds(tcfg: &TemperingConfig, base: &TtsaConfig, scenario: &Scenario) -> u64 {
    if let Some(rounds) = tcfg.rounds {
        return rounds;
    }
    let l = base.inner_iterations as u64;
    let epochs_per_round: u64 = rung_epochs(tcfg).iter().sum();
    let per_round = epochs_per_round * l;
    if let Some(budget) = base.proposal_budget {
        // Anytime mode: fit whole rounds plus the quench under the cap.
        let usable = budget.saturating_sub(tcfg.quench_epochs * l);
        return (usable / per_round).max(1);
    }
    // Upper-bound the single chain's epoch count by its slow rate (the
    // threshold trigger only shortens it) and grant the ensemble a
    // fraction of that.
    let t0 = resolve_initial_temperature(base, scenario);
    let alpha = match base.cooling {
        Cooling::ThresholdTriggered { alpha_slow, .. } => alpha_slow,
        Cooling::Geometric { alpha } => alpha,
    };
    let epochs_est = ((base.min_temperature / t0).ln() / alpha.ln())
        .ceil()
        .max(1.0);
    let total_epochs = (epochs_est * tcfg.schedule_factor).ceil() as u64;
    (total_epochs / epochs_per_round).max(1)
}

/// Runs parallel tempering from freshly generated initial solutions (one
/// per replica, drawn from each rung's own stream).
///
/// `workers` is the worker-thread cap (resolve it with
/// [`mec_types::effective_parallelism`]); it never affects the result,
/// only wall-clock time.
///
/// # Panics
///
/// Panics if `base` or `tempering` fail validation.
pub fn temper<R: Rng + ?Sized>(
    scenario: &Scenario,
    tempering: &TemperingConfig,
    base: &TtsaConfig,
    kernel: &NeighborhoodKernel,
    rng: &mut R,
    workers: usize,
) -> AnnealOutcome {
    run(scenario, tempering, base, kernel, rng, workers, None)
}

/// [`temper`] with an explicit starting decision: every replica starts
/// from `warm`, and the rung temperatures anchor at the base config's
/// initial temperature — with [`ResolveMode::refresh_config`] that is the
/// fixed refresh temperature, giving the online engine its shortened
/// warm ladder.
///
/// # Panics
///
/// As [`temper`]; additionally if `warm` does not fit the scenario's
/// geometry.
///
/// [`ResolveMode::refresh_config`]: crate::config::ResolveMode::refresh_config
pub fn temper_from<R: Rng + ?Sized>(
    scenario: &Scenario,
    tempering: &TemperingConfig,
    base: &TtsaConfig,
    kernel: &NeighborhoodKernel,
    rng: &mut R,
    workers: usize,
    warm: Assignment,
) -> AnnealOutcome {
    run(scenario, tempering, base, kernel, rng, workers, Some(warm))
}

/// The coordinator's sequential between-rounds step: fold rung bests
/// into the global best, run the Metropolis exchange sweep, migrate the
/// elite, and append the round's trace record. Runs in rung order on one
/// thread, so it is identical at any worker count.
fn coordinate_round<'a>(
    replicas: &mut [Option<Replica<'a>>],
    tcfg: &TemperingConfig,
    ladder_rng: &mut StdRng,
    best: &mut Assignment,
    best_obj: &mut f64,
    trace: Option<&mut SearchTrace>,
) {
    let k = replicas.len();

    // Fold rung bests into the global best, in rung order.
    for slot in replicas.iter() {
        let rep = slot.as_ref().expect("replica slot filled");
        if rep.state.best_obj > *best_obj {
            best.clone_from(&rep.state.best);
            *best_obj = rep.state.best_obj;
        }
    }

    // Exchange sweep, cold-to-hot over adjacent rungs. One uniform is
    // always drawn per pair so the ladder stream's length is independent
    // of the outcomes.
    let mut swaps_accepted: u32 = 0;
    for i in 0..k - 1 {
        let u: f64 = ladder_rng.gen();
        let (cold_half, hot_half) = replicas.split_at_mut(i + 1);
        let cold = cold_half[i].as_mut().expect("replica slot filled");
        let hot = hot_half[0].as_mut().expect("replica slot filled");
        let dbeta = 1.0 / cold.temperature - 1.0 / hot.temperature;
        let delta = dbeta * (hot.state.current_obj - cold.state.current_obj);
        if !delta.is_nan() && (delta >= 0.0 || delta.exp() > u) {
            std::mem::swap(&mut cold.state.inc, &mut hot.state.inc);
            std::mem::swap(&mut cold.state.current_obj, &mut hot.state.current_obj);
            std::mem::swap(&mut cold.state.last_resync, &mut hot.state.last_resync);
            std::mem::swap(&mut cold.state.proposals, &mut hot.state.proposals);
            swaps_accepted += 1;
        }
    }

    // Elite migration, both ends of the ladder: the hottest rung restarts
    // its exploration orbit from the global best, and the coldest rung —
    // where worsening moves are all but rejected — keeps refining the
    // incumbent instead of whatever backwater its own walk drifted into.
    if tcfg.elite_migration && best_obj.is_finite() {
        for end in [k - 1, 0] {
            let rep = replicas[end].as_mut().expect("replica slot filled");
            if *best_obj > rep.state.current_obj {
                rep.state
                    .inc
                    .replace_assignment(best)
                    .expect("global best is feasible");
                rep.state.current_obj = rep.state.inc.current();
                rep.state.last_resync = rep.state.proposals;
            }
        }
    }

    if let Some(trace) = trace {
        let mut worse = 0;
        let mut better = 0;
        for slot in replicas.iter() {
            let rep = slot.as_ref().expect("replica slot filled");
            worse += rep.round_stats.accepted_worse;
            better += rep.round_stats.accepted_better;
        }
        let coldest = replicas[0].as_ref().expect("replica slot filled");
        trace.epochs.push(EpochRecord {
            temperature: coldest.temperature,
            current_objective: coldest.state.current_obj,
            best_objective: *best_obj,
            accepted_worse: worse,
            accepted_better: better,
            trigger_fired: swaps_accepted > 0,
        });
    }
}

fn run<'a, R: Rng + ?Sized>(
    scenario: &'a Scenario,
    tcfg: &TemperingConfig,
    base: &TtsaConfig,
    kernel: &NeighborhoodKernel,
    rng: &mut R,
    workers: usize,
    warm: Option<Assignment>,
) -> AnnealOutcome {
    base.validate()
        .expect("TtsaConfig must be valid; call validate() first");
    tcfg.validate()
        .expect("TemperingConfig must be valid; call validate() first");

    let k = tcfg.replicas;
    // Fixed seeding order, all from the caller's stream: K rung streams,
    // then the ladder stream. The quench is deterministic and draws
    // nothing.
    let rung_seeds: Vec<u64> = (0..k).map(|_| rng.gen()).collect();
    let mut ladder_rng = StdRng::seed_from_u64(rng.gen());

    let t0 = resolve_initial_temperature(base, scenario);
    let max_count = resolve_max_count(base);
    let rounds = planned_rounds(tcfg, base, scenario);
    let epochs_by_rung = rung_epochs(tcfg);

    // Rung k−1 is the hottest (the paper's T₀); colder rungs divide by
    // the ladder ratio.
    let mut replicas: Vec<Option<Replica<'_>>> = rung_seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let mut rung_rng = StdRng::seed_from_u64(seed);
            let initial = match &warm {
                Some(w) => w.clone(),
                None => initial_solution(scenario, base.initial_solution, &mut rung_rng),
            };
            Some(Replica {
                state: ChainState::from_initial(scenario, initial, base.batch_width),
                rng: rung_rng,
                temperature: t0 / tcfg.ladder_ratio.powi((k - 1 - i) as i32),
                round_stats: EpochStats::default(),
            })
        })
        .collect();

    let mut best = replicas[0]
        .as_ref()
        .expect("replica slot filled")
        .state
        .best
        .clone();
    let mut best_obj = f64::NEG_INFINITY;
    let mut trace = base.record_trace.then(SearchTrace::default);
    let worker_count = workers.max(1).min(k);

    if worker_count <= 1 {
        // Inline path: same computation, no pool.
        for _ in 0..rounds {
            for (i, slot) in replicas.iter_mut().enumerate() {
                let rep = slot.as_mut().expect("replica slot filled");
                rep.run_round(scenario, base, kernel, epochs_by_rung[i], max_count);
            }
            coordinate_round(
                &mut replicas,
                tcfg,
                &mut ladder_rng,
                &mut best,
                &mut best_obj,
                trace.as_mut(),
            );
        }
    } else {
        // Persistent scoped worker pool: one thread per worker for the
        // whole solve, fed whole-round batches over channels and drained
        // back into indexed rung slots (no locks anywhere). Each rung is
        // pinned to the worker `rung % worker_count`, so the partition is
        // static and the computation per rung depends only on its own
        // state and stream.
        type Batch<'b> = Vec<(usize, Replica<'b>)>;
        std::thread::scope(|scope| {
            let mut job_txs = Vec::with_capacity(worker_count);
            let mut res_rxs = Vec::with_capacity(worker_count);
            for _ in 0..worker_count {
                let (job_tx, job_rx) = mpsc::channel::<Batch<'a>>();
                let (res_tx, res_rx) = mpsc::channel::<Batch<'a>>();
                let epochs_by_rung = &epochs_by_rung;
                scope.spawn(move || {
                    while let Ok(mut batch) = job_rx.recv() {
                        for (i, rep) in batch.iter_mut() {
                            rep.run_round(scenario, base, kernel, epochs_by_rung[*i], max_count);
                        }
                        if res_tx.send(batch).is_err() {
                            break;
                        }
                    }
                });
                job_txs.push(job_tx);
                res_rxs.push(res_rx);
            }

            for _ in 0..rounds {
                let mut batches: Vec<Batch<'a>> = (0..worker_count)
                    .map(|_| Vec::with_capacity(k / worker_count + 1))
                    .collect();
                for (i, slot) in replicas.iter_mut().enumerate() {
                    let rep = slot.take().expect("replica slot filled");
                    batches[i % worker_count].push((i, rep));
                }
                for (w, batch) in batches.into_iter().enumerate() {
                    job_txs[w].send(batch).expect("worker alive");
                }
                for res_rx in &res_rxs {
                    for (i, rep) in res_rx.recv().expect("worker alive") {
                        replicas[i] = Some(rep);
                    }
                }
                coordinate_round(
                    &mut replicas,
                    tcfg,
                    &mut ladder_rng,
                    &mut best,
                    &mut best_obj,
                    trace.as_mut(),
                );
            }

            drop(job_txs); // Disconnect: workers drain and exit.
        });
    }

    // Account the ensemble's work.
    let mut proposals: u64 = 0;
    for slot in &replicas {
        proposals += slot.as_ref().expect("replica slot filled").state.proposals;
    }
    let mut epochs = rounds * epochs_by_rung.iter().sum::<u64>();

    // Systematic quench: deterministic first-improvement descent over
    // every single-user relocation (back to local, onto any slot —
    // evicting its occupant when taken), repeated until a local optimum
    // or the quench budget runs out. This replaces the single chain's
    // long low-temperature tail: where random proposals mostly re-draw
    // rejected moves, the sweep finds every remaining single-move
    // improvement in one pass and stops as soon as none is left.
    if tcfg.quench_epochs > 0 && best_obj.is_finite() && best_obj >= 0.0 {
        let l = base.inner_iterations as u64;
        let budget = tcfg.quench_epochs * l;
        let mut inc =
            IncrementalObjective::new(scenario, best.clone()).expect("global best is feasible");
        let mut current = inc.current();
        let mut spent: u64 = 0;
        let mut improved = true;
        let n = scenario.num_subchannels();
        let total_slots = scenario.num_servers() * n;
        let slot = |p: usize| (ServerId::new(p / n), SubchannelId::new(p % n));
        'quench: while improved && spent < budget {
            improved = false;
            // Phase 1: every single-user relocation — back to local, or
            // onto any slot (evicting its occupant when taken). This
            // also covers local↔offloaded exchanges, since the evictee
            // falls back to local execution.
            for u in scenario.user_ids() {
                let slots = scenario.server_ids().flat_map(|s| {
                    SubchannelId::all(scenario.num_subchannels()).map(move |j| Some((s, j)))
                });
                for target in std::iter::once(None).chain(slots) {
                    if spent >= budget {
                        break 'quench;
                    }
                    let mv = match target {
                        None => MoveDesc::relocate(inc.assignment(), u, None),
                        Some((s, j)) => MoveDesc::relocate_evicting(inc.assignment(), u, s, j),
                    };
                    if mv.is_noop() {
                        continue;
                    }
                    // Speculative scoring: rejected candidates (the vast
                    // majority near a local optimum) never touch the
                    // state, so they cost no journaling and no undo.
                    let candidate = inc.score(&mv);
                    spent += 1;
                    if candidate > current {
                        inc.apply(&mv);
                        inc.commit();
                        current = candidate;
                        improved = true;
                    }
                }
            }
            // Phase 2: pairwise slot exchanges between offloaded users
            // (the one move class single relocations cannot express).
            // At most S·N slots are occupied, so this adds O((S·N)²)
            // proposals per sweep, far below the relocation phase.
            for p in 0..total_slots {
                for q in (p + 1)..total_slots {
                    if spent >= budget {
                        break 'quench;
                    }
                    let (s1, j1) = slot(p);
                    let (s2, j2) = slot(q);
                    let (Some(a), Some(b)) = (
                        inc.assignment().occupant(s1, j1),
                        inc.assignment().occupant(s2, j2),
                    ) else {
                        continue;
                    };
                    let mv = MoveDesc::swap(inc.assignment(), a, b);
                    if mv.is_noop() {
                        continue;
                    }
                    let candidate = inc.score(&mv);
                    spent += 1;
                    if candidate > current {
                        inc.apply(&mv);
                        inc.commit();
                        current = candidate;
                        improved = true;
                    }
                }
            }
        }
        proposals += spent;
        epochs += spent.div_ceil(l);
        if current > best_obj {
            best = inc.into_assignment();
            best_obj = current;
        }
    }

    // The all-local decision (J = 0) is always feasible; never return a
    // worse-than-doing-nothing schedule.
    if best_obj < 0.0 {
        best = Assignment::all_local(scenario);
        best_obj = 0.0;
    }

    AnnealOutcome {
        assignment: best,
        objective: best_obj,
        proposals,
        epochs,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_system::{Evaluator, UserSpec};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    fn scenario(users: usize, servers: usize, subchannels: usize, gain: f64) -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
            ChannelGains::uniform(users, servers, subchannels, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn quick_tempering() -> TemperingConfig {
        TemperingConfig::paper_default()
            .with_replicas(4)
            .with_rounds(6)
    }

    #[test]
    fn finds_positive_utility_and_is_feasible() {
        let sc = scenario(6, 3, 2, 1e-10);
        let base = TtsaConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let out = temper(
            &sc,
            &quick_tempering(),
            &base,
            &NeighborhoodKernel::new(),
            &mut rng,
            1,
        );
        assert!(out.objective > 0.0, "got {}", out.objective);
        out.assignment.verify_feasible(&sc).unwrap();
        assert!(out.proposals > 0);
        // Re-evaluating the returned schedule reproduces the utility.
        let fresh = Evaluator::new(&sc).objective(&out.assignment);
        assert!((fresh - out.objective).abs() <= 1e-9 * fresh.abs().max(1.0));
    }

    #[test]
    fn identical_at_any_worker_count() {
        let sc = scenario(8, 3, 3, 1e-10);
        let base = TtsaConfig::paper_default();
        let tcfg = quick_tempering();
        let kernel = NeighborhoodKernel::new();
        for seed in [11u64, 23, 47] {
            let runs: Vec<AnnealOutcome> = [1usize, 2, 8]
                .iter()
                .map(|&w| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    temper(&sc, &tcfg, &base, &kernel, &mut rng, w)
                })
                .collect();
            assert_eq!(runs[0].assignment, runs[1].assignment, "seed {seed}");
            assert_eq!(runs[0].assignment, runs[2].assignment, "seed {seed}");
            assert_eq!(runs[0].objective, runs[1].objective, "seed {seed}");
            assert_eq!(runs[0].objective, runs[2].objective, "seed {seed}");
            assert_eq!(runs[0].proposals, runs[1].proposals, "seed {seed}");
            assert_eq!(runs[0].proposals, runs[2].proposals, "seed {seed}");
        }
    }

    #[test]
    fn all_local_fallback_on_terrible_channels() {
        let sc = scenario(4, 2, 2, 1e-17);
        let base = TtsaConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let out = temper(
            &sc,
            &quick_tempering(),
            &base,
            &NeighborhoodKernel::new(),
            &mut rng,
            2,
        );
        assert_eq!(out.objective, 0.0);
        assert_eq!(out.assignment.num_offloaded(), 0);
    }

    #[test]
    fn warm_start_never_falls_below_the_seed_decision() {
        let sc = scenario(6, 2, 2, 1e-10);
        let mut warm = Assignment::all_local(&sc);
        warm.assign(
            mec_types::UserId::new(0),
            mec_types::ServerId::new(0),
            mec_types::SubchannelId::new(0),
        )
        .unwrap();
        let warm_obj = Evaluator::new(&sc).objective(&warm);
        let base = TtsaConfig::paper_default().with_proposal_budget(2_000);
        let mut rng = StdRng::seed_from_u64(3);
        let out = temper_from(
            &sc,
            &TemperingConfig::paper_default().with_replicas(4),
            &base,
            &NeighborhoodKernel::new(),
            &mut rng,
            2,
            warm,
        );
        assert!(out.objective >= warm_obj - 1e-12);
        out.assignment.verify_feasible(&sc).unwrap();
    }

    #[test]
    fn budget_derived_rounds_respect_the_cap() {
        let sc = scenario(5, 2, 2, 1e-10);
        let base = TtsaConfig::paper_default().with_proposal_budget(3_000);
        let tcfg = TemperingConfig::paper_default();
        let rounds = planned_rounds(&tcfg, &base, &sc);
        let l = base.inner_iterations as u64;
        let total =
            rounds * tcfg.replicas as u64 * tcfg.exchange_interval * l + tcfg.quench_epochs * l;
        assert!(total <= 3_000, "planned {total} proposals for budget 3000");
    }

    #[test]
    fn trace_records_one_entry_per_round_with_monotone_best() {
        let sc = scenario(6, 3, 2, 1e-10);
        let base = TtsaConfig::paper_default().with_trace();
        let tcfg = quick_tempering();
        let mut rng = StdRng::seed_from_u64(8);
        let out = temper(&sc, &tcfg, &base, &NeighborhoodKernel::new(), &mut rng, 2);
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.len(), 6);
        let mut prev = f64::NEG_INFINITY;
        for e in &trace.epochs {
            assert!(e.best_objective >= prev);
            prev = e.best_objective;
        }
    }

    #[test]
    #[should_panic(expected = "TemperingConfig must be valid")]
    fn invalid_tempering_config_panics() {
        let sc = scenario(2, 2, 2, 1e-10);
        let bad = TemperingConfig::paper_default().with_replicas(1);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = temper(
            &sc,
            &bad,
            &TtsaConfig::paper_default(),
            &NeighborhoodKernel::new(),
            &mut rng,
            1,
        );
    }
}
