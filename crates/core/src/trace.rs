//! Per-epoch search diagnostics.

use serde::{Deserialize, Serialize};

/// One temperature epoch's summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Temperature during this epoch.
    pub temperature: f64,
    /// Objective of the current (accepted) solution at epoch end.
    pub current_objective: f64,
    /// Best objective seen so far.
    pub best_objective: f64,
    /// Worsening moves accepted during this epoch.
    pub accepted_worse: u32,
    /// Improving moves accepted during this epoch.
    pub accepted_better: u32,
    /// Whether the threshold trigger fired at the end of this epoch
    /// (fast cooling applied).
    pub trigger_fired: bool,
}

/// The full per-epoch history of one annealing run (recorded only when
/// [`TtsaConfig::record_trace`](crate::TtsaConfig) is set).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// One record per temperature epoch, in order.
    pub epochs: Vec<EpochRecord>,
}

impl SearchTrace {
    /// Number of epochs recorded.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// How many epochs ended with the fast-cooling trigger fired.
    pub fn trigger_count(&self) -> usize {
        self.epochs.iter().filter(|e| e.trigger_fired).count()
    }

    /// The best objective over the whole run, if any epoch was recorded.
    pub fn final_best(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.best_objective)
    }

    /// Renders the trace as CSV (one row per epoch), ready for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,temperature,current_objective,best_objective,accepted_worse,accepted_better,trigger_fired\n",
        );
        for (i, e) in self.epochs.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                i,
                e.temperature,
                e.current_objective,
                e.best_objective,
                e.accepted_worse,
                e.accepted_better,
                e.trigger_fired
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(temp: f64, best: f64, fired: bool) -> EpochRecord {
        EpochRecord {
            temperature: temp,
            current_objective: best - 0.1,
            best_objective: best,
            accepted_worse: 3,
            accepted_better: 2,
            trigger_fired: fired,
        }
    }

    #[test]
    fn trace_accumulates_and_summarizes() {
        let mut trace = SearchTrace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.final_best(), None);
        trace.epochs.push(record(3.0, 1.0, false));
        trace.epochs.push(record(2.91, 1.5, true));
        trace.epochs.push(record(2.62, 1.5, false));
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.trigger_count(), 1);
        assert_eq!(trace.final_best(), Some(1.5));
    }

    #[test]
    fn csv_has_one_row_per_epoch_plus_header() {
        let mut trace = SearchTrace::default();
        trace.epochs.push(record(3.0, 1.0, false));
        trace.epochs.push(record(2.91, 1.5, true));
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,temperature"));
        assert!(lines[2].ends_with("true"));
        assert!(lines[1].starts_with("0,3,"));
    }
}
