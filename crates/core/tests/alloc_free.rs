//! Heap-allocation regression gate for the search hot loop.
//!
//! The propose → apply → commit/undo cycle is what TTSA and the
//! tempering engine execute tens of thousands of times per solve, so a
//! single stray allocation per proposal dominates the wall-clock budget.
//! This test installs a counting global allocator, warms the loop up
//! until every scratch buffer has reached its steady-state capacity,
//! then asserts that 10 000 further proposals allocate nothing at all.
//!
//! It must stay the only `#[test]` in this binary: the libtest harness
//! runs tests on worker threads whose setup allocates, so a sibling
//! test running concurrently would leak its allocations into our count.

use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{IncrementalObjective, Scenario, UserSpec};
use mec_types::{Cycles, Hertz, ServerProfile, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tsajs::NeighborhoodKernel;

/// Pass-through allocator that counts every acquisition path
/// (fresh allocations, zeroed allocations and reallocations).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn scenario(users: usize, servers: usize, subchannels: usize) -> Scenario {
    Scenario::new(
        vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
        vec![ServerProfile::paper_default(); servers],
        OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
        ChannelGains::uniform(users, servers, subchannels, 1e-6).unwrap(),
        Watts::new(1e-13),
    )
    .unwrap()
}

/// One Metropolis-shaped hot-loop iteration: draw a move, apply it,
/// keep improvements and a pseudo-random share of the rest, undo the
/// remainder, and refresh the incumbent clone on improvement.
fn step(
    scenario: &Scenario,
    kernel: &NeighborhoodKernel,
    inc: &mut IncrementalObjective<'_>,
    best: &mut mec_system::Assignment,
    best_obj: &mut f64,
    rng: &mut StdRng,
) {
    let (mv, _) = kernel.propose_move(scenario, inc.assignment(), rng);
    let candidate = inc.apply(&mv);
    if candidate >= inc.current() || rng.gen::<f64>() < 0.3 {
        inc.commit();
        if candidate > *best_obj {
            *best_obj = candidate;
            best.clone_from(inc.assignment());
        }
    } else {
        inc.undo();
    }
}

#[test]
fn the_hot_loop_performs_zero_heap_allocations() {
    let scenario = scenario(12, 3, 4);
    let kernel = NeighborhoodKernel::new();
    let mut rng = StdRng::seed_from_u64(7);
    let initial = mec_system::Assignment::all_local(&scenario);
    let mut inc = IncrementalObjective::new(&scenario, initial).unwrap();
    let mut best = inc.assignment().clone();
    let mut best_obj = inc.current();

    // Warm-up: let the undo log, the evaluation scratch and the
    // incumbent clone reach their steady-state capacities.
    for _ in 0..2_000 {
        step(
            &scenario,
            &kernel,
            &mut inc,
            &mut best,
            &mut best_obj,
            &mut rng,
        );
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        step(
            &scenario,
            &kernel,
            &mut inc,
            &mut best,
            &mut best_obj,
            &mut rng,
        );
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "the propose/apply/commit-or-undo loop heap-allocated {delta} \
         times over 10000 proposals; the hot loop must be allocation-free"
    );
}
