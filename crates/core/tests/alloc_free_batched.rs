//! Heap-allocation regression gate for the batched speculative path.
//!
//! The batched proposal step (draw K candidates, score all K without
//! mutating, sequentially Metropolis-select) is the hot loop of every
//! annealing solver at `batch_width > 1`. Candidate and score scratch
//! is drawn from reusable `Vec`s and `score()` replays the apply-path
//! arithmetic against borrowed state, so after warm-up the whole
//! draw/score/select cycle must not touch the heap at all.
//!
//! It must stay the only `#[test]` in this binary: the libtest harness
//! runs tests on worker threads whose setup allocates, so a sibling
//! test running concurrently would leak its allocations into our count.

use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{IncrementalObjective, MoveDesc, Scenario, UserSpec};
use mec_types::{Cycles, Hertz, ServerProfile, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tsajs::NeighborhoodKernel;

/// Pass-through allocator that counts every acquisition path
/// (fresh allocations, zeroed allocations and reallocations).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn scenario(users: usize, servers: usize, subchannels: usize) -> Scenario {
    Scenario::new(
        vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
        vec![ServerProfile::paper_default(); servers],
        OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
        ChannelGains::uniform(users, servers, subchannels, 1e-6).unwrap(),
        Watts::new(1e-13),
    )
    .unwrap()
}

/// One batched proposal step, shaped exactly like the solver's
/// draw/score/select cycle: K candidates against the same incumbent,
/// all scored speculatively, first Metropolis acceptance applied.
#[allow(clippy::too_many_arguments)]
fn batched_step(
    scenario: &Scenario,
    kernel: &NeighborhoodKernel,
    inc: &mut IncrementalObjective<'_>,
    current_obj: &mut f64,
    batch: &mut Vec<MoveDesc>,
    scores: &mut Vec<f64>,
    k: usize,
    rng: &mut StdRng,
) {
    kernel.propose_batch(scenario, inc.assignment(), k, batch, rng);
    scores.clear();
    for mv in batch.iter() {
        scores.push(inc.score(mv));
    }
    for (mv, &candidate) in batch.iter().zip(scores.iter()) {
        let delta = candidate - *current_obj;
        if delta > 0.0 || (delta * 2.0).exp() > rng.gen::<f64>() {
            inc.apply(mv);
            inc.commit();
            *current_obj = candidate;
            break;
        }
    }
}

#[test]
fn the_batched_score_path_performs_zero_heap_allocations() {
    let scenario = scenario(12, 3, 4);
    let kernel = NeighborhoodKernel::new();
    let mut rng = StdRng::seed_from_u64(11);
    let initial = mec_system::Assignment::all_local(&scenario);
    let mut inc = IncrementalObjective::new(&scenario, initial).unwrap();
    let mut current_obj = inc.current();
    const K: usize = 8;
    let mut batch: Vec<MoveDesc> = Vec::with_capacity(K);
    let mut scores: Vec<f64> = Vec::with_capacity(K);

    // Warm-up: let the pending-move machinery and the candidate scratch
    // reach their steady-state capacities.
    for _ in 0..1_000 {
        batched_step(
            &scenario,
            &kernel,
            &mut inc,
            &mut current_obj,
            &mut batch,
            &mut scores,
            K,
            &mut rng,
        );
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5_000 {
        batched_step(
            &scenario,
            &kernel,
            &mut inc,
            &mut current_obj,
            &mut batch,
            &mut scores,
            K,
            &mut rng,
        );
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "the batched draw/score/select loop heap-allocated {delta} times \
         over 5000 steps of width {K}; the hot loop must be allocation-free"
    );
}
