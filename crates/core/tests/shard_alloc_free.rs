//! Heap-allocation regression gate for the shard engine's per-cluster
//! proposal loop.
//!
//! A Gauss–Seidel reconciliation sweep runs [`tsajs::shard::descent`]
//! once per cluster, and a city-scale solve runs many sweeps — so a stray
//! allocation inside the descent's score/apply/commit cycle multiplies
//! across the whole metro. This test installs a counting global
//! allocator, drives the descent to its fixed point (where scratch
//! buffers have reached steady-state capacity), then asserts that a full
//! re-scan of the neighborhood at the fixed point allocates nothing.
//!
//! It must stay the only `#[test]` in this binary: the libtest harness
//! runs tests on worker threads whose setup allocates, so a sibling test
//! running concurrently would leak its allocations into our count.

use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{Assignment, IncrementalObjective, Scenario, UserSpec};
use mec_types::{Cycles, Hertz, ServerProfile, Watts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tsajs::shard::{descent, publish_halo_delta, DESCENT_IMPROVEMENT_FLOOR};

/// Pass-through allocator that counts every acquisition path
/// (fresh allocations, zeroed allocations and reallocations).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A cluster-shaped subproblem with a halo installed, like every cluster
/// visit during a reconciliation sweep sees it.
fn cluster_scenario(users: usize, servers: usize, subchannels: usize) -> Scenario {
    let mut sc = Scenario::new(
        vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
        vec![ServerProfile::paper_default(); servers],
        OfdmaConfig::new(Hertz::from_mega(20.0), subchannels).unwrap(),
        ChannelGains::uniform(users, servers, subchannels, 1e-10).unwrap(),
        Watts::new(1e-13),
    )
    .unwrap();
    let ext: Vec<f64> = (0..subchannels * servers)
        .map(|i| 1e-13 * (1.0 + i as f64))
        .collect();
    sc.set_external_rx(Some(ext)).unwrap();
    sc
}

#[test]
fn the_descent_loop_performs_zero_heap_allocations_at_fixed_point() {
    let scenario = cluster_scenario(12, 3, 4);
    let initial = Assignment::all_local(&scenario);
    let mut inc = IncrementalObjective::new(&scenario, initial).unwrap();

    // Warm-up: run the descent to its fixed point. This both reaches the
    // local optimum and lets the incremental state's journaling scratch
    // grow to steady-state capacity.
    let outcome = descent(&mut inc, 1_000_000, DESCENT_IMPROVEMENT_FLOOR);
    assert!(outcome.changed, "the cold start must find improving moves");
    assert!(outcome.spent > 0);
    assert!(!outcome.exhausted, "the budget is ample for this instance");

    // At the fixed point a further pass re-scores the full neighborhood
    // (thousands of speculative proposals) and accepts nothing — exactly
    // the steady-state shape of a converged reconciliation sweep. It must
    // not touch the heap at all.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let outcome = descent(&mut inc, 1_000_000, DESCENT_IMPROVEMENT_FLOOR);
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(!outcome.changed, "fixed point must be stable");
    assert!(
        outcome.spent > 0,
        "the pass still scores the full neighborhood"
    );
    assert_eq!(
        delta, 0,
        "the per-cluster descent loop heap-allocated {delta} times over {} \
         proposals at the fixed point; it must be allocation-free",
        outcome.spent
    );

    // The warm path's steady-state pair: patching the previous decision
    // onto a churned population and publishing a halo delta into the
    // exchange. Both run once per CityScale batch, against buffers that
    // reached capacity on the first batch — so at steady state neither
    // may touch the heap either.
    let prev = inc.assignment().clone();
    let map: Vec<Option<mec_types::UserId>> = (0..prev.num_users())
        .map(|v| {
            if v % 10 == 0 {
                None
            } else {
                Some(mec_types::UserId::new(v))
            }
        })
        .collect();
    let mut patched =
        Assignment::with_dims(prev.num_users(), prev.num_servers(), prev.num_subchannels());
    let mut continued = vec![false; prev.num_users()];
    let n_halo = scenario.num_subchannels() * scenario.num_servers();
    let mut totals = vec![0.5e-13; n_halo];
    let contrib_prev = vec![0.1e-13; n_halo];
    let contrib_next = vec![0.2e-13; n_halo];
    // Warm-up pass lets every buffer reach capacity.
    prev.patched_into(&map, &mut patched, &mut continued)
        .unwrap();
    publish_halo_delta(&mut totals, &contrib_prev, &contrib_next);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    prev.patched_into(&map, &mut patched, &mut continued)
        .unwrap();
    let max_delta = publish_halo_delta(&mut totals, &contrib_prev, &contrib_next);
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(max_delta > 0.0);
    assert_eq!(
        delta, 0,
        "the warm patch + delta-publish cycle heap-allocated {delta} times; \
         it must be allocation-free at steady state"
    );
}
