//! Dynamic re-scheduling: move, regenerate channels, re-solve, repeat.

use crate::waypoint::RandomWaypoint;
use mec_system::{Assignment, Solver};
use mec_types::{Error, Seconds, ServerId, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Mobility-side knobs of a dynamic simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Per-user speed range in m/s.
    pub speed_range_mps: (f64, f64),
    /// Simulated time between scheduling epochs.
    pub epoch_duration: Seconds,
    /// Whether shadowing is redrawn each epoch (`true`, the default:
    /// users move far enough that the shadowing decorrelates) or held
    /// fixed from the first epoch.
    pub redraw_shadowing: bool,
}

impl MobilityConfig {
    /// Pedestrians: 0.5–2 m/s, 10 s epochs.
    pub fn pedestrian() -> Self {
        Self {
            speed_range_mps: (0.5, 2.0),
            epoch_duration: Seconds::new(10.0),
            redraw_shadowing: true,
        }
    }

    /// Vehicles: 8–20 m/s (≈ 30–70 km/h), 5 s epochs.
    pub fn vehicular() -> Self {
        Self {
            speed_range_mps: (8.0, 20.0),
            epoch_duration: Seconds::new(5.0),
            redraw_shadowing: true,
        }
    }
}

/// What happened in one scheduling epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Achieved system utility `J*(X)`.
    pub utility: f64,
    /// Users offloading this epoch.
    pub num_offloaded: usize,
    /// Users whose *nearest* station changed since the previous epoch
    /// (radio handovers, decision-independent).
    pub handovers: usize,
    /// Users whose offloading slot changed since the previous epoch
    /// (decision churn: local↔offloaded or a different `(s, j)`).
    pub reassignments: usize,
    /// Search effort spent this epoch (objective evaluations /
    /// neighborhood proposals).
    pub proposals: u64,
}

/// The full trajectory of a dynamic run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// Per-epoch reports, in order.
    pub epochs: Vec<EpochReport>,
}

impl History {
    /// Mean utility over all epochs (0 for an empty history).
    pub fn average_utility(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.utility).sum::<f64>() / self.epochs.len() as f64
    }

    /// Total decision churn over the run.
    pub fn total_reassignments(&self) -> usize {
        self.epochs.iter().map(|e| e.reassignments).sum()
    }
}

/// A mobile MEC network that is re-scheduled every epoch.
#[derive(Debug)]
pub struct DynamicSimulation {
    generator: ScenarioGenerator,
    mobility: MobilityConfig,
    model: RandomWaypoint,
    rng: StdRng,
    seed: u64,
    epoch: usize,
}

impl DynamicSimulation {
    /// Creates a simulation over the given network parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for degenerate parameters.
    pub fn new(
        params: ExperimentParams,
        mobility: MobilityConfig,
        seed: u64,
    ) -> Result<Self, Error> {
        let generator = ScenarioGenerator::new(params);
        let layout = generator.layout()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let model = RandomWaypoint::new(
            &layout,
            params.num_users,
            mobility.speed_range_mps,
            &mut rng,
        );
        Ok(Self {
            generator,
            mobility,
            model,
            rng,
            seed,
            epoch: 0,
        })
    }

    /// Runs `epochs` scheduling epochs. `make_solver(seed)` builds the
    /// solver used for one epoch (a fresh one per epoch keeps runs
    /// reproducible regardless of solver state).
    ///
    /// # Errors
    ///
    /// Propagates scenario-generation and solver errors.
    pub fn run<F>(&mut self, epochs: usize, make_solver: F) -> Result<History, Error>
    where
        F: Fn(u64) -> Box<dyn Solver>,
    {
        let layout = self.generator.layout()?;
        let mut reports = Vec::with_capacity(epochs);
        let mut previous_assignment: Option<Assignment> = None;
        let mut previous_nearest: Option<Vec<ServerId>> = None;

        for _ in 0..epochs {
            let epoch_seed = if self.mobility.redraw_shadowing {
                self.seed
                    .wrapping_add(1 + self.epoch as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            } else {
                self.seed
            };
            let scenario = self
                .generator
                .generate_at(self.model.positions(), epoch_seed)?;
            let mut solver = make_solver(epoch_seed);
            let solution = solver.solve(&scenario)?;

            let nearest: Vec<ServerId> = self
                .model
                .positions()
                .iter()
                .map(|p| layout.nearest_station(*p))
                .collect();
            let handovers = previous_nearest
                .as_ref()
                .map(|prev| prev.iter().zip(&nearest).filter(|(a, b)| a != b).count())
                .unwrap_or(0);
            let reassignments = previous_assignment
                .as_ref()
                .map(|prev| {
                    (0..scenario.num_users())
                        .filter(|i| {
                            prev.slot(UserId::new(*i)) != solution.assignment.slot(UserId::new(*i))
                        })
                        .count()
                })
                .unwrap_or(0);

            reports.push(EpochReport {
                epoch: self.epoch,
                utility: solution.utility,
                num_offloaded: solution.assignment.num_offloaded(),
                handovers,
                reassignments,
                proposals: solution.stats.iterations,
            });
            previous_assignment = Some(solution.assignment);
            previous_nearest = Some(nearest);

            self.model
                .step(&layout, self.mobility.epoch_duration, &mut self.rng);
            self.epoch += 1;
        }
        Ok(History { epochs: reports })
    }

    /// Runs `epochs` epochs with **incremental re-scheduling**: the first
    /// epoch solves from scratch with `base` (the full schedule), every
    /// later epoch warm-starts TTSA from the previous decision under a
    /// tight `refresh_budget` of proposals — the cheap periodic refresh an
    /// operator would run between full re-optimizations.
    ///
    /// # Errors
    ///
    /// Propagates configuration, scenario-generation and solver errors.
    pub fn run_incremental(
        &mut self,
        epochs: usize,
        base: tsajs::TtsaConfig,
        refresh_budget: u64,
    ) -> Result<History, Error> {
        self.run_ttsa(epochs, base, tsajs::ResolveMode::warm(refresh_budget))
    }

    /// The shared TTSA epoch loop behind both dynamic paths: every epoch
    /// re-solves under `mode` — [`ResolveMode::Cold`] anneals from scratch
    /// (the cold-solve fallback), [`ResolveMode::WarmStart`] seeds the
    /// chain from the previous epoch's decision under a tight refresh
    /// budget at a low fixed restart temperature (the first epoch is
    /// always a cold solve; there is nothing to warm-start from).
    ///
    /// # Errors
    ///
    /// Propagates configuration, scenario-generation and solver errors.
    ///
    /// [`ResolveMode::Cold`]: tsajs::ResolveMode::Cold
    /// [`ResolveMode::WarmStart`]: tsajs::ResolveMode::WarmStart
    pub fn run_ttsa(
        &mut self,
        epochs: usize,
        base: tsajs::TtsaConfig,
        mode: tsajs::ResolveMode,
    ) -> Result<History, Error> {
        base.validate()?;
        mode.validate()?;
        let layout = self.generator.layout()?;
        let kernel = tsajs::NeighborhoodKernel::new();
        let mut chain_rng = StdRng::seed_from_u64(self.seed ^ 0x5851_F42D_4C95_7F2D);
        let mut reports = Vec::with_capacity(epochs);
        let mut previous: Option<Assignment> = None;
        let mut previous_nearest: Option<Vec<ServerId>> = None;

        for _ in 0..epochs {
            let epoch_seed = if self.mobility.redraw_shadowing {
                self.seed
                    .wrapping_add(1 + self.epoch as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            } else {
                self.seed
            };
            let scenario = self
                .generator
                .generate_at(self.model.positions(), epoch_seed)?;
            let outcome = match (mode, previous.as_ref()) {
                (tsajs::ResolveMode::Cold, _) | (_, None) => {
                    tsajs::anneal(&scenario, &base, &kernel, &mut chain_rng)
                }
                (tsajs::ResolveMode::WarmStart { .. }, Some(warm)) => {
                    // A refresh is fine-tuning, not a fresh search: start
                    // cold (low fixed temperature) so the budget is spent
                    // improving the inherited schedule instead of
                    // scrambling it.
                    let refresh = mode.refresh_config(&base);
                    tsajs::anneal_from(&scenario, &refresh, &kernel, &mut chain_rng, warm.clone())
                }
                (tsajs::ResolveMode::WarmTempered { tempering, .. }, Some(warm)) => {
                    // The same refresh contract, spent by a shortened
                    // tempering ladder seeded from the inherited schedule.
                    let refresh = mode.refresh_config(&base);
                    tsajs::temper_from(
                        &scenario,
                        &tempering,
                        &refresh,
                        &kernel,
                        &mut chain_rng,
                        mec_types::effective_parallelism(None),
                        warm.clone(),
                    )
                }
            };

            let nearest: Vec<ServerId> = self
                .model
                .positions()
                .iter()
                .map(|p| layout.nearest_station(*p))
                .collect();
            let handovers = previous_nearest
                .as_ref()
                .map(|prev| prev.iter().zip(&nearest).filter(|(a, b)| a != b).count())
                .unwrap_or(0);
            let reassignments = previous
                .as_ref()
                .map(|prev| {
                    (0..scenario.num_users())
                        .filter(|i| {
                            prev.slot(UserId::new(*i)) != outcome.assignment.slot(UserId::new(*i))
                        })
                        .count()
                })
                .unwrap_or(0);

            reports.push(EpochReport {
                epoch: self.epoch,
                utility: outcome.objective,
                num_offloaded: outcome.assignment.num_offloaded(),
                handovers,
                reassignments,
                proposals: outcome.proposals,
            });
            previous = Some(outcome.assignment);
            previous_nearest = Some(nearest);
            self.model
                .step(&layout, self.mobility.epoch_duration, &mut self.rng);
            self.epoch += 1;
        }
        Ok(History { epochs: reports })
    }

    /// Current user positions (after the steps taken so far).
    pub fn positions(&self) -> &[mec_topology::Point2] {
        self.model.positions()
    }

    /// How many epochs have been simulated so far.
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_baselines::GreedySolver;

    fn params() -> ExperimentParams {
        ExperimentParams::paper_default()
            .with_users(8)
            .with_servers(3)
    }

    fn greedy_factory(_: u64) -> Box<dyn Solver> {
        Box::new(GreedySolver::new())
    }

    #[test]
    fn runs_the_requested_epochs_with_sane_reports() {
        let mut sim = DynamicSimulation::new(params(), MobilityConfig::vehicular(), 1).unwrap();
        let history = sim.run(5, greedy_factory).unwrap();
        assert_eq!(history.epochs.len(), 5);
        assert_eq!(sim.epochs_run(), 5);
        for (i, e) in history.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert!(e.utility.is_finite());
            assert!(e.num_offloaded <= 8);
            assert!(e.handovers <= 8);
            assert!(e.reassignments <= 8);
        }
        // The first epoch has no predecessor.
        assert_eq!(history.epochs[0].handovers, 0);
        assert_eq!(history.epochs[0].reassignments, 0);
    }

    #[test]
    fn static_users_on_fixed_shadowing_never_churn() {
        let mobility = MobilityConfig {
            speed_range_mps: (0.0, 0.0),
            epoch_duration: Seconds::new(10.0),
            redraw_shadowing: false,
        };
        let mut sim = DynamicSimulation::new(params(), mobility, 2).unwrap();
        // Greedy is deterministic, positions and channels frozen: identical
        // decisions every epoch.
        let history = sim.run(4, greedy_factory).unwrap();
        for e in &history.epochs[1..] {
            assert_eq!(e.handovers, 0);
            assert_eq!(e.reassignments, 0);
        }
        let u0 = history.epochs[0].utility;
        for e in &history.epochs {
            assert_eq!(e.utility, u0);
        }
    }

    #[test]
    fn fast_movers_cause_more_handovers_than_slow_ones() {
        let run_with = |speed: (f64, f64), seed: u64| -> usize {
            let mobility = MobilityConfig {
                speed_range_mps: speed,
                epoch_duration: Seconds::new(30.0),
                redraw_shadowing: false,
            };
            let mut sim = DynamicSimulation::new(
                ExperimentParams::paper_default().with_users(20),
                mobility,
                seed,
            )
            .unwrap();
            let history = sim.run(12, greedy_factory).unwrap();
            history.epochs.iter().map(|e| e.handovers).sum()
        };
        let mut slow_total = 0;
        let mut fast_total = 0;
        for seed in 0..3 {
            slow_total += run_with((0.5, 1.0), seed);
            fast_total += run_with((20.0, 40.0), seed);
        }
        assert!(
            fast_total > slow_total,
            "fast movers should hand over more: {fast_total} vs {slow_total}"
        );
    }

    #[test]
    fn history_summaries() {
        let mut sim = DynamicSimulation::new(params(), MobilityConfig::pedestrian(), 3).unwrap();
        let history = sim.run(3, greedy_factory).unwrap();
        assert!(history.average_utility().is_finite());
        assert_eq!(
            history.total_reassignments(),
            history
                .epochs
                .iter()
                .map(|e| e.reassignments)
                .sum::<usize>()
        );
        assert_eq!(History { epochs: vec![] }.average_utility(), 0.0);
    }

    #[test]
    fn incremental_rescheduling_is_cheap_after_the_first_epoch() {
        let base = tsajs::TtsaConfig::paper_default().with_min_temperature(1e-3);
        let mut sim = DynamicSimulation::new(params(), MobilityConfig::pedestrian(), 9).unwrap();
        let history = sim.run_incremental(5, base, 120).unwrap();
        assert_eq!(history.epochs.len(), 5);
        let cold = history.epochs[0].proposals;
        for e in &history.epochs[1..] {
            assert!(
                e.proposals <= 120 + base.inner_iterations as u64,
                "refresh exceeded its budget: {}",
                e.proposals
            );
            assert!(e.proposals < cold, "refresh not cheaper than cold solve");
            assert!(e.utility.is_finite());
        }
    }

    #[test]
    fn incremental_tracks_churn_and_rejects_zero_budget() {
        let base = tsajs::TtsaConfig::paper_default().with_min_temperature(1e-2);
        let mut sim = DynamicSimulation::new(params(), MobilityConfig::vehicular(), 4).unwrap();
        assert!(sim.run_incremental(2, base, 0).is_err());
        let history = sim.run_incremental(3, base, 60).unwrap();
        assert_eq!(history.epochs[0].reassignments, 0, "no predecessor");
        for e in &history.epochs {
            assert!(e.reassignments <= 8);
        }
    }

    #[test]
    fn run_ttsa_cold_and_warm_share_one_code_path() {
        let base = tsajs::TtsaConfig::paper_default().with_min_temperature(1e-2);
        // Warm mode through run_ttsa is exactly run_incremental.
        let warm_direct = {
            let mut sim =
                DynamicSimulation::new(params(), MobilityConfig::pedestrian(), 7).unwrap();
            sim.run_ttsa(4, base, tsajs::ResolveMode::warm(80)).unwrap()
        };
        let warm_legacy = {
            let mut sim =
                DynamicSimulation::new(params(), MobilityConfig::pedestrian(), 7).unwrap();
            sim.run_incremental(4, base, 80).unwrap()
        };
        assert_eq!(warm_direct, warm_legacy);
        // The cold fallback re-anneals every epoch: no epoch is cheaper
        // than the warm refreshes.
        let cold = {
            let mut sim =
                DynamicSimulation::new(params(), MobilityConfig::pedestrian(), 7).unwrap();
            sim.run_ttsa(4, base, tsajs::ResolveMode::Cold).unwrap()
        };
        assert_eq!(cold.epochs.len(), 4);
        let min_cold = cold.epochs.iter().map(|e| e.proposals).min().unwrap();
        let max_warm = warm_direct.epochs[1..]
            .iter()
            .map(|e| e.proposals)
            .max()
            .unwrap();
        assert!(
            max_warm < min_cold,
            "warm refreshes ({max_warm}) should undercut cold solves ({min_cold})"
        );
        // Cold mode ignores any previous decision, so its first two
        // epochs both pay the full schedule.
        assert!(cold.epochs[1].proposals >= min_cold);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut sim =
                DynamicSimulation::new(params(), MobilityConfig::vehicular(), seed).unwrap();
            sim.run(4, greedy_factory).unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
