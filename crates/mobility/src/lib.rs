//! # mec-mobility
//!
//! User mobility and dynamic re-scheduling on top of the TSAJS stack.
//!
//! The paper schedules a *snapshot*: user positions (and hence channels)
//! are fixed while the association happens on a "long-term scale"
//! (§III-A.2). This crate supplies the dynamics around that snapshot for
//! the vehicular / AR scenarios the paper motivates: users move under a
//! [random-waypoint model](RandomWaypoint), channels are regenerated each
//! epoch, the scheduler re-solves, and the simulation reports utility,
//! serving-station handovers and decision churn over time.
//!
//! ## Example
//!
//! ```
//! use mec_mobility::{DynamicSimulation, MobilityConfig};
//! use mec_workloads::ExperimentParams;
//! use tsajs::{TsajsSolver, TtsaConfig};
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let params = ExperimentParams::paper_default().with_users(8);
//! let mobility = MobilityConfig::pedestrian();
//! let mut sim = DynamicSimulation::new(params, mobility, 42)?;
//! let history = sim.run(3, |seed| {
//!     Box::new(TsajsSolver::new(
//!         TtsaConfig::paper_default().with_min_temperature(1e-2).with_seed(seed),
//!     ))
//! })?;
//! assert_eq!(history.epochs.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod study;
pub mod waypoint;

pub use dynamic::{DynamicSimulation, EpochReport, History, MobilityConfig};
pub use study::{run as run_study, StudyConfig};
pub use waypoint::RandomWaypoint;
