//! Mobility studies: scheme behavior under movement, and the
//! incremental-refresh trade-off.

use crate::dynamic::{DynamicSimulation, MobilityConfig};
use mec_system::Solver;
use mec_types::Error;
use mec_workloads::{ExperimentParams, SampleStats, Table};
use tsajs::{TsajsSolver, TtsaConfig};

/// Configuration of the dynamics study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Network parameters.
    pub params: ExperimentParams,
    /// Scheduling epochs per case.
    pub epochs: usize,
    /// Simulation seed.
    pub seed: u64,
    /// TTSA schedule used by the solvers.
    pub ttsa: TtsaConfig,
    /// Proposal budget of the incremental refresh.
    pub refresh_budget: u64,
}

impl StudyConfig {
    /// Defaults: U = 30 on the paper network, 20 epochs, quick schedule.
    pub fn default_study() -> Self {
        Self {
            params: ExperimentParams::paper_default().with_users(30),
            epochs: 20,
            seed: 17,
            ttsa: TtsaConfig::paper_default().with_min_temperature(1e-3),
            refresh_budget: 300,
        }
    }
}

fn summarize(label: &str, scheme: &str, history: &crate::dynamic::History, table: &mut Table) {
    let utility =
        SampleStats::from_sample(&history.epochs.iter().map(|e| e.utility).collect::<Vec<_>>());
    let churn: Vec<f64> = history.epochs[1..]
        .iter()
        .map(|e| e.reassignments as f64)
        .collect();
    let handovers: Vec<f64> = history.epochs[1..]
        .iter()
        .map(|e| e.handovers as f64)
        .collect();
    let proposals: Vec<f64> = history.epochs.iter().map(|e| e.proposals as f64).collect();
    table.push_row(vec![
        label.into(),
        scheme.into(),
        utility.display(3),
        SampleStats::from_sample(&handovers).display(2),
        SampleStats::from_sample(&churn).display(2),
        format!("{:.0}", SampleStats::from_sample(&proposals).mean),
    ]);
}

/// Runs the dynamics study: TSAJS vs Greedy under pedestrian and
/// vehicular mobility, plus full-resolve vs incremental-refresh TSAJS.
///
/// # Errors
///
/// Propagates configuration, scenario-generation and solver errors.
pub fn run(config: &StudyConfig) -> Result<Vec<Table>, Error> {
    let mut table = Table::new(
        format!(
            "Dynamics: per-epoch utility / handovers / churn / effort (U={}, {} epochs)",
            config.params.num_users, config.epochs
        ),
        vec![
            "mobility".into(),
            "scheduler".into(),
            "avg utility".into(),
            "handovers/epoch".into(),
            "reassignments/epoch".into(),
            "avg proposals".into(),
        ],
    );

    for (label, mut mobility) in [
        ("pedestrian", MobilityConfig::pedestrian()),
        ("vehicular", MobilityConfig::vehicular()),
    ] {
        // Epochs are seconds apart: shadowing does not decorrelate on
        // that timescale, so hold it fixed and let the moving path loss
        // drive the channel dynamics. This is also the regime where an
        // incremental refresh is meaningful at all.
        mobility.redraw_shadowing = false;
        // Full TSAJS re-solve each epoch.
        let mut sim = DynamicSimulation::new(config.params, mobility, config.seed)?;
        let ttsa = config.ttsa;
        let history = sim.run(config.epochs, move |seed| {
            Box::new(TsajsSolver::new(ttsa.with_seed(seed))) as Box<dyn Solver>
        })?;
        summarize(label, "TSAJS (full)", &history, &mut table);

        // Incremental refresh.
        let mut sim = DynamicSimulation::new(config.params, mobility, config.seed)?;
        let history = sim.run_incremental(config.epochs, config.ttsa, config.refresh_budget)?;
        summarize(label, "TSAJS (incremental)", &history, &mut table);

        // Greedy reference.
        let mut sim = DynamicSimulation::new(config.params, mobility, config.seed)?;
        let history = sim.run(config.epochs, |_| {
            Box::new(mec_baselines::GreedySolver::new()) as Box<dyn Solver>
        })?;
        summarize(label, "Greedy", &history, &mut table);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> StudyConfig {
        StudyConfig {
            params: ExperimentParams::paper_default()
                .with_users(8)
                .with_servers(3),
            epochs: 4,
            seed: 1,
            ttsa: TtsaConfig::paper_default().with_min_temperature(1e-2),
            refresh_budget: 90,
        }
    }

    #[test]
    fn study_produces_six_rows() {
        let tables = run(&quick()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 6, "2 mobility × 3 schedulers");
        assert_eq!(tables[0].headers.len(), 6);
    }

    #[test]
    fn incremental_spends_less_effort_than_full() {
        let tables = run(&quick()).unwrap();
        let effort = |scheduler: &str, mobility: &str| -> f64 {
            tables[0]
                .rows
                .iter()
                .find(|r| r[0] == mobility && r[1] == scheduler)
                .map(|r| r[5].parse().unwrap())
                .unwrap()
        };
        for mobility in ["pedestrian", "vehicular"] {
            assert!(
                effort("TSAJS (incremental)", mobility) < effort("TSAJS (full)", mobility),
                "incremental should be cheaper under {mobility}"
            );
        }
    }
}
