//! The random-waypoint mobility model.

use mec_topology::{place_users_uniform, NetworkLayout, Point2};
use mec_types::Seconds;
use rand::Rng;

/// Random-waypoint mobility over a network's coverage area.
///
/// Each user walks in a straight line toward a destination sampled
/// uniformly over the coverage area at an individual speed; on arrival it
/// draws a fresh destination. If a straight-line step would exit the
/// (non-convex) union of hexagonal cells, the user stops and re-plans —
/// a standard boundary rule that keeps every position inside coverage by
/// construction.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    positions: Vec<Point2>,
    destinations: Vec<Point2>,
    speeds_mps: Vec<f64>,
}

impl RandomWaypoint {
    /// Initializes `count` users uniformly over the layout, with speeds
    /// drawn uniformly from `speed_range` (m/s).
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty, negative or non-finite.
    pub fn new<R: Rng + ?Sized>(
        layout: &NetworkLayout,
        count: usize,
        speed_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        assert!(
            speed_range.0.is_finite()
                && speed_range.1.is_finite()
                && speed_range.0 >= 0.0
                && speed_range.1 >= speed_range.0,
            "speed range must be a finite non-negative interval"
        );
        let positions = place_users_uniform(layout, count, rng);
        let destinations = place_users_uniform(layout, count, rng);
        let speeds_mps = (0..count)
            .map(|_| {
                if speed_range.0 == speed_range.1 {
                    speed_range.0
                } else {
                    rng.gen_range(speed_range.0..=speed_range.1)
                }
            })
            .collect();
        Self {
            positions,
            destinations,
            speeds_mps,
        }
    }

    /// Current user positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Number of users currently tracked.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether no users are tracked.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Adds one user at a fresh uniform position with its own destination
    /// and a speed drawn from `speed_range` (m/s); returns its index.
    /// Supports churn: the online engine spawns arrivals here.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty, negative or non-finite.
    pub fn add_user<R: Rng + ?Sized>(
        &mut self,
        layout: &NetworkLayout,
        speed_range: (f64, f64),
        rng: &mut R,
    ) -> usize {
        assert!(
            speed_range.0.is_finite()
                && speed_range.1.is_finite()
                && speed_range.0 >= 0.0
                && speed_range.1 >= speed_range.0,
            "speed range must be a finite non-negative interval"
        );
        self.positions.push(random_point(layout, rng));
        self.destinations.push(random_point(layout, rng));
        self.speeds_mps.push(if speed_range.0 == speed_range.1 {
            speed_range.0
        } else {
            rng.gen_range(speed_range.0..=speed_range.1)
        });
        self.positions.len() - 1
    }

    /// Removes the user at `index`; later users shift down by one
    /// (matching `Vec::remove`), so callers tracking indices must remap.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_user(&mut self, index: usize) {
        self.positions.remove(index);
        self.destinations.remove(index);
        self.speeds_mps.remove(index);
    }

    /// Teleports the user at `index` to `position` and aims it there (it
    /// re-plans a fresh destination on its next step). Supports injected
    /// population shifts such as hotspot-drift events.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn relocate_user(&mut self, index: usize, position: Point2) {
        self.positions[index] = position;
        self.destinations[index] = position;
    }

    /// Per-user speeds in m/s.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds_mps
    }

    /// Advances all users by `dt`, re-planning on arrival or when a step
    /// would leave the coverage area.
    pub fn step<R: Rng + ?Sized>(&mut self, layout: &NetworkLayout, dt: Seconds, rng: &mut R) {
        for i in 0..self.positions.len() {
            let pos = self.positions[i];
            let dest = self.destinations[i];
            let travel = self.speeds_mps[i] * dt.as_secs();
            if travel <= 0.0 {
                continue;
            }
            let remaining = pos.distance(dest).as_meters();
            if remaining <= travel {
                // Arrive and pick a new destination.
                self.positions[i] = dest;
                self.destinations[i] = random_point(layout, rng);
                continue;
            }
            let next = Point2::new(
                pos.x + (dest.x - pos.x) / remaining * travel,
                pos.y + (dest.y - pos.y) / remaining * travel,
            );
            if layout.contains(next) {
                self.positions[i] = next;
            } else {
                // The straight segment exits the (non-convex) coverage:
                // stay put and re-plan toward a reachable destination.
                self.destinations[i] = random_point(layout, rng);
            }
        }
    }
}

fn random_point<R: Rng + ?Sized>(layout: &NetworkLayout, rng: &mut R) -> Point2 {
    place_users_uniform(layout, 1, rng)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::Meters;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> NetworkLayout {
        NetworkLayout::hexagonal(9, Meters::new(1000.0)).unwrap()
    }

    #[test]
    fn users_stay_in_coverage_forever() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = RandomWaypoint::new(&l, 20, (1.0, 30.0), &mut rng);
        for _ in 0..500 {
            model.step(&l, Seconds::new(5.0), &mut rng);
            for p in model.positions() {
                assert!(l.contains(*p));
            }
        }
    }

    #[test]
    fn zero_speed_users_never_move() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = RandomWaypoint::new(&l, 5, (0.0, 0.0), &mut rng);
        let before = model.positions().to_vec();
        for _ in 0..10 {
            model.step(&l, Seconds::new(10.0), &mut rng);
        }
        assert_eq!(model.positions(), before.as_slice());
    }

    #[test]
    fn moving_users_actually_move() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = RandomWaypoint::new(&l, 10, (5.0, 15.0), &mut rng);
        let before = model.positions().to_vec();
        model.step(&l, Seconds::new(10.0), &mut rng);
        let moved = model
            .positions()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(**b).as_meters() > 1.0)
            .count();
        assert!(moved >= 8, "only {moved}/10 users moved");
        // Step length is bounded by speed × dt.
        for ((a, b), v) in model.positions().iter().zip(&before).zip(model.speeds()) {
            assert!(a.distance(*b).as_meters() <= v * 10.0 + 1e-6);
        }
    }

    #[test]
    fn arrival_triggers_replanning() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = RandomWaypoint::new(&l, 3, (10.0, 10.0), &mut rng);
        // A huge step overshoots every destination: users land exactly on
        // their destinations and get fresh ones.
        let destinations_before = model.destinations.clone();
        model.step(&l, Seconds::new(1.0e6), &mut rng);
        for (p, d) in model.positions().iter().zip(&destinations_before) {
            assert_eq!(p, d, "user should land on its destination");
        }
        assert_ne!(model.destinations, destinations_before);
    }

    #[test]
    fn deterministic_under_seed() {
        let l = layout();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = RandomWaypoint::new(&l, 8, (1.0, 20.0), &mut rng);
            for _ in 0..50 {
                m.step(&l, Seconds::new(2.0), &mut rng);
            }
            m.positions().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "speed range")]
    fn invalid_speed_range_panics() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RandomWaypoint::new(&l, 1, (5.0, 1.0), &mut rng);
    }

    #[test]
    fn add_and_remove_users_track_population() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = RandomWaypoint::new(&l, 0, (1.0, 2.0), &mut rng);
        assert!(model.is_empty());
        let a = model.add_user(&l, (1.0, 2.0), &mut rng);
        let b = model.add_user(&l, (1.0, 2.0), &mut rng);
        assert_eq!((a, b), (0, 1));
        assert_eq!(model.len(), 2);
        assert!(model.positions().iter().all(|p| l.contains(*p)));
        assert!(model.speeds().iter().all(|v| (1.0..=2.0).contains(v)));
        // Removing the first user shifts the second one down.
        let second = model.positions()[1];
        model.remove_user(0);
        assert_eq!(model.len(), 1);
        assert_eq!(model.positions()[0], second);
        // A churned population still steps fine.
        model.step(&l, Seconds::new(5.0), &mut rng);
        assert!(l.contains(model.positions()[0]));
    }

    #[test]
    fn relocated_users_stay_put_until_they_replan() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = RandomWaypoint::new(&l, 2, (1.0, 1.0), &mut rng);
        let target = l.stations()[0];
        model.relocate_user(1, target);
        assert_eq!(model.positions()[1], target);
        // Destination equals position, so the next step lands (distance 0
        // <= travel) and draws a fresh destination — no jump away first.
        model.step(&l, Seconds::new(1.0), &mut rng);
        assert_eq!(model.positions()[1], target);
        assert_ne!(model.destinations[1], target);
    }

    #[test]
    #[should_panic]
    fn removing_an_unknown_user_panics() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = RandomWaypoint::new(&l, 1, (1.0, 2.0), &mut rng);
        model.remove_user(3);
    }
}
