//! The random-waypoint mobility model.

use mec_topology::{place_users_uniform, NetworkLayout, Point2};
use mec_types::Seconds;
use rand::Rng;

/// Random-waypoint mobility over a network's coverage area.
///
/// Each user walks in a straight line toward a destination sampled
/// uniformly over the coverage area at an individual speed; on arrival it
/// draws a fresh destination. If a straight-line step would exit the
/// (non-convex) union of hexagonal cells, the user stops and re-plans —
/// a standard boundary rule that keeps every position inside coverage by
/// construction.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    positions: Vec<Point2>,
    destinations: Vec<Point2>,
    speeds_mps: Vec<f64>,
}

impl RandomWaypoint {
    /// Initializes `count` users uniformly over the layout, with speeds
    /// drawn uniformly from `speed_range` (m/s).
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty, negative or non-finite.
    pub fn new<R: Rng + ?Sized>(
        layout: &NetworkLayout,
        count: usize,
        speed_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        assert!(
            speed_range.0.is_finite()
                && speed_range.1.is_finite()
                && speed_range.0 >= 0.0
                && speed_range.1 >= speed_range.0,
            "speed range must be a finite non-negative interval"
        );
        let positions = place_users_uniform(layout, count, rng);
        let destinations = place_users_uniform(layout, count, rng);
        let speeds_mps = (0..count)
            .map(|_| {
                if speed_range.0 == speed_range.1 {
                    speed_range.0
                } else {
                    rng.gen_range(speed_range.0..=speed_range.1)
                }
            })
            .collect();
        Self {
            positions,
            destinations,
            speeds_mps,
        }
    }

    /// Current user positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Per-user speeds in m/s.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds_mps
    }

    /// Advances all users by `dt`, re-planning on arrival or when a step
    /// would leave the coverage area.
    pub fn step<R: Rng + ?Sized>(&mut self, layout: &NetworkLayout, dt: Seconds, rng: &mut R) {
        for i in 0..self.positions.len() {
            let pos = self.positions[i];
            let dest = self.destinations[i];
            let travel = self.speeds_mps[i] * dt.as_secs();
            if travel <= 0.0 {
                continue;
            }
            let remaining = pos.distance(dest).as_meters();
            if remaining <= travel {
                // Arrive and pick a new destination.
                self.positions[i] = dest;
                self.destinations[i] = random_point(layout, rng);
                continue;
            }
            let next = Point2::new(
                pos.x + (dest.x - pos.x) / remaining * travel,
                pos.y + (dest.y - pos.y) / remaining * travel,
            );
            if layout.contains(next) {
                self.positions[i] = next;
            } else {
                // The straight segment exits the (non-convex) coverage:
                // stay put and re-plan toward a reachable destination.
                self.destinations[i] = random_point(layout, rng);
            }
        }
    }
}

fn random_point<R: Rng + ?Sized>(layout: &NetworkLayout, rng: &mut R) -> Point2 {
    place_users_uniform(layout, 1, rng)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::Meters;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> NetworkLayout {
        NetworkLayout::hexagonal(9, Meters::new(1000.0)).unwrap()
    }

    #[test]
    fn users_stay_in_coverage_forever() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = RandomWaypoint::new(&l, 20, (1.0, 30.0), &mut rng);
        for _ in 0..500 {
            model.step(&l, Seconds::new(5.0), &mut rng);
            for p in model.positions() {
                assert!(l.contains(*p));
            }
        }
    }

    #[test]
    fn zero_speed_users_never_move() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = RandomWaypoint::new(&l, 5, (0.0, 0.0), &mut rng);
        let before = model.positions().to_vec();
        for _ in 0..10 {
            model.step(&l, Seconds::new(10.0), &mut rng);
        }
        assert_eq!(model.positions(), before.as_slice());
    }

    #[test]
    fn moving_users_actually_move() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = RandomWaypoint::new(&l, 10, (5.0, 15.0), &mut rng);
        let before = model.positions().to_vec();
        model.step(&l, Seconds::new(10.0), &mut rng);
        let moved = model
            .positions()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(**b).as_meters() > 1.0)
            .count();
        assert!(moved >= 8, "only {moved}/10 users moved");
        // Step length is bounded by speed × dt.
        for ((a, b), v) in model.positions().iter().zip(&before).zip(model.speeds()) {
            assert!(a.distance(*b).as_meters() <= v * 10.0 + 1e-6);
        }
    }

    #[test]
    fn arrival_triggers_replanning() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = RandomWaypoint::new(&l, 3, (10.0, 10.0), &mut rng);
        // A huge step overshoots every destination: users land exactly on
        // their destinations and get fresh ones.
        let destinations_before = model.destinations.clone();
        model.step(&l, Seconds::new(1.0e6), &mut rng);
        for (p, d) in model.positions().iter().zip(&destinations_before) {
            assert_eq!(p, d, "user should land on its destination");
        }
        assert_ne!(model.destinations, destinations_before);
    }

    #[test]
    fn deterministic_under_seed() {
        let l = layout();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = RandomWaypoint::new(&l, 8, (1.0, 20.0), &mut rng);
            for _ in 0..50 {
                m.step(&l, Seconds::new(2.0), &mut rng);
            }
            m.positions().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "speed range")]
    fn invalid_speed_range_panics() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RandomWaypoint::new(&l, 1, (5.0, 1.0), &mut rng);
    }
}
