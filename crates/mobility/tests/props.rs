//! Property tests for the mobility substrate.

use mec_mobility::RandomWaypoint;
use mec_topology::NetworkLayout;
use mec_types::{Meters, Seconds};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every user stays inside coverage for any walk, and every step is
    /// bounded by speed × dt.
    #[test]
    fn walks_respect_coverage_and_speed_limits(
        cells in 1usize..12,
        users in 1usize..25,
        vmin in 0.0f64..10.0,
        spread in 0.0f64..20.0,
        dt in 0.1f64..60.0,
        seed in 0u64..500,
    ) {
        let layout = NetworkLayout::hexagonal(cells, Meters::new(1000.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = RandomWaypoint::new(&layout, users, (vmin, vmin + spread), &mut rng);
        for _ in 0..15 {
            let before = model.positions().to_vec();
            model.step(&layout, Seconds::new(dt), &mut rng);
            for ((after, prev), speed) in
                model.positions().iter().zip(&before).zip(model.speeds())
            {
                prop_assert!(layout.contains(*after));
                prop_assert!(
                    after.distance(*prev).as_meters() <= speed * dt + 1e-6,
                    "step exceeded speed limit"
                );
            }
        }
    }

    /// Speeds are drawn inside the configured interval.
    #[test]
    fn speeds_stay_in_range(
        vmin in 0.0f64..30.0,
        spread in 0.0f64..30.0,
        seed in 0u64..200,
    ) {
        let layout = NetworkLayout::hexagonal(4, Meters::new(1000.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = RandomWaypoint::new(&layout, 12, (vmin, vmin + spread), &mut rng);
        for v in model.speeds() {
            prop_assert!((vmin..=vmin + spread + 1e-12).contains(v));
        }
    }
}
