//! Pluggable admission control for overload.
//!
//! Every arrival passes through an [`AdmissionPolicy`] before it enters
//! the schedulable population. Under overload an operator either turns
//! users away ([`Reject`](AdmissionDecision::Reject)) or admits them as
//! permanently local ([`ForceLocal`](AdmissionDecision::ForceLocal)) —
//! they consume no uplink subchannel and no server compute, so the
//! scheduled population stays bounded.

/// What the engine knows when an arrival asks to be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionContext {
    /// Users currently in the system (scheduled + forced-local).
    pub active_users: usize,
    /// Users currently eligible for offloading decisions.
    pub scheduled_users: usize,
    /// Users admitted as forced-local.
    pub forced_local_users: usize,
    /// Total offloading capacity `S · N` of the network.
    pub offload_slots: usize,
}

/// The verdict on one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit into the schedulable population.
    Admit,
    /// Admit, but pin to local execution (never offloads).
    ForceLocal,
    /// Turn the user away entirely.
    Reject,
}

/// How a [`CapacityGate`] treats arrivals beyond its limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowAction {
    /// Reject overload arrivals.
    Reject,
    /// Admit overload arrivals as forced-local.
    ForceLocal,
}

/// Decides, per arrival, whether a user enters the schedulable
/// population. Implementations must be deterministic functions of the
/// context (and their own state) for seeded runs to reproduce.
pub trait AdmissionPolicy: Send {
    /// Display name (for reports and logs).
    fn name(&self) -> &str;
    /// The verdict for one arrival under `ctx`.
    fn decide(&mut self, ctx: &AdmissionContext) -> AdmissionDecision;
}

/// Admits everyone into the schedulable population (the default; TTSA
/// itself decides who actually offloads).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &str {
        "admit-all"
    }

    fn decide(&mut self, _ctx: &AdmissionContext) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
}

/// Caps the schedulable population at `max_scheduled` users; arrivals
/// beyond the cap are handled per [`OverflowAction`].
#[derive(Debug, Clone, Copy)]
pub struct CapacityGate {
    /// Maximum schedulable population.
    pub max_scheduled: usize,
    /// What happens to arrivals beyond the cap.
    pub overflow: OverflowAction,
}

impl CapacityGate {
    /// A gate that rejects beyond `max_scheduled`.
    pub fn rejecting(max_scheduled: usize) -> Self {
        Self {
            max_scheduled,
            overflow: OverflowAction::Reject,
        }
    }

    /// A gate that degrades to forced-local beyond `max_scheduled`.
    pub fn forcing_local(max_scheduled: usize) -> Self {
        Self {
            max_scheduled,
            overflow: OverflowAction::ForceLocal,
        }
    }
}

impl AdmissionPolicy for CapacityGate {
    fn name(&self) -> &str {
        match self.overflow {
            OverflowAction::Reject => "capacity-gate/reject",
            OverflowAction::ForceLocal => "capacity-gate/force-local",
        }
    }

    fn decide(&mut self, ctx: &AdmissionContext) -> AdmissionDecision {
        if ctx.scheduled_users < self.max_scheduled {
            AdmissionDecision::Admit
        } else {
            match self.overflow {
                OverflowAction::Reject => AdmissionDecision::Reject,
                OverflowAction::ForceLocal => AdmissionDecision::ForceLocal,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(scheduled: usize) -> AdmissionContext {
        AdmissionContext {
            active_users: scheduled,
            scheduled_users: scheduled,
            forced_local_users: 0,
            offload_slots: 27,
        }
    }

    #[test]
    fn admit_all_always_admits() {
        let mut p = AdmitAll;
        assert_eq!(p.decide(&ctx(0)), AdmissionDecision::Admit);
        assert_eq!(p.decide(&ctx(10_000)), AdmissionDecision::Admit);
        assert_eq!(p.name(), "admit-all");
    }

    #[test]
    fn capacity_gate_switches_at_the_cap() {
        let mut reject = CapacityGate::rejecting(5);
        assert_eq!(reject.decide(&ctx(4)), AdmissionDecision::Admit);
        assert_eq!(reject.decide(&ctx(5)), AdmissionDecision::Reject);
        assert_eq!(reject.decide(&ctx(6)), AdmissionDecision::Reject);
        assert_eq!(reject.name(), "capacity-gate/reject");

        let mut degrade = CapacityGate::forcing_local(5);
        assert_eq!(degrade.decide(&ctx(4)), AdmissionDecision::Admit);
        assert_eq!(degrade.decide(&ctx(5)), AdmissionDecision::ForceLocal);
        assert_eq!(degrade.name(), "capacity-gate/force-local");
    }
}
