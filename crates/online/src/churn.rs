//! The event source feeding the engine: a pluggable arrival process.
//!
//! The engine does not care *how* churn events are produced — it drains
//! whatever the configured [`ChurnProcess`] yields, in time order. The
//! stock implementation replays a precomputed
//! [`ChurnTrace`](mec_workloads::ChurnTrace) (typically from
//! [`PoissonChurn`](mec_workloads::PoissonChurn)); custom processes
//! (deterministic schedules, trace files, diurnal rates) just implement
//! the trait.

use mec_types::Seconds;
use mec_workloads::{ChurnEvent, ChurnTrace, PoissonChurn};

/// A stream of arrival/departure events, consumed in time order.
///
/// Implementations must yield events monotonically: once `drain_until(t)`
/// has been called, no event at or before `t` may appear later. They must
/// also be deterministic for seeded engine runs to reproduce.
pub trait ChurnProcess: Send {
    /// Appends every not-yet-delivered event with `at <= now` to `out`,
    /// in time order.
    fn drain_until(&mut self, now: Seconds, out: &mut Vec<ChurnEvent>);
}

/// Replays a precomputed [`ChurnTrace`].
#[derive(Debug, Clone)]
pub struct TraceChurn {
    events: Vec<ChurnEvent>,
    next: usize,
}

impl TraceChurn {
    /// Wraps a trace for replay.
    pub fn new(trace: ChurnTrace) -> Self {
        Self {
            events: trace.into_events(),
            next: 0,
        }
    }

    /// Convenience: generates a seeded [`PoissonChurn`] trace over
    /// `horizon` and wraps it.
    pub fn poisson(model: &PoissonChurn, horizon: Seconds, seed: u64) -> Self {
        Self::new(model.trace(horizon, seed))
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl ChurnProcess for TraceChurn {
    fn drain_until(&mut self, now: Seconds, out: &mut Vec<ChurnEvent>) {
        while self.next < self.events.len() && self.events[self.next].at.as_secs() <= now.as_secs()
        {
            out.push(self.events[self.next]);
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workloads::ChurnEventKind;

    fn event(at: f64, user: u64, kind: ChurnEventKind) -> ChurnEvent {
        ChurnEvent {
            at: Seconds::new(at),
            user,
            kind,
        }
    }

    #[test]
    fn drains_in_windows_without_replay() {
        let trace = ChurnTrace::from_events(vec![
            event(0.0, 0, ChurnEventKind::Arrival),
            event(3.0, 1, ChurnEventKind::Arrival),
            event(7.0, 0, ChurnEventKind::Departure),
        ]);
        let mut process = TraceChurn::new(trace);
        assert_eq!(process.remaining(), 3);

        let mut out = Vec::new();
        process.drain_until(Seconds::new(0.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].user, 0);

        out.clear();
        process.drain_until(Seconds::new(5.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].user, 1);

        out.clear();
        process.drain_until(Seconds::new(100.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ChurnEventKind::Departure);
        assert_eq!(process.remaining(), 0);

        // Nothing left.
        out.clear();
        process.drain_until(Seconds::new(1000.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn poisson_constructor_matches_manual_wrapping() {
        let model = PoissonChurn::new(3, 0.2, Seconds::new(50.0)).unwrap();
        let a = TraceChurn::poisson(&model, Seconds::new(100.0), 9);
        let b = TraceChurn::new(model.trace(Seconds::new(100.0), 9));
        assert_eq!(a.remaining(), b.remaining());
    }
}
