//! The event source feeding the engine: a pluggable arrival process.
//!
//! The engine does not care *how* churn events are produced — it drains
//! whatever the configured [`ChurnProcess`] yields, in time order. The
//! stock implementation replays a precomputed
//! [`ChurnTrace`](mec_workloads::ChurnTrace) (typically from
//! [`PoissonChurn`](mec_workloads::PoissonChurn)); custom processes
//! (deterministic schedules, trace files, diurnal rates) just implement
//! the trait.

use mec_types::{Error, Seconds};
use mec_workloads::{ChurnEvent, ChurnEventKind, ChurnTrace, PoissonChurn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of arrival/departure events, consumed in time order.
///
/// Implementations must yield events monotonically: once `drain_until(t)`
/// has been called, no event at or before `t` may appear later. They must
/// also be deterministic for seeded engine runs to reproduce.
pub trait ChurnProcess: Send {
    /// Appends every not-yet-delivered event with `at <= now` to `out`,
    /// in time order.
    fn drain_until(&mut self, now: Seconds, out: &mut Vec<ChurnEvent>);

    /// Scales the process's arrival rate by `factor` (timeline
    /// `load_ramp` events call this). Precomputed traces cannot change
    /// rate after the fact, so the default is a no-op; rate-aware
    /// processes such as [`AdaptivePoissonChurn`] override it.
    fn scale_rate(&mut self, _factor: f64) {}
}

/// Replays a precomputed [`ChurnTrace`].
#[derive(Debug, Clone)]
pub struct TraceChurn {
    events: Vec<ChurnEvent>,
    next: usize,
}

impl TraceChurn {
    /// Wraps a trace for replay.
    pub fn new(trace: ChurnTrace) -> Self {
        Self {
            events: trace.into_events(),
            next: 0,
        }
    }

    /// Convenience: generates a seeded [`PoissonChurn`] trace over
    /// `horizon` and wraps it.
    pub fn poisson(model: &PoissonChurn, horizon: Seconds, seed: u64) -> Self {
        Self::new(model.trace(horizon, seed))
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl ChurnProcess for TraceChurn {
    fn drain_until(&mut self, now: Seconds, out: &mut Vec<ChurnEvent>) {
        while self.next < self.events.len() && self.events[self.next].at.as_secs() <= now.as_secs()
        {
            out.push(self.events[self.next]);
            self.next += 1;
        }
    }
}

/// A Poisson arrival process generated *lazily*, so its rate can change
/// mid-run: timeline `load_ramp` events multiply the arrival rate and
/// every later inter-arrival gap is drawn at the new rate (the pending
/// gap is rescaled proportionally). Departures are exponential sojourns
/// scheduled at each arrival, exactly like
/// [`PoissonChurn`](mec_workloads::PoissonChurn).
///
/// Runs are deterministic functions of `(parameters, seed, the times at
/// which `scale_rate` is called)` — the engine calls it at epoch
/// boundaries, which are themselves deterministic.
#[derive(Debug, Clone)]
pub struct AdaptivePoissonChurn {
    rng: StdRng,
    rate_hz: f64,
    mean_sojourn_s: f64,
    /// Absolute time of the next (not yet emitted) arrival.
    next_arrival_s: f64,
    /// Time the pending inter-arrival gap was anchored at (its draw
    /// time); rate changes rescale the gap relative to this point.
    anchor_s: f64,
    next_id: u64,
    /// Scheduled but not yet emitted departures, sorted by time.
    pending: Vec<ChurnEvent>,
}

impl AdaptivePoissonChurn {
    /// Creates the process: `initial_users` arrive at `t = 0`, later
    /// arrivals follow a Poisson process of `arrival_rate_hz`, and every
    /// user stays an exponential sojourn of mean `mean_sojourn`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a negative/non-finite rate
    /// or a non-positive sojourn.
    pub fn new(
        initial_users: usize,
        arrival_rate_hz: f64,
        mean_sojourn: Seconds,
        seed: u64,
    ) -> Result<Self, Error> {
        if !arrival_rate_hz.is_finite() || arrival_rate_hz < 0.0 {
            return Err(Error::invalid(
                "arrival_rate_hz",
                "must be finite and non-negative",
            ));
        }
        if !mean_sojourn.as_secs().is_finite() || mean_sojourn.as_secs() <= 0.0 {
            return Err(Error::invalid("mean_sojourn", "must be positive"));
        }
        let mean_sojourn_s = mean_sojourn.as_secs();
        let mut this = Self {
            rng: StdRng::seed_from_u64(seed),
            rate_hz: arrival_rate_hz,
            mean_sojourn_s,
            next_arrival_s: f64::INFINITY,
            anchor_s: 0.0,
            next_id: 0,
            pending: Vec::new(),
        };
        // Initial population: arrivals at t = 0 with their departures.
        for _ in 0..initial_users {
            let id = this.next_id;
            this.next_id += 1;
            this.insert_pending(ChurnEvent {
                at: Seconds::new(0.0),
                user: id,
                kind: ChurnEventKind::Arrival,
            });
            let sojourn = sample_exponential(mean_sojourn_s, &mut this.rng);
            this.insert_pending(ChurnEvent {
                at: Seconds::new(sojourn),
                user: id,
                kind: ChurnEventKind::Departure,
            });
        }
        this.next_arrival_s = this.draw_gap(0.0);
        Ok(this)
    }

    /// Current arrival rate (after any ramps).
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    fn draw_gap(&mut self, from_s: f64) -> f64 {
        self.anchor_s = from_s;
        if self.rate_hz > 0.0 {
            from_s + sample_exponential(1.0 / self.rate_hz, &mut self.rng)
        } else {
            f64::INFINITY
        }
    }

    fn insert_pending(&mut self, event: ChurnEvent) {
        // Stable order: time, then arrivals before departures, then id —
        // the canonical trace order.
        let key = |e: &ChurnEvent| {
            (
                e.at.as_secs(),
                matches!(e.kind, ChurnEventKind::Departure),
                e.user,
            )
        };
        let pos = self.pending.partition_point(|e| key(e) <= key(&event));
        self.pending.insert(pos, event);
    }
}

impl ChurnProcess for AdaptivePoissonChurn {
    fn drain_until(&mut self, now: Seconds, out: &mut Vec<ChurnEvent>) {
        let now_s = now.as_secs();
        loop {
            let pending_at = self.pending.first().map(|e| e.at.as_secs());
            let arrival_due =
                self.next_arrival_s <= now_s && pending_at.is_none_or(|p| self.next_arrival_s <= p);
            if arrival_due {
                let at = self.next_arrival_s;
                let id = self.next_id;
                self.next_id += 1;
                out.push(ChurnEvent {
                    at: Seconds::new(at),
                    user: id,
                    kind: ChurnEventKind::Arrival,
                });
                let sojourn = sample_exponential(self.mean_sojourn_s, &mut self.rng);
                self.insert_pending(ChurnEvent {
                    at: Seconds::new(at + sojourn),
                    user: id,
                    kind: ChurnEventKind::Departure,
                });
                self.next_arrival_s = self.draw_gap(at);
            } else if pending_at.is_some_and(|p| p <= now_s) {
                out.push(self.pending.remove(0));
            } else {
                return;
            }
        }
    }

    fn scale_rate(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate factor must be positive"
        );
        self.rate_hz *= factor;
        if self.next_arrival_s.is_finite() {
            // Rescale the pending gap so the memoryless property holds at
            // the new rate.
            self.next_arrival_s = self.anchor_s + (self.next_arrival_s - self.anchor_s) / factor;
        } else if self.rate_hz > 0.0 {
            self.next_arrival_s = self.draw_gap(self.anchor_s);
        }
    }
}

/// Inverse-CDF exponential sampling (mirrors the private helper in
/// `mec_workloads::churn`).
fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(at: f64, user: u64, kind: ChurnEventKind) -> ChurnEvent {
        ChurnEvent {
            at: Seconds::new(at),
            user,
            kind,
        }
    }

    #[test]
    fn drains_in_windows_without_replay() {
        let trace = ChurnTrace::from_events(vec![
            event(0.0, 0, ChurnEventKind::Arrival),
            event(3.0, 1, ChurnEventKind::Arrival),
            event(7.0, 0, ChurnEventKind::Departure),
        ]);
        let mut process = TraceChurn::new(trace);
        assert_eq!(process.remaining(), 3);

        let mut out = Vec::new();
        process.drain_until(Seconds::new(0.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].user, 0);

        out.clear();
        process.drain_until(Seconds::new(5.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].user, 1);

        out.clear();
        process.drain_until(Seconds::new(100.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ChurnEventKind::Departure);
        assert_eq!(process.remaining(), 0);

        // Nothing left.
        out.clear();
        process.drain_until(Seconds::new(1000.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn poisson_constructor_matches_manual_wrapping() {
        let model = PoissonChurn::new(3, 0.2, Seconds::new(50.0)).unwrap();
        let a = TraceChurn::poisson(&model, Seconds::new(100.0), 9);
        let b = TraceChurn::new(model.trace(Seconds::new(100.0), 9));
        assert_eq!(a.remaining(), b.remaining());
    }

    #[test]
    fn adaptive_poisson_is_deterministic_and_ordered() {
        let run = |seed: u64| {
            let mut p = AdaptivePoissonChurn::new(4, 0.2, Seconds::new(30.0), seed).unwrap();
            let mut out = Vec::new();
            for t in [0.0, 10.0, 20.0, 50.0, 100.0] {
                p.drain_until(Seconds::new(t), &mut out);
            }
            out
        };
        let a = run(3);
        assert_eq!(a, run(3));
        assert_ne!(a, run(4));
        // Time order, arrivals at t = 0 for the initial population.
        assert!(a.windows(2).all(|w| w[0].at.as_secs() <= w[1].at.as_secs()));
        assert_eq!(
            a.iter()
                .filter(|e| e.at.as_secs() == 0.0 && e.kind == ChurnEventKind::Arrival)
                .count(),
            4
        );
        // Every departure follows its own arrival.
        for e in a.iter().filter(|e| e.kind == ChurnEventKind::Departure) {
            let arr = a
                .iter()
                .find(|x| x.user == e.user && x.kind == ChurnEventKind::Arrival)
                .expect("departure has an arrival");
            assert!(arr.at.as_secs() <= e.at.as_secs());
        }
    }

    #[test]
    fn ramped_rate_accelerates_arrivals() {
        let horizon = 400.0;
        let arrivals = |ramp: Option<f64>| {
            let mut p = AdaptivePoissonChurn::new(0, 0.05, Seconds::new(1e9), 7).unwrap();
            let mut out = Vec::new();
            p.drain_until(Seconds::new(horizon / 2.0), &mut out);
            if let Some(factor) = ramp {
                p.scale_rate(factor);
            }
            p.drain_until(Seconds::new(horizon), &mut out);
            out.iter()
                .filter(|e| e.kind == ChurnEventKind::Arrival)
                .count()
        };
        let flat = arrivals(None);
        let ramped = arrivals(Some(8.0));
        assert!(
            ramped > flat,
            "8x ramp should add arrivals: flat {flat}, ramped {ramped}"
        );
        // A precomputed trace ignores ramps (default no-op).
        let model = PoissonChurn::new(1, 0.1, Seconds::new(50.0)).unwrap();
        let mut t = TraceChurn::poisson(&model, Seconds::new(100.0), 1);
        let before = t.remaining();
        t.scale_rate(100.0);
        assert_eq!(t.remaining(), before);
    }

    #[test]
    fn zero_rate_stays_silent_even_after_ramps() {
        let mut p = AdaptivePoissonChurn::new(0, 0.0, Seconds::new(10.0), 0).unwrap();
        p.scale_rate(5.0);
        let mut out = Vec::new();
        p.drain_until(Seconds::new(1e6), &mut out);
        assert!(out.is_empty());
        assert_eq!(p.rate_hz(), 0.0);
    }
}
