//! The event-driven online scheduling engine.
//!
//! [`OnlineEngine::step`] advances one scheduling epoch:
//!
//! 1. drain churn events due now (departures free their slots and
//!    finalize SLA records; arrivals pass admission and spawn into the
//!    mobility model),
//! 2. rebuild the epoch's [`Scenario`] at the survivors' current
//!    positions and *patch* the previous [`Assignment`] onto the new
//!    population ([`Assignment::patched`] — survivors keep their slots),
//! 3. re-solve with TTSA: a warm-started refresh seeded from the patched
//!    decision on the incremental evaluation path
//!    ([`ResolveMode::WarmStart`]) or a full cold anneal
//!    ([`ResolveMode::Cold`]),
//! 4. score every active user against the SLA deadline and emit a
//!    serializable [`OnlineEpochReport`].
//!
//! Everything is driven by seeded RNG streams, so a run is a pure
//! function of `(params, config, churn trace, seed)` — equal seeds give
//! bit-identical report streams.

use crate::admission::{AdmissionContext, AdmissionDecision, AdmissionPolicy};
use crate::churn::ChurnProcess;
use crate::events::{EngineEvent, EventSchedule, TimedEvent};
use crate::sla::{CompletedUser, SlaLog};
use mec_mobility::RandomWaypoint;
use mec_system::{Assignment, Evaluator, Scenario};
use mec_topology::{NetworkLayout, Point2};
use mec_types::{effective_parallelism, DeviceProfile, Error, Seconds, ServerId, Task, UserId};
use mec_workloads::{ChurnEvent, ChurnEventKind, ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsajs::{anneal, anneal_from, temper_from, NeighborhoodKernel, ResolveMode, TtsaConfig};

/// User ids injected by flash-crowd events live in a high range so they
/// can never collide with churn-process ids.
const INJECTED_ID_BASE: u64 = 1 << 40;

/// Engine-level knobs of an online run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Simulated time between scheduling epochs.
    pub epoch_duration: Seconds,
    /// Per-user speed range in m/s (random-waypoint motion).
    pub speed_range_mps: (f64, f64),
    /// Whether shadowing is redrawn each epoch.
    pub redraw_shadowing: bool,
    /// The full TTSA schedule used for cold solves (and as the base of
    /// warm refreshes).
    pub base: TtsaConfig,
    /// How epochs after the first re-solve.
    pub mode: ResolveMode,
    /// Per-task completion-time SLA deadline.
    pub deadline: Seconds,
    /// Explicit cap on solver worker threads for warm-tempered epochs.
    /// `None` defers to `TSAJS_THREADS` and then the hardware count (see
    /// [`effective_parallelism`]).
    #[serde(default)]
    pub threads: Option<usize>,
}

impl OnlineConfig {
    /// Pedestrian motion (0.5–2 m/s), 10 s epochs, shadowing redrawn,
    /// paper-default TTSA base, warm refreshes of 3000 proposals (enough
    /// to land within 1% of a cold solve at U = 90 under 10% churn — see
    /// EXPERIMENTS.md), and a 1 s deadline (the local execution time of
    /// the default task, so local execution exactly meets it).
    pub fn pedestrian() -> Self {
        Self {
            epoch_duration: Seconds::new(10.0),
            speed_range_mps: (0.5, 2.0),
            redraw_shadowing: true,
            base: TtsaConfig::paper_default(),
            mode: ResolveMode::warm(3_000),
            deadline: Seconds::new(1.0),
            threads: None,
        }
    }

    /// Replaces the base TTSA schedule.
    pub fn with_base(mut self, base: TtsaConfig) -> Self {
        self.base = base;
        self
    }

    /// Replaces the re-solve mode.
    pub fn with_mode(mut self, mode: ResolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the SLA deadline.
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = deadline;
        self
    }

    /// Replaces the epoch duration.
    pub fn with_epoch_duration(mut self, duration: Seconds) -> Self {
        self.epoch_duration = duration;
        self
    }

    /// Replaces the speed range.
    pub fn with_speed_range(mut self, range_mps: (f64, f64)) -> Self {
        self.speed_range_mps = range_mps;
        self
    }

    /// Caps solver worker threads (`None` = `TSAJS_THREADS`, then
    /// hardware).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive durations or
    /// deadlines, an invalid speed range, or invalid TTSA/mode settings.
    pub fn validate(&self) -> Result<(), Error> {
        self.base.validate()?;
        self.mode.validate()?;
        if !self.epoch_duration.as_secs().is_finite() || self.epoch_duration.as_secs() <= 0.0 {
            return Err(Error::invalid("epoch_duration", "must be positive"));
        }
        if !self.deadline.as_secs().is_finite() || self.deadline.as_secs() <= 0.0 {
            return Err(Error::invalid("deadline", "must be positive"));
        }
        let (lo, hi) = self.speed_range_mps;
        if !lo.is_finite() || !hi.is_finite() || lo < 0.0 || hi < lo {
            return Err(Error::invalid(
                "speed_range_mps",
                "must be a finite non-negative interval",
            ));
        }
        Ok(())
    }
}

/// What one scheduling epoch did — the engine's streamable output.
///
/// Deliberately excludes wall-clock timing so that equal seeds produce
/// identical report streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineEpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Simulated time at the start of the epoch.
    pub time_s: f64,
    /// Users in the system this epoch (scheduled + forced-local).
    pub active_users: usize,
    /// Users eligible for offloading decisions.
    pub scheduled: usize,
    /// Users pinned to local execution by admission.
    pub forced_local: usize,
    /// Arrivals admitted this epoch.
    pub arrivals: usize,
    /// Departures processed this epoch.
    pub departures: usize,
    /// Arrivals rejected by admission this epoch.
    pub rejected: usize,
    /// Achieved system utility `J*(X)` over the scheduled population.
    pub utility: f64,
    /// Users offloading this epoch.
    pub num_offloaded: usize,
    /// Surviving scheduled users whose slot changed since last epoch.
    pub reassignments: usize,
    /// Neighborhood proposals spent re-solving this epoch.
    pub proposals: u64,
    /// Whether the re-solve warm-started from the patched decision.
    pub warm_started: bool,
    /// Fraction of active users whose task met the deadline this epoch.
    pub deadline_hit_rate: f64,
    /// Timeline events applied at this epoch boundary.
    pub events_applied: usize,
    /// Servers in service this epoch (after outages/recoveries).
    pub servers_up: usize,
}

impl OnlineEpochReport {
    /// Every JSON field of a serialized report, in declaration order —
    /// the schema contract that JSONL consumers of the `online`
    /// subcommand rely on. Keep in lockstep with the struct definition;
    /// the golden-schema tests diff serialized output against this list.
    pub const FIELD_NAMES: [&'static str; 16] = [
        "epoch",
        "time_s",
        "active_users",
        "scheduled",
        "forced_local",
        "arrivals",
        "departures",
        "rejected",
        "utility",
        "num_offloaded",
        "reassignments",
        "proposals",
        "warm_started",
        "deadline_hit_rate",
        "events_applied",
        "servers_up",
    ];
}

/// One live user, aligned index-for-index with the mobility model.
#[derive(Debug, Clone, Copy)]
struct ActiveUser {
    id: u64,
    arrived_at_s: f64,
    forced_local: bool,
    epochs: u32,
    deadline_hits: u32,
    benefit_sum: f64,
}

/// The previous epoch's decision, keyed by stable user ids.
#[derive(Debug, Clone)]
struct PrevEpoch {
    sched_ids: Vec<u64>,
    /// Full-layout server indices behind the assignment's (possibly
    /// outage-compacted) server axis.
    server_ids: Vec<usize>,
    assignment: Assignment,
}

/// The long-running online scheduler (see the module docs for the epoch
/// pipeline).
pub struct OnlineEngine {
    params: ExperimentParams,
    config: OnlineConfig,
    layout: NetworkLayout,
    churn: Box<dyn ChurnProcess>,
    admission: Box<dyn AdmissionPolicy>,
    motion: RandomWaypoint,
    users: Vec<ActiveUser>,
    motion_rng: StdRng,
    chain_rng: StdRng,
    kernel: NeighborhoodKernel,
    clock_s: f64,
    epoch: usize,
    seed: u64,
    prev: Option<PrevEpoch>,
    last: Option<(Scenario, Assignment)>,
    sla: SlaLog,
    local_time_s: f64,
    rejected_total: u64,
    event_buf: Vec<ChurnEvent>,
    /// Scripted timeline events, drained at epoch boundaries.
    events: EventSchedule,
    /// Which full-layout servers are in service.
    server_up: Vec<bool>,
    /// Dedicated stream for event randomness (flash-crowd sojourns,
    /// drift selection) so schedules never perturb motion or solving.
    event_rng: StdRng,
    /// Flash-crowd arrivals/departures waiting to be merged with churn.
    injected: Vec<ChurnEvent>,
    injected_next_id: u64,
    events_applied_total: usize,
    timed_buf: Vec<TimedEvent>,
}

impl OnlineEngine {
    /// Creates an engine over the given network parameters.
    /// `params.num_users` is ignored — the population is whatever the
    /// churn process produces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for degenerate parameters or
    /// configuration.
    pub fn new(
        params: ExperimentParams,
        config: OnlineConfig,
        churn: Box<dyn ChurnProcess>,
        admission: Box<dyn AdmissionPolicy>,
        seed: u64,
    ) -> Result<Self, Error> {
        config.validate()?;
        let layout = ScenarioGenerator::new(params).layout()?;
        let mut motion_rng = StdRng::seed_from_u64(seed);
        let motion = RandomWaypoint::new(&layout, 0, config.speed_range_mps, &mut motion_rng);
        // Forced-local users never enter a Scenario, so their completion
        // time comes straight from the task's local cost.
        let device = DeviceProfile::new(params.user_cpu, params.kappa, params.tx_power)?;
        let task = match params.task_output {
            Some(output) => Task::with_output(params.task_data, params.task_workload, output)?,
            None => Task::new(params.task_data, params.task_workload)?,
        };
        let local_time_s = task.local_cost(&device).time.as_secs();
        Ok(Self {
            params,
            config,
            layout,
            churn,
            admission,
            motion,
            users: Vec::new(),
            motion_rng,
            // Decorrelate the solver stream from the motion stream (the
            // same split `mec_mobility::dynamic` uses).
            chain_rng: StdRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D),
            kernel: NeighborhoodKernel::new(),
            clock_s: 0.0,
            epoch: 0,
            seed,
            prev: None,
            last: None,
            sla: SlaLog::default(),
            local_time_s,
            rejected_total: 0,
            event_buf: Vec::new(),
            events: EventSchedule::empty(),
            server_up: vec![true; params.num_servers],
            event_rng: StdRng::seed_from_u64(seed ^ 0x94D0_49BB_1331_11EB),
            injected: Vec::new(),
            injected_next_id: INJECTED_ID_BASE,
            events_applied_total: 0,
            timed_buf: Vec::new(),
        })
    }

    /// Attaches a scripted event timeline; events fire at the first epoch
    /// boundary at or after their timestamp, before churn is drained.
    #[must_use]
    pub fn with_events(mut self, schedule: EventSchedule) -> Self {
        self.events = schedule;
        self
    }

    /// Applies every timeline event due at the current clock. Returns how
    /// many fired.
    fn apply_events(&mut self) -> usize {
        let mut due = std::mem::take(&mut self.timed_buf);
        due.clear();
        self.events
            .drain_until(Seconds::new(self.clock_s), &mut due);
        let fired = due.len();
        for timed in &due {
            match timed.event {
                EngineEvent::ServerOutage { server } => {
                    if server < self.server_up.len() {
                        self.server_up[server] = false;
                    }
                }
                EngineEvent::ServerRecovery { server } => {
                    if server < self.server_up.len() {
                        self.server_up[server] = true;
                    }
                }
                EngineEvent::FlashCrowd {
                    arrivals,
                    mean_sojourn,
                } => {
                    let now = Seconds::new(self.clock_s);
                    for _ in 0..arrivals {
                        let id = self.injected_next_id;
                        self.injected_next_id += 1;
                        let sojourn =
                            sample_exponential(mean_sojourn.as_secs(), &mut self.event_rng);
                        self.injected.push(ChurnEvent {
                            at: now,
                            user: id,
                            kind: ChurnEventKind::Arrival,
                        });
                        self.injected.push(ChurnEvent {
                            at: Seconds::new(self.clock_s + sojourn),
                            user: id,
                            kind: ChurnEventKind::Departure,
                        });
                    }
                    // Keep the pending queue time-sorted (arrivals are at
                    // `now`, departures later; a stable sort preserves the
                    // arrival-before-departure order per user).
                    self.injected.sort_by(|a, b| {
                        a.at.as_secs()
                            .partial_cmp(&b.at.as_secs())
                            .expect("event times are finite")
                    });
                }
                EngineEvent::LoadRamp { rate_factor } => {
                    self.churn.scale_rate(rate_factor);
                }
                EngineEvent::HotspotDrift { cell, fraction } => {
                    let stations = self.layout.stations();
                    if cell >= stations.len() || self.users.is_empty() {
                        continue;
                    }
                    let target = stations[cell];
                    let count = ((self.users.len() as f64 * fraction).ceil() as usize)
                        .clamp(1, self.users.len());
                    // Choose a distinct random subset (partial
                    // Fisher-Yates over population indices).
                    let mut order: Vec<usize> = (0..self.users.len()).collect();
                    for k in 0..count {
                        let pick = self.event_rng.gen_range(k..order.len());
                        order.swap(k, pick);
                    }
                    for &i in &order[..count] {
                        // Jitter inside the cell so the crowd does not
                        // collapse onto a single point; fall back to the
                        // station itself if the jitter exits coverage.
                        let dx = self.event_rng.gen_range(-100.0..=100.0);
                        let dy = self.event_rng.gen_range(-100.0..=100.0);
                        let jittered = Point2::new(target.x + dx, target.y + dy);
                        let dest = if self.layout.contains(jittered) {
                            jittered
                        } else {
                            target
                        };
                        self.motion.relocate_user(i, dest);
                    }
                }
            }
        }
        due.clear();
        self.timed_buf = due;
        self.events_applied_total += fired;
        fired
    }

    fn population_counts(&self) -> (usize, usize) {
        let forced = self.users.iter().filter(|u| u.forced_local).count();
        (self.users.len() - forced, forced)
    }

    fn apply_churn(&mut self) -> (usize, usize, usize) {
        let mut events = std::mem::take(&mut self.event_buf);
        events.clear();
        self.churn
            .drain_until(Seconds::new(self.clock_s), &mut events);
        // Merge flash-crowd injections due now (both queues are already
        // time-sorted; injected events break ties after churn events).
        let due = self
            .injected
            .partition_point(|e| e.at.as_secs() <= self.clock_s);
        if due > 0 {
            events.extend(self.injected.drain(..due));
            events.sort_by(|a, b| {
                a.at.as_secs()
                    .partial_cmp(&b.at.as_secs())
                    .expect("event times are finite")
            });
        }
        let offload_slots =
            self.server_up.iter().filter(|&&up| up).count() * self.params.num_subchannels;
        let (mut arrivals, mut departures, mut rejected) = (0, 0, 0);
        for e in &events {
            match e.kind {
                ChurnEventKind::Arrival => {
                    let (scheduled, forced) = self.population_counts();
                    let ctx = AdmissionContext {
                        active_users: self.users.len(),
                        scheduled_users: scheduled,
                        forced_local_users: forced,
                        offload_slots,
                    };
                    let decision = self.admission.decide(&ctx);
                    if decision == AdmissionDecision::Reject {
                        rejected += 1;
                        continue;
                    }
                    self.motion.add_user(
                        &self.layout,
                        self.config.speed_range_mps,
                        &mut self.motion_rng,
                    );
                    self.users.push(ActiveUser {
                        id: e.user,
                        arrived_at_s: e.at.as_secs(),
                        forced_local: decision == AdmissionDecision::ForceLocal,
                        epochs: 0,
                        deadline_hits: 0,
                        benefit_sum: 0.0,
                    });
                    arrivals += 1;
                }
                ChurnEventKind::Departure => {
                    // Departures of rejected users have no one to remove.
                    if let Some(idx) = self.users.iter().position(|u| u.id == e.user) {
                        let user = self.users.remove(idx);
                        self.motion.remove_user(idx);
                        departures += 1;
                        self.sla.push(CompletedUser {
                            id: user.id,
                            arrived_at_s: user.arrived_at_s,
                            departed_at_s: e.at.as_secs(),
                            time_in_system_s: e.at.as_secs() - user.arrived_at_s,
                            epochs_served: user.epochs,
                            deadline_hits: user.deadline_hits,
                            total_benefit: user.benefit_sum,
                            forced_local: user.forced_local,
                        });
                    }
                }
            }
        }
        self.event_buf = events;
        (arrivals, departures, rejected)
    }

    /// Advances one scheduling epoch and reports what happened.
    ///
    /// # Errors
    ///
    /// Propagates scenario-generation, patching and evaluation errors.
    pub fn step(&mut self) -> Result<OnlineEpochReport, Error> {
        let events_applied = self.apply_events();
        let (arrivals, departures, rejected) = self.apply_churn();

        // Full-layout indices of the servers in service this epoch; the
        // epoch scenario's compact server axis maps through this list.
        let cur_server_ids: Vec<usize> = self
            .server_up
            .iter()
            .enumerate()
            .filter_map(|(i, &up)| up.then_some(i))
            .collect();
        let up_count = cur_server_ids.len();

        // The schedulable subset, in population order. `sched_pos[v]` is
        // the population index behind scenario user `v`.
        let mut sched_pos = Vec::new();
        let mut sched_ids = Vec::new();
        let mut positions = Vec::new();
        for (i, u) in self.users.iter().enumerate() {
            if !u.forced_local {
                sched_pos.push(i);
                sched_ids.push(u.id);
                positions.push(self.motion.positions()[i]);
            }
        }

        let epoch_seed = if self.config.redraw_shadowing {
            self.seed
                .wrapping_add(1 + self.epoch as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        } else {
            self.seed
        };

        let deadline_s = self.config.deadline.as_secs();
        let mut epoch_hits = 0usize;
        let (utility, num_offloaded, proposals, reassignments, warm_started);
        let prev_assignment;
        if sched_ids.is_empty() || up_count == 0 {
            // Nothing to schedule: an empty population, or a total outage
            // (offload-eligible users get no service until a recovery).
            (
                utility,
                num_offloaded,
                proposals,
                reassignments,
                warm_started,
            ) = (0.0, 0, 0, 0, false);
            prev_assignment = Assignment::with_dims(0, up_count, self.params.num_subchannels);
            self.last = None;
        } else {
            let generator = ScenarioGenerator::new(self.params.with_users(sched_ids.len()));
            let scenario = generator.generate_at_subset(&positions, epoch_seed, &self.server_up)?;
            // Patch the previous decision onto the new population:
            // survivors keep their `(s, j)` slots, arrivals start local,
            // departures free capacity.
            let old_of_new: Option<Vec<Option<UserId>>> = self.prev.as_ref().map(|prev| {
                sched_ids
                    .iter()
                    .map(|id| {
                        prev.sched_ids
                            .iter()
                            .position(|old| old == id)
                            .map(UserId::new)
                    })
                    .collect()
            });
            let patched = match (&self.prev, &old_of_new) {
                (Some(prev), Some(map)) if prev.server_ids == cur_server_ids => {
                    Some(prev.assignment.patched(map)?)
                }
                (Some(prev), Some(map)) => {
                    // The server axis changed (outage or recovery):
                    // re-home surviving slots by full-layout server id,
                    // dropping users whose server left service.
                    let mut remapped = Assignment::with_dims(
                        sched_ids.len(),
                        up_count,
                        self.params.num_subchannels,
                    );
                    for (v, old) in map.iter().enumerate() {
                        let Some(old) = old else { continue };
                        let Some((s_old, j)) = prev.assignment.slot(*old) else {
                            continue;
                        };
                        let full = prev.server_ids[s_old.index()];
                        if let Some(s_new) = cur_server_ids.iter().position(|&f| f == full) {
                            remapped.assign(UserId::new(v), ServerId::new(s_new), j)?;
                        }
                    }
                    Some(remapped)
                }
                _ => None,
            };
            let warm_eligible = matches!(
                self.config.mode,
                ResolveMode::WarmStart { .. } | ResolveMode::WarmTempered { .. }
            ) && patched.is_some();
            let outcome = if warm_eligible {
                let refresh = self.config.mode.refresh_config(&self.config.base);
                let warm = patched.clone().expect("warm_eligible implies a patch");
                if let ResolveMode::WarmTempered { tempering, .. } = self.config.mode {
                    // A shortened warm ladder: every replica starts from
                    // the patched schedule, the rung temperatures anchor
                    // at the refresh temperature, and the refresh budget
                    // bounds the whole ensemble (quench included).
                    temper_from(
                        &scenario,
                        &tempering,
                        &refresh,
                        &self.kernel,
                        &mut self.chain_rng,
                        effective_parallelism(self.config.threads),
                        warm,
                    )
                } else {
                    anneal_from(&scenario, &refresh, &self.kernel, &mut self.chain_rng, warm)
                }
            } else {
                anneal(
                    &scenario,
                    &self.config.base,
                    &self.kernel,
                    &mut self.chain_rng,
                )
            };
            warm_started = warm_eligible;
            reassignments = match (&patched, &old_of_new) {
                (Some(patched), Some(map)) => (0..sched_ids.len())
                    .filter(|&v| {
                        map[v].is_some()
                            && patched.slot(UserId::new(v))
                                != outcome.assignment.slot(UserId::new(v))
                    })
                    .count(),
                _ => 0,
            };

            let evaluation = Evaluator::new(&scenario).evaluate(&outcome.assignment)?;
            for (v, &pi) in sched_pos.iter().enumerate() {
                let metrics = &evaluation.users[v];
                let user = &mut self.users[pi];
                user.epochs += 1;
                user.benefit_sum += metrics.utility;
                if metrics.completion_time.as_secs() <= deadline_s {
                    user.deadline_hits += 1;
                    epoch_hits += 1;
                }
            }
            utility = outcome.objective;
            num_offloaded = outcome.assignment.num_offloaded();
            proposals = outcome.proposals;
            prev_assignment = outcome.assignment.clone();
            self.last = Some((scenario, outcome.assignment));
        }

        // Forced-local users run on their own CPU every epoch.
        for user in self.users.iter_mut().filter(|u| u.forced_local) {
            user.epochs += 1;
            if self.local_time_s <= deadline_s {
                user.deadline_hits += 1;
                epoch_hits += 1;
            }
        }

        let active = self.users.len();
        let report = OnlineEpochReport {
            epoch: self.epoch,
            time_s: self.clock_s,
            active_users: active,
            scheduled: sched_ids.len(),
            forced_local: active - sched_ids.len(),
            arrivals,
            departures,
            rejected,
            utility,
            num_offloaded,
            reassignments,
            proposals,
            warm_started,
            deadline_hit_rate: if active == 0 {
                1.0
            } else {
                epoch_hits as f64 / active as f64
            },
            events_applied,
            servers_up: up_count,
        };

        self.prev = Some(PrevEpoch {
            sched_ids,
            server_ids: cur_server_ids,
            assignment: prev_assignment,
        });
        self.rejected_total += rejected as u64;
        self.motion.step(
            &self.layout,
            self.config.epoch_duration,
            &mut self.motion_rng,
        );
        self.clock_s += self.config.epoch_duration.as_secs();
        self.epoch += 1;
        Ok(report)
    }

    /// Runs `epochs` consecutive steps, collecting their reports.
    ///
    /// # Errors
    ///
    /// As [`step`](Self::step); stops at the first failing epoch.
    pub fn run(&mut self, epochs: usize) -> Result<Vec<OnlineEpochReport>, Error> {
        (0..epochs).map(|_| self.step()).collect()
    }

    /// Epochs simulated so far.
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }

    /// Current simulated time.
    pub fn clock(&self) -> Seconds {
        Seconds::new(self.clock_s)
    }

    /// Users currently in the system.
    pub fn active_users(&self) -> usize {
        self.users.len()
    }

    /// Total arrivals rejected by admission so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total
    }

    /// Total timeline events applied so far.
    pub fn events_applied(&self) -> usize {
        self.events_applied_total
    }

    /// Per-server in-service flags (full layout indices).
    pub fn servers_up(&self) -> &[bool] {
        &self.server_up
    }

    /// The SLA log of departed users.
    pub fn sla(&self) -> &SlaLog {
        &self.sla
    }

    /// The engine configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Caps solver worker threads mid-flight. A pure wall-clock lever:
    /// the tempering engine's results are identical at any worker count,
    /// so this never perturbs a run (which is why it is safe to apply on
    /// top of a declarative spec).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.config.threads = threads;
    }

    /// The most recent epoch's scenario and decision (`None` before the
    /// first step and while the scheduled population is empty) — the hook
    /// property tests use to audit feasibility and objective consistency.
    pub fn last_schedule(&self) -> Option<(&Scenario, &Assignment)> {
        self.last.as_ref().map(|(s, a)| (s, a))
    }
}

/// Inverse-CDF exponential draw; `1.0 - gen::<f64>()` keeps the argument
/// of `ln` strictly positive.
fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmitAll, CapacityGate};
    use crate::churn::TraceChurn;
    use mec_workloads::PoissonChurn;
    use tsajs::TemperingConfig;

    fn quick_config() -> OnlineConfig {
        OnlineConfig::pedestrian()
            .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
            .with_mode(ResolveMode::warm(120))
    }

    fn engine(seed: u64, initial: usize, rate: f64) -> OnlineEngine {
        let params = ExperimentParams::paper_default()
            .with_users(initial)
            .with_servers(4);
        let churn = PoissonChurn::new(initial, rate, Seconds::new(60.0)).unwrap();
        OnlineEngine::new(
            params,
            quick_config(),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(400.0), seed)),
            Box::new(AdmitAll),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn thread_cap_is_honored_without_changing_results() {
        // Tempered refreshes resolve their worker count from
        // `config.threads`; the tempering engine guarantees the result is
        // identical at any worker count, so the knob must be a pure
        // wall-clock lever.
        let tempered = quick_config().with_mode(ResolveMode::WarmTempered {
            refresh_budget: 150,
            refresh_temperature: 0.05,
            tempering: TemperingConfig::paper_default().with_replicas(2),
        });
        let run = |threads: Option<usize>| {
            let params = ExperimentParams::paper_default()
                .with_users(5)
                .with_servers(4);
            let churn = PoissonChurn::new(5, 0.05, Seconds::new(60.0)).unwrap();
            let mut e = OnlineEngine::new(
                params,
                tempered.with_threads(threads),
                Box::new(TraceChurn::poisson(&churn, Seconds::new(400.0), 3)),
                Box::new(AdmitAll),
                3,
            )
            .unwrap();
            e.run(3).unwrap()
        };
        let capped = run(Some(1));
        let wide = run(Some(4));
        let default = run(None);
        assert_eq!(capped, wide);
        assert_eq!(capped, default);
    }

    #[test]
    fn report_serialization_matches_the_declared_field_names() {
        let mut e = engine(7, 4, 0.05);
        let report = e.step().unwrap();
        let value: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        let serde_json::Value::Object(entries) = value else {
            panic!("a report serializes to an object");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            OnlineEpochReport::FIELD_NAMES,
            "FIELD_NAMES must mirror the struct declaration order"
        );
    }

    #[test]
    fn epochs_advance_population_and_reports_are_sane() {
        let mut e = engine(1, 6, 0.1);
        let reports = e.run(5).unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(e.epochs_run(), 5);
        assert_eq!(e.clock().as_secs(), 50.0);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.epoch, i);
            assert_eq!(r.time_s, i as f64 * 10.0);
            assert!(r.utility.is_finite());
            assert!(r.scheduled + r.forced_local == r.active_users);
            assert!(r.num_offloaded <= r.scheduled);
            assert!((0.0..=1.0).contains(&r.deadline_hit_rate));
        }
        // The first epoch has the initial arrivals and cold-solves.
        assert_eq!(reports[0].arrivals, 6);
        assert!(!reports[0].warm_started);
        // Every later epoch with a predecessor warm-starts.
        assert!(reports[1..].iter().all(|r| r.warm_started));
    }

    #[test]
    fn warm_refreshes_undercut_the_cold_first_solve() {
        let mut e = engine(3, 8, 0.05);
        let reports = e.run(4).unwrap();
        let cold = reports[0].proposals;
        for r in &reports[1..] {
            assert!(r.proposals <= 120 + 30, "budget exceeded: {}", r.proposals);
            assert!(r.proposals < cold);
        }
    }

    #[test]
    fn departures_finalize_sla_records() {
        // Short sojourns: everyone leaves quickly.
        let params = ExperimentParams::paper_default().with_servers(4);
        let churn = PoissonChurn::new(5, 0.0, Seconds::new(15.0)).unwrap();
        let mut e = OnlineEngine::new(
            params,
            quick_config(),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(1000.0), 2)),
            Box::new(AdmitAll),
            2,
        )
        .unwrap();
        let reports = e.run(20).unwrap();
        assert_eq!(e.sla().len(), 5, "all users departed");
        assert_eq!(e.active_users(), 0);
        for u in e.sla().completed() {
            assert!(u.time_in_system_s > 0.0);
            assert!(u.deadline_hits <= u.epochs_served);
        }
        // Once empty, epochs still run and report zero utility.
        let tail = reports.last().unwrap();
        assert_eq!(tail.active_users, 0);
        assert_eq!(tail.utility, 0.0);
        assert_eq!(tail.deadline_hit_rate, 1.0);
    }

    #[test]
    fn rejecting_gate_bounds_the_scheduled_population() {
        let params = ExperimentParams::paper_default().with_servers(4);
        let churn = PoissonChurn::new(12, 0.3, Seconds::new(500.0)).unwrap();
        let mut e = OnlineEngine::new(
            params,
            quick_config(),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(300.0), 4)),
            Box::new(CapacityGate::rejecting(8)),
            4,
        )
        .unwrap();
        let reports = e.run(10).unwrap();
        assert!(reports.iter().all(|r| r.scheduled <= 8));
        assert!(e.rejected_total() > 0, "overload should reject someone");
        assert!(reports.iter().all(|r| r.forced_local == 0));
    }

    #[test]
    fn force_local_gate_admits_overload_without_scheduling_it() {
        let params = ExperimentParams::paper_default().with_servers(4);
        let churn = PoissonChurn::new(12, 0.3, Seconds::new(500.0)).unwrap();
        let mut e = OnlineEngine::new(
            params,
            quick_config(),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(300.0), 4)),
            Box::new(CapacityGate::forcing_local(8)),
            4,
        )
        .unwrap();
        let reports = e.run(10).unwrap();
        assert!(reports.iter().all(|r| r.scheduled <= 8));
        assert_eq!(e.rejected_total(), 0);
        assert!(reports.iter().any(|r| r.forced_local > 0));
        // Forced-local users still meet the default deadline (local time
        // for the default task is exactly 1 s).
        assert!(reports.iter().all(|r| r.deadline_hit_rate > 0.0));
    }

    #[test]
    fn cold_mode_never_warm_starts() {
        let params = ExperimentParams::paper_default().with_servers(4);
        let churn = PoissonChurn::new(6, 0.05, Seconds::new(100.0)).unwrap();
        let mut e = OnlineEngine::new(
            params,
            quick_config().with_mode(ResolveMode::Cold),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(100.0), 5)),
            Box::new(AdmitAll),
            5,
        )
        .unwrap();
        let reports = e.run(3).unwrap();
        assert!(reports.iter().all(|r| !r.warm_started));
        // Reassignments are still tracked against the previous epoch.
        assert_eq!(reports[0].reassignments, 0);
    }

    #[test]
    fn last_schedule_is_feasible_and_consistent() {
        let mut e = engine(6, 8, 0.1);
        let report = e.step().unwrap();
        let (scenario, assignment) = e.last_schedule().expect("scheduled an epoch");
        assignment.verify_feasible(scenario).unwrap();
        let recomputed = Evaluator::new(scenario).objective(assignment);
        assert!((report.utility - recomputed).abs() <= 1e-9 * recomputed.abs().max(1.0));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let params = ExperimentParams::paper_default();
        let churn = PoissonChurn::new(1, 0.0, Seconds::new(10.0)).unwrap();
        let bad = quick_config().with_epoch_duration(Seconds::new(0.0));
        assert!(OnlineEngine::new(
            params,
            bad,
            Box::new(TraceChurn::poisson(&churn, Seconds::new(10.0), 0)),
            Box::new(AdmitAll),
            0,
        )
        .is_err());
        assert!(quick_config()
            .with_deadline(Seconds::new(-1.0))
            .validate()
            .is_err());
        assert!(quick_config()
            .with_speed_range((2.0, 1.0))
            .validate()
            .is_err());
        assert!(quick_config()
            .with_mode(ResolveMode::warm(0))
            .validate()
            .is_err());
    }

    fn timed(at: f64, event: EngineEvent) -> TimedEvent {
        TimedEvent {
            at: Seconds::new(at),
            event,
        }
    }

    #[test]
    fn an_empty_schedule_changes_nothing() {
        let baseline: Vec<_> = engine(11, 5, 0.05).run(4).unwrap();
        let mut e = engine(11, 5, 0.05).with_events(EventSchedule::empty());
        let with_events = e.run(4).unwrap();
        assert_eq!(baseline, with_events, "no events must be a no-op");
        assert!(baseline.iter().all(|r| r.servers_up == 4));
        assert!(baseline.iter().all(|r| r.events_applied == 0));
    }

    #[test]
    fn outage_masks_the_server_and_recovery_restores_it() {
        let mut e = engine(12, 8, 0.02).with_events(EventSchedule::new(vec![
            timed(15.0, EngineEvent::ServerOutage { server: 1 }),
            timed(35.0, EngineEvent::ServerRecovery { server: 1 }),
        ]));
        let reports = e.run(6).unwrap();
        // Events fire at the first epoch boundary at/after their time:
        // epochs start at t = 0, 10, 20, ... so 15 s fires at epoch 2.
        assert_eq!(reports[0].servers_up, 4);
        assert_eq!(reports[1].servers_up, 4);
        assert_eq!(reports[2].servers_up, 3);
        assert_eq!(reports[2].events_applied, 1);
        assert_eq!(reports[3].servers_up, 3);
        assert_eq!(
            reports[4].servers_up, 4,
            "recovery at 35 s fires at epoch 4"
        );
        assert_eq!(e.events_applied(), 2);
        assert_eq!(e.servers_up(), &[true, true, true, true]);
        for r in &reports {
            assert!(r.utility.is_finite());
        }
    }

    #[test]
    fn flash_crowd_spikes_arrivals_and_then_drains() {
        let params = ExperimentParams::paper_default().with_servers(4);
        let churn = PoissonChurn::new(3, 0.0, Seconds::new(1.0e9)).unwrap();
        let mut e = OnlineEngine::new(
            params,
            quick_config(),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(500.0), 9)),
            Box::new(AdmitAll),
            9,
        )
        .unwrap()
        .with_events(EventSchedule::new(vec![timed(
            20.0,
            EngineEvent::FlashCrowd {
                arrivals: 6,
                mean_sojourn: Seconds::new(15.0),
            },
        )]));
        let reports = e.run(12).unwrap();
        assert_eq!(reports[0].active_users, 3);
        assert_eq!(reports[2].arrivals, 6, "burst lands at epoch 2");
        assert_eq!(reports[2].active_users, 9);
        // Burst users depart on their exponential sojourns; the base
        // population (near-infinite sojourn) stays.
        let tail = reports.last().unwrap();
        assert!(tail.active_users < 9, "burst should drain");
        assert!(tail.active_users >= 3);
        assert!(
            !e.sla().is_empty(),
            "departed burst users reach the SLA log"
        );
    }

    #[test]
    fn hotspot_drift_moves_users_without_breaking_the_run() {
        let mut e = engine(13, 10, 0.0).with_events(EventSchedule::new(vec![timed(
            10.0,
            EngineEvent::HotspotDrift {
                cell: 0,
                fraction: 0.5,
            },
        )]));
        let reports = e.run(3).unwrap();
        assert_eq!(reports[1].events_applied, 1);
        for r in &reports {
            assert!(r.utility.is_finite());
        }
        let (scenario, assignment) = e.last_schedule().expect("population is non-empty");
        assignment.verify_feasible(scenario).unwrap();
    }

    #[test]
    fn event_runs_are_deterministic_under_equal_seeds() {
        let schedule = || {
            EventSchedule::new(vec![
                timed(10.0, EngineEvent::ServerOutage { server: 2 }),
                timed(
                    20.0,
                    EngineEvent::FlashCrowd {
                        arrivals: 4,
                        mean_sojourn: Seconds::new(25.0),
                    },
                ),
                timed(40.0, EngineEvent::ServerRecovery { server: 2 }),
            ])
        };
        let run = |seed: u64| {
            engine(seed, 6, 0.05)
                .with_events(schedule())
                .run(6)
                .unwrap()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }
}
