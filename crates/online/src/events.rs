//! Injected timeline events: scripted disruptions an online run replays.
//!
//! A scenario spec's `[[timeline]]` compiles into an [`EventSchedule`]
//! which the engine drains at each epoch boundary, exactly like churn:
//! every event with `at <= now` fires before the epoch is scheduled.
//! Events are deterministic — a schedule is data, so equal seeds plus
//! equal schedules give bit-identical runs.

use mec_types::Seconds;

/// One scripted disruption the engine knows how to apply.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// The server leaves service: its gains are masked out of the epoch
    /// scenario and users it hosted are re-patched elsewhere.
    ServerOutage {
        /// Index of the failing server.
        server: usize,
    },
    /// A previously-failed server returns to service.
    ServerRecovery {
        /// Index of the recovering server.
        server: usize,
    },
    /// A burst of simultaneous arrivals (drawn through admission like any
    /// other arrival; sojourns are exponential with the given mean).
    FlashCrowd {
        /// Number of users arriving at once.
        arrivals: usize,
        /// Mean sojourn of burst users.
        mean_sojourn: Seconds,
    },
    /// Scales the arrival rate of an adaptive churn process.
    LoadRamp {
        /// Multiplicative factor on the arrival rate.
        rate_factor: f64,
    },
    /// Teleports a fraction of active users next to one cell's station.
    HotspotDrift {
        /// Target cell (server index).
        cell: usize,
        /// Fraction of active users that drift, in `(0, 1]`.
        fraction: f64,
    },
}

impl EngineEvent {
    /// Short display name (epoch logs).
    pub fn name(&self) -> &'static str {
        match self {
            Self::ServerOutage { .. } => "server_outage",
            Self::ServerRecovery { .. } => "server_recovery",
            Self::FlashCrowd { .. } => "flash_crowd",
            Self::LoadRamp { .. } => "load_ramp",
            Self::HotspotDrift { .. } => "hotspot_drift",
        }
    }
}

/// An event pinned to a point of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event fires.
    pub at: Seconds,
    /// What happens.
    pub event: EngineEvent,
}

/// A time-ordered queue of [`TimedEvent`]s, drained like churn.
#[derive(Debug, Clone, Default)]
pub struct EventSchedule {
    events: Vec<TimedEvent>,
    next: usize,
}

impl EventSchedule {
    /// Builds a schedule, sorting events by time (ties keep insertion
    /// order, so spec order breaks ties deterministically).
    pub fn new(mut events: Vec<TimedEvent>) -> Self {
        events.sort_by(|a, b| {
            a.at.as_secs()
                .partial_cmp(&b.at.as_secs())
                .expect("event times are finite")
        });
        Self { events, next: 0 }
    }

    /// An empty schedule (no scripted events).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Appends every not-yet-delivered event with `at <= now` to `out`,
    /// in time order.
    pub fn drain_until(&mut self, now: Seconds, out: &mut Vec<TimedEvent>) {
        while self.next < self.events.len() && self.events[self.next].at.as_secs() <= now.as_secs()
        {
            out.push(self.events[self.next].clone());
            self.next += 1;
        }
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Total number of events in the schedule.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: f64, event: EngineEvent) -> TimedEvent {
        TimedEvent {
            at: Seconds::new(t),
            event,
        }
    }

    #[test]
    fn drains_in_time_order_without_replay() {
        let mut s = EventSchedule::new(vec![
            at(20.0, EngineEvent::ServerRecovery { server: 1 }),
            at(5.0, EngineEvent::ServerOutage { server: 1 }),
            at(
                5.0,
                EngineEvent::FlashCrowd {
                    arrivals: 3,
                    mean_sojourn: Seconds::new(30.0),
                },
            ),
        ]);
        assert_eq!(s.len(), 3);
        let mut out = Vec::new();
        s.drain_until(Seconds::new(10.0), &mut out);
        assert_eq!(out.len(), 2);
        // Stable sort: spec order breaks the 5.0 s tie.
        assert_eq!(out[0].event.name(), "server_outage");
        assert_eq!(out[1].event.name(), "flash_crowd");
        assert_eq!(s.remaining(), 1);
        out.clear();
        s.drain_until(Seconds::new(10.0), &mut out);
        assert!(out.is_empty(), "no replay");
        s.drain_until(Seconds::new(100.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(s.remaining(), 0);
    }
}
