//! Event-driven online scheduling for the TSAJS MEC model.
//!
//! The offline solver ([`tsajs`]) answers "given this snapshot of users,
//! what is the best joint offloading/subchannel/compute decision?". This
//! crate keeps that answer *alive* while the population churns: users
//! arrive by a Poisson process, sojourn for an exponential time, move
//! between epochs, and depart — and every scheduling epoch the engine
//! patches the previous decision onto the surviving population and
//! re-solves with a warm-started, reduced-temperature TTSA refresh on the
//! incremental evaluation path.
//!
//! The moving parts:
//!
//! - [`OnlineEngine`] — the step/run API; one [`OnlineEpochReport`] per
//!   epoch, plus an [`SlaLog`] of per-user outcomes at departure.
//! - [`ChurnProcess`] — pluggable arrival/departure event source;
//!   [`TraceChurn`] replays a seeded
//!   [`PoissonChurn`](mec_workloads::PoissonChurn) trace.
//! - [`AdmissionPolicy`] — pluggable overload control; [`AdmitAll`] and
//!   [`CapacityGate`] (reject vs. force-local) are built in.
//!
//! # Example
//!
//! ```
//! use mec_online::{AdmitAll, OnlineConfig, OnlineEngine, TraceChurn};
//! use mec_types::Seconds;
//! use mec_workloads::{ExperimentParams, PoissonChurn};
//! use tsajs::{ResolveMode, TtsaConfig};
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let params = ExperimentParams::paper_default().with_servers(3);
//! let config = OnlineConfig::pedestrian()
//!     .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
//!     .with_mode(ResolveMode::warm(150));
//! let churn = PoissonChurn::new(6, 0.05, Seconds::new(120.0))?;
//! let mut engine = OnlineEngine::new(
//!     params,
//!     config,
//!     Box::new(TraceChurn::poisson(&churn, Seconds::new(100.0), 7)),
//!     Box::new(AdmitAll),
//!     7,
//! )?;
//! let reports = engine.run(3)?;
//! assert_eq!(reports.len(), 3);
//! assert!(reports.iter().all(|r| r.utility >= 0.0));
//! # Ok(())
//! # }
//! ```
//!
//! Determinism: a run is a pure function of `(params, config, churn,
//! seed)`. The engine derives its per-epoch scenario seeds and its solver
//! RNG stream exactly like `mec_mobility::dynamic`, so equal seeds yield
//! bit-identical report streams.

#![warn(missing_docs)]

pub mod admission;
pub mod churn;
pub mod engine;
pub mod events;
pub mod sla;

pub use admission::{
    AdmissionContext, AdmissionDecision, AdmissionPolicy, AdmitAll, CapacityGate, OverflowAction,
};
pub use churn::{AdaptivePoissonChurn, ChurnProcess, TraceChurn};
pub use engine::{OnlineConfig, OnlineEngine, OnlineEpochReport};
pub use events::{EngineEvent, EventSchedule, TimedEvent};
pub use sla::{CompletedUser, SlaLog};
