//! Per-user SLA accounting: deadline hits, accumulated benefit,
//! time-in-system.
//!
//! Every scheduling epoch scores each active user once (completion time
//! vs. the configured deadline, offloading benefit `J_u`); when the user
//! departs, its record is finalized into a [`CompletedUser`] entry of the
//! engine's [`SlaLog`].

use serde::{Deserialize, Serialize};

/// The finalized SLA record of one departed user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedUser {
    /// Stable user id (from the churn trace).
    pub id: u64,
    /// Arrival time (seconds of simulated time).
    pub arrived_at_s: f64,
    /// Departure time (seconds of simulated time).
    pub departed_at_s: f64,
    /// Sojourn `departed - arrived`.
    pub time_in_system_s: f64,
    /// Scheduling epochs the user was present for.
    pub epochs_served: u32,
    /// Epochs in which the user's task met the deadline.
    pub deadline_hits: u32,
    /// Sum of the per-epoch offloading benefit `J_u` (zero while local).
    pub total_benefit: f64,
    /// Whether admission pinned the user to local execution.
    pub forced_local: bool,
}

impl CompletedUser {
    /// Fraction of served epochs that met the deadline (1 for a user that
    /// departed before being scheduled at all — it was never violated).
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.epochs_served == 0 {
            1.0
        } else {
            f64::from(self.deadline_hits) / f64::from(self.epochs_served)
        }
    }
}

/// The append-only log of departed users' SLA outcomes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SlaLog {
    completed: Vec<CompletedUser>,
}

impl SlaLog {
    /// Appends a finalized record.
    pub fn push(&mut self, user: CompletedUser) {
        self.completed.push(user);
    }

    /// All finalized records, in departure order.
    pub fn completed(&self) -> &[CompletedUser] {
        &self.completed
    }

    /// Number of departed users.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no user has departed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Epoch-weighted deadline hit rate across all departed users
    /// (1 when no epochs were served at all).
    pub fn deadline_hit_rate(&self) -> f64 {
        let (hits, epochs) = self.completed.iter().fold((0u64, 0u64), |(h, e), u| {
            (
                h + u64::from(u.deadline_hits),
                e + u64::from(u.epochs_served),
            )
        });
        if epochs == 0 {
            1.0
        } else {
            hits as f64 / epochs as f64
        }
    }

    /// Mean time-in-system over departed users (0 when empty).
    pub fn mean_time_in_system_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(|u| u.time_in_system_s)
            .sum::<f64>()
            / self.completed.len() as f64
    }

    /// Mean accumulated benefit over departed users (0 when empty).
    pub fn mean_total_benefit(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(|u| u.total_benefit).sum::<f64>() / self.completed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(epochs: u32, hits: u32, sojourn: f64, benefit: f64) -> CompletedUser {
        CompletedUser {
            id: 0,
            arrived_at_s: 0.0,
            departed_at_s: sojourn,
            time_in_system_s: sojourn,
            epochs_served: epochs,
            deadline_hits: hits,
            total_benefit: benefit,
            forced_local: false,
        }
    }

    #[test]
    fn per_user_hit_rate() {
        assert_eq!(user(4, 3, 10.0, 0.0).deadline_hit_rate(), 0.75);
        assert_eq!(user(0, 0, 1.0, 0.0).deadline_hit_rate(), 1.0);
    }

    #[test]
    fn log_aggregates_epoch_weighted() {
        let mut log = SlaLog::default();
        assert!(log.is_empty());
        assert_eq!(log.deadline_hit_rate(), 1.0);
        assert_eq!(log.mean_time_in_system_s(), 0.0);
        log.push(user(4, 4, 10.0, 2.0));
        log.push(user(8, 2, 30.0, 1.0));
        assert_eq!(log.len(), 2);
        // (4 + 2) hits over (4 + 8) epochs — weighted, not averaged.
        assert!((log.deadline_hit_rate() - 0.5).abs() < 1e-12);
        assert!((log.mean_time_in_system_s() - 20.0).abs() < 1e-12);
        assert!((log.mean_total_benefit() - 1.5).abs() < 1e-12);
    }
}
