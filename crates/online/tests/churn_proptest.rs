//! Property tests: arbitrary arrive/depart/move interleavings keep the
//! patched online schedule feasible (constraints 12b–12d) and keep the
//! reported utility consistent with a fresh evaluation and with a fresh
//! [`IncrementalObjective`] resync.

use mec_online::{AdmitAll, CapacityGate, ChurnProcess, OnlineConfig, OnlineEngine};
use mec_system::{Evaluator, IncrementalObjective};
use mec_types::Seconds;
use mec_workloads::{ChurnEvent, ChurnEventKind, ExperimentParams};
use proptest::prelude::*;
use tsajs::{ResolveMode, TtsaConfig};

/// A scripted churn process built from a proptest-generated interleaving.
struct ScriptedChurn {
    events: Vec<ChurnEvent>,
    next: usize,
}

impl ChurnProcess for ScriptedChurn {
    fn drain_until(&mut self, now: Seconds, out: &mut Vec<ChurnEvent>) {
        while self.next < self.events.len() && self.events[self.next].at.as_secs() <= now.as_secs()
        {
            out.push(self.events[self.next]);
            self.next += 1;
        }
    }
}

/// Turns a list of ±deltas into a valid event script: positive entries
/// arrive fresh users, negative entries depart the oldest live user.
/// Events for step `k` land at `k * epoch_duration`.
fn script(deltas: &[i8], epoch_secs: f64) -> ScriptedChurn {
    let mut events = Vec::new();
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    for (k, &d) in deltas.iter().enumerate() {
        let at = Seconds::new(k as f64 * epoch_secs);
        if d >= 0 {
            for _ in 0..d {
                events.push(ChurnEvent {
                    at,
                    user: next_id,
                    kind: ChurnEventKind::Arrival,
                });
                live.push(next_id);
                next_id += 1;
            }
        } else {
            for _ in 0..(-d) {
                if live.is_empty() {
                    break;
                }
                let user = live.remove(0);
                events.push(ChurnEvent {
                    at,
                    user,
                    kind: ChurnEventKind::Departure,
                });
            }
        }
    }
    ScriptedChurn { events, next: 0 }
}

fn quick_config() -> OnlineConfig {
    OnlineConfig::pedestrian()
        .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
        .with_mode(ResolveMode::warm(100))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every epoch of an arbitrary interleaving the live schedule
    /// satisfies 12b–12d, the reported utility matches a fresh
    /// `Evaluator` pass, and a fresh `IncrementalObjective` built from
    /// the same assignment agrees after `resync()` — all within 1e-9.
    #[test]
    fn random_interleavings_keep_the_patched_schedule_valid(
        seed in 0u64..1_000,
        deltas in proptest::collection::vec(-3i8..=4, 3..8),
    ) {
        let params = ExperimentParams::paper_default().with_servers(4);
        let config = quick_config();
        let epoch_secs = config.epoch_duration.as_secs();
        let mut engine = OnlineEngine::new(
            params,
            config,
            Box::new(script(&deltas, epoch_secs)),
            Box::new(AdmitAll),
            seed,
        ).unwrap();

        for _ in 0..deltas.len() {
            let report = engine.step().unwrap();
            prop_assert_eq!(
                report.scheduled + report.forced_local,
                report.active_users
            );
            if let Some((scenario, assignment)) = engine.last_schedule() {
                // 12b–12d: one slot per user, no subchannel reuse within
                // a server, slots within range.
                assignment.verify_feasible(scenario).unwrap();
                let fresh = Evaluator::new(scenario).objective(assignment);
                prop_assert!(
                    (report.utility - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
                    "reported {} vs fresh {}", report.utility, fresh
                );
                let mut inc =
                    IncrementalObjective::new(scenario, assignment.clone()).unwrap();
                prop_assert!(
                    (inc.current() - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
                    "incremental {} vs fresh {}", inc.current(), fresh
                );
                inc.resync();
                prop_assert!(
                    (inc.current() - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
                    "resynced {} vs fresh {}", inc.current(), fresh
                );
            } else {
                prop_assert_eq!(report.scheduled, 0);
                prop_assert_eq!(report.utility, 0.0);
            }
        }
    }

    /// A rejecting capacity gate never lets the scheduled population past
    /// its cap, no matter the interleaving.
    #[test]
    fn capacity_gate_holds_under_random_churn(
        seed in 0u64..1_000,
        deltas in proptest::collection::vec(0i8..=5, 3..6),
    ) {
        let params = ExperimentParams::paper_default().with_servers(3);
        let config = quick_config();
        let epoch_secs = config.epoch_duration.as_secs();
        let mut engine = OnlineEngine::new(
            params,
            config,
            Box::new(script(&deltas, epoch_secs)),
            Box::new(CapacityGate::rejecting(6)),
            seed,
        ).unwrap();
        for _ in 0..deltas.len() {
            let report = engine.step().unwrap();
            prop_assert!(report.scheduled <= 6);
        }
    }
}
