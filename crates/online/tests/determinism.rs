//! Seeded end-to-end determinism pins for the online engine.

use mec_online::{AdmitAll, CapacityGate, OnlineConfig, OnlineEngine, TraceChurn};
use mec_types::Seconds;
use mec_workloads::{ExperimentParams, PoissonChurn};
use tsajs::{ResolveMode, TtsaConfig};

fn quick_config() -> OnlineConfig {
    OnlineConfig::pedestrian()
        .with_base(TtsaConfig::paper_default().with_min_temperature(1e-2))
        .with_mode(ResolveMode::warm(150))
}

fn run(seed: u64, epochs: usize) -> (Vec<mec_online::OnlineEpochReport>, mec_online::SlaLog) {
    let params = ExperimentParams::paper_default().with_servers(4);
    let churn = PoissonChurn::new(8, 0.15, Seconds::new(80.0)).unwrap();
    let mut engine = OnlineEngine::new(
        params,
        quick_config(),
        Box::new(TraceChurn::poisson(&churn, Seconds::new(400.0), seed)),
        Box::new(AdmitAll),
        seed,
    )
    .unwrap();
    let reports = engine.run(epochs).unwrap();
    (reports, engine.sla().clone())
}

#[test]
fn same_seed_reproduces_the_full_report_stream() {
    let (a_reports, a_sla) = run(42, 12);
    let (b_reports, b_sla) = run(42, 12);
    assert_eq!(a_reports, b_reports);
    assert_eq!(a_sla, b_sla);
    // The stream must survive a serde round trip unchanged, since the CLI
    // emits it as JSON lines.
    for report in &a_reports {
        let line = serde_json::to_string(report).unwrap();
        let back: mec_online::OnlineEpochReport = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, report);
    }
}

#[test]
fn different_seeds_diverge() {
    let (a, _) = run(1, 8);
    let (b, _) = run(2, 8);
    assert_ne!(a, b);
}

#[test]
fn admission_policies_reproduce_too() {
    let params = ExperimentParams::paper_default().with_servers(4);
    let churn = PoissonChurn::new(12, 0.4, Seconds::new(300.0)).unwrap();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut engine = OnlineEngine::new(
            params,
            quick_config(),
            Box::new(TraceChurn::poisson(&churn, Seconds::new(200.0), 9)),
            Box::new(CapacityGate::forcing_local(8)),
            9,
        )
        .unwrap();
        runs.push(engine.run(10).unwrap());
    }
    assert_eq!(runs[0], runs[1]);
    assert!(runs[0].iter().any(|r| r.forced_local > 0));
}
