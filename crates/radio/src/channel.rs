//! Channel-gain generation: the `h[u][s][j]` tensor.

use crate::pathloss::{FreeSpace, LogDistance, PathLossModel};
use crate::shadowing::Shadowing;
use mec_topology::{NetworkLayout, Point2};
use mec_types::{Decibels, Error, ServerId, SubchannelId, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The large-scale channel model used to generate gains.
///
/// Gain from user `u` to station `s` is
/// `h = 10^(−(L(d_us) + X_shadow − G_ant)/10)` where `L` is the path loss,
/// `X_shadow ~ N(0, σ_sh²)` in dB, and `G_ant` a fixed antenna gain.
/// Fast fading is averaged out over the long-term association timescale
/// (§III-A.2), so by default the gain is identical across subchannels; an
/// optional per-subchannel dB jitter is available for sensitivity studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    path_loss: PathLossKind,
    shadowing_stddev_db: f64,
    shadowing_correlation: f64,
    antenna_gain_db: f64,
    subchannel_jitter_db: f64,
}

/// The deterministic path-loss component of a [`ChannelModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLossKind {
    /// `L = a + b·log10(d_km)` (the paper's model).
    LogDistance {
        /// Intercept at 1 km, in dB.
        intercept_db: f64,
        /// Slope in dB per decade of distance.
        slope_db_per_decade: f64,
    },
    /// Free-space loss at a carrier frequency.
    FreeSpace {
        /// Carrier frequency in Hz.
        carrier_hz: f64,
    },
}

impl PathLossKind {
    fn loss_db(&self, distance: mec_types::Meters) -> f64 {
        match *self {
            PathLossKind::LogDistance {
                intercept_db,
                slope_db_per_decade,
            } => LogDistance::new(intercept_db, slope_db_per_decade).loss_db(distance),
            PathLossKind::FreeSpace { carrier_hz } => FreeSpace::new(carrier_hz).loss_db(distance),
        }
    }
}

impl ChannelModel {
    /// The paper's model: `140.7 + 36.7·log10(d_km)` path loss, 8 dB
    /// shadowing, no extra antenna gain, no per-subchannel jitter.
    pub fn paper_default() -> Self {
        Self {
            path_loss: PathLossKind::LogDistance {
                intercept_db: mec_types::constants::PATHLOSS_INTERCEPT_DB,
                slope_db_per_decade: mec_types::constants::PATHLOSS_SLOPE_DB,
            },
            shadowing_stddev_db: mec_types::constants::SHADOWING_STDDEV_DB,
            shadowing_correlation: 0.0,
            antenna_gain_db: 0.0,
            subchannel_jitter_db: 0.0,
        }
    }

    /// A deterministic variant (shadowing disabled) for reproducible unit
    /// tests and worked examples.
    pub fn deterministic() -> Self {
        Self {
            shadowing_stddev_db: 0.0,
            ..Self::paper_default()
        }
    }

    /// Replaces the path-loss component.
    pub fn with_path_loss(mut self, path_loss: PathLossKind) -> Self {
        self.path_loss = path_loss;
        self
    }

    /// Sets the shadowing standard deviation in dB.
    ///
    /// # Panics
    ///
    /// Panics if negative or non-finite.
    pub fn with_shadowing_db(mut self, stddev_db: f64) -> Self {
        assert!(stddev_db.is_finite() && stddev_db >= 0.0);
        self.shadowing_stddev_db = stddev_db;
        self
    }

    /// Sets the inter-site shadowing correlation `ρ ∈ [0, 1]`: the
    /// shadowing on a user's links is `√ρ·a_u + √(1−ρ)·b_us` with a
    /// user-common component `a_u` — the standard 3GPP-style model
    /// (`ρ = 0.5` is typical; the paper's experiments use i.i.d.
    /// shadowing, `ρ = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `ρ ∉ [0, 1]`.
    pub fn with_shadowing_correlation(mut self, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "correlation must lie in [0, 1]");
        self.shadowing_correlation = rho;
        self
    }

    /// Sets a fixed antenna/array gain in dB applied to every link.
    pub fn with_antenna_gain_db(mut self, gain_db: f64) -> Self {
        self.antenna_gain_db = gain_db;
        self
    }

    /// Enables independent per-subchannel gain jitter (dB stddev). The
    /// paper's experiments keep this at zero.
    pub fn with_subchannel_jitter_db(mut self, stddev_db: f64) -> Self {
        assert!(stddev_db.is_finite() && stddev_db >= 0.0);
        self.subchannel_jitter_db = stddev_db;
        self
    }

    /// Generates the channel-gain tensor for `user_positions` against every
    /// station in `layout`, over `num_subchannels` subchannels.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        layout: &NetworkLayout,
        user_positions: &[Point2],
        num_subchannels: usize,
        rng: &mut R,
    ) -> ChannelGains {
        let num_users = user_positions.len();
        let num_servers = layout.num_stations();
        let mut shadowing = Shadowing::new(self.shadowing_stddev_db);
        let mut jitter = Shadowing::new(self.subchannel_jitter_db);
        let rho = self.shadowing_correlation;
        // Without per-subchannel jitter every subchannel carries the same
        // gain, so one value per (user, server) link suffices — the
        // compact representation city-scale instances rely on. The dense
        // path draws the exact same RNG stream it always did, and the
        // shared path draws none for the jitter, so both layouts are
        // bit-identical to the historical dense tensor.
        let shared = self.subchannel_jitter_db <= 0.0;
        let values_per_link = if shared { 1 } else { num_subchannels };
        let mut gains = vec![0.0; num_users * num_servers * values_per_link];
        for (u, pos) in user_positions.iter().enumerate() {
            // User-common shadowing component (correlated across stations).
            let common_db = if rho > 0.0 {
                shadowing.sample_db(rng)
            } else {
                0.0
            };
            for (s, station) in layout.stations().iter().enumerate() {
                let loss_db = self.path_loss.loss_db(pos.distance(*station));
                let link_db = if rho >= 1.0 {
                    common_db
                } else {
                    rho.sqrt() * common_db + (1.0 - rho).sqrt() * shadowing.sample_db(rng)
                };
                let base_db = -(loss_db + link_db) + self.antenna_gain_db;
                if shared {
                    gains[u * num_servers + s] = Decibels::new(base_db).to_linear();
                } else {
                    for j in 0..num_subchannels {
                        let db = base_db + jitter.sample_db(rng);
                        gains[(u * num_servers + s) * num_subchannels + j] =
                            Decibels::new(db).to_linear();
                    }
                }
            }
        }
        ChannelGains {
            num_users,
            num_servers,
            num_subchannels,
            shared,
            gains,
        }
    }
}

impl Default for ChannelModel {
    /// Defaults to [`ChannelModel::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Linear channel gains `h[u][s][j]` in one of two layouts.
///
/// * **Dense** — one value per `(u, s, j)` at
///   `gains[(u·S + s)·N + j]`: required when per-subchannel jitter makes
///   subchannels distinguishable.
/// * **Subchannel-shared** — one value per `(u, s)` at `gains[u·S + s]`,
///   identical across subchannels. This is exact for the paper's model
///   (fast fading averages out over the association timescale, §III-A.2)
///   and cuts storage by `N×`, which is what lets U=100k–1M metro
///   instances fit in memory.
///
/// Generated once per scenario; lookups during search are branch-free
/// multiplies into a flat buffer plus one well-predicted layout branch.
/// Equality is *logical*: two tensors compare equal iff every
/// `h[u][s][j]` matches, regardless of representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelGains {
    num_users: usize,
    num_servers: usize,
    num_subchannels: usize,
    /// True for the subchannel-shared layout. Serialized tensors from
    /// before this field existed were always dense, hence the default.
    #[serde(default)]
    shared: bool,
    gains: Vec<f64>,
}

impl PartialEq for ChannelGains {
    fn eq(&self, other: &Self) -> bool {
        if self.num_users != other.num_users
            || self.num_servers != other.num_servers
            || self.num_subchannels != other.num_subchannels
        {
            return false;
        }
        if self.shared == other.shared {
            return self.gains == other.gains;
        }
        // Mixed representations: a shared tensor equals a dense one iff
        // every subchannel of the dense tensor repeats the shared value.
        let (sh, dn) = if self.shared {
            (self, other)
        } else {
            (other, self)
        };
        (0..self.num_users * self.num_servers).all(|base| {
            let v = sh.gains[base];
            dn.gains[base * self.num_subchannels..(base + 1) * self.num_subchannels]
                .iter()
                .all(|&g| g == v)
        })
    }
}

impl ChannelGains {
    /// Builds a gain tensor from an explicit function of `(u, s, j)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if any produced gain is
    /// negative or non-finite.
    pub fn from_fn<F>(
        num_users: usize,
        num_servers: usize,
        num_subchannels: usize,
        mut f: F,
    ) -> Result<Self, Error>
    where
        F: FnMut(UserId, ServerId, SubchannelId) -> f64,
    {
        let mut gains = Vec::with_capacity(num_users * num_servers * num_subchannels);
        for u in 0..num_users {
            for s in 0..num_servers {
                for j in 0..num_subchannels {
                    let g = f(UserId::new(u), ServerId::new(s), SubchannelId::new(j));
                    if !g.is_finite() || g < 0.0 {
                        return Err(Error::invalid(
                            "h_us_j",
                            format!("gain for (u{u}, s{s}, j{j}) must be finite and >= 0, got {g}"),
                        ));
                    }
                    gains.push(g);
                }
            }
        }
        Ok(Self {
            num_users,
            num_servers,
            num_subchannels,
            shared: false,
            gains,
        })
    }

    /// Builds a *subchannel-shared* tensor from a function of `(u, s)`:
    /// every subchannel of a link carries the same gain, stored once.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if any produced gain is
    /// negative or non-finite.
    pub fn shared_from_fn<F>(
        num_users: usize,
        num_servers: usize,
        num_subchannels: usize,
        mut f: F,
    ) -> Result<Self, Error>
    where
        F: FnMut(UserId, ServerId) -> f64,
    {
        let mut gains = Vec::with_capacity(num_users * num_servers);
        for u in 0..num_users {
            for s in 0..num_servers {
                let g = f(UserId::new(u), ServerId::new(s));
                if !g.is_finite() || g < 0.0 {
                    return Err(Error::invalid(
                        "h_us",
                        format!("gain for (u{u}, s{s}) must be finite and >= 0, got {g}"),
                    ));
                }
                gains.push(g);
            }
        }
        Ok(Self {
            num_users,
            num_servers,
            num_subchannels,
            shared: true,
            gains,
        })
    }

    /// A tensor with the same gain on every link (useful in tests).
    pub fn uniform(
        num_users: usize,
        num_servers: usize,
        num_subchannels: usize,
        gain: f64,
    ) -> Result<Self, Error> {
        Self::from_fn(num_users, num_servers, num_subchannels, |_, _, _| gain)
    }

    /// Whether this tensor uses the subchannel-shared layout (gains
    /// identical across subchannels, stored once per link).
    #[inline]
    pub fn is_subchannel_shared(&self) -> bool {
        self.shared
    }

    /// Extracts the sub-tensor for the given users and servers,
    /// preserving the storage layout. New user `v` is old `users[v]` and
    /// new server `t` is old `servers[t]`; indices may repeat.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEntity`] for any out-of-range id.
    pub fn subset(&self, users: &[UserId], servers: &[ServerId]) -> Result<Self, Error> {
        for &u in users {
            if u.index() >= self.num_users {
                return Err(Error::UnknownEntity {
                    kind: "user",
                    index: u.index(),
                    count: self.num_users,
                });
            }
        }
        for &s in servers {
            if s.index() >= self.num_servers {
                return Err(Error::UnknownEntity {
                    kind: "server",
                    index: s.index(),
                    count: self.num_servers,
                });
            }
        }
        let values_per_link = if self.shared { 1 } else { self.num_subchannels };
        let mut gains = Vec::with_capacity(users.len() * servers.len() * values_per_link);
        for &u in users {
            for &s in servers {
                let base = (u.index() * self.num_servers + s.index()) * values_per_link;
                gains.extend_from_slice(&self.gains[base..base + values_per_link]);
            }
        }
        Ok(Self {
            num_users: users.len(),
            num_servers: servers.len(),
            num_subchannels: self.num_subchannels,
            shared: self.shared,
            gains,
        })
    }

    /// Number of users in the tensor.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of servers in the tensor.
    #[inline]
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of subchannels in the tensor.
    #[inline]
    pub fn num_subchannels(&self) -> usize {
        self.num_subchannels
    }

    /// The linear gain `h[u][s][j]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[inline]
    pub fn gain(&self, u: UserId, s: ServerId, j: SubchannelId) -> f64 {
        assert!(
            u.index() < self.num_users
                && s.index() < self.num_servers
                && j.index() < self.num_subchannels,
            "channel gain index out of range"
        );
        let base = u.index() * self.num_servers + s.index();
        if self.shared {
            self.gains[base]
        } else {
            self.gains[base * self.num_subchannels + j.index()]
        }
    }

    /// Percentiles of the per-user *best-server* gain in dB — a quick
    /// health check of a scenario's radio conditions (`q` in `[0, 1]`,
    /// nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or the tensor has no users.
    pub fn best_gain_percentile_db(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile must lie in [0, 1]");
        assert!(self.num_users > 0, "no users in the tensor");
        let mut best: Vec<f64> = (0..self.num_users)
            .map(|u| {
                let u = UserId::new(u);
                let s = self.best_server(u);
                10.0 * self.gain(u, s, SubchannelId::new(0)).log10()
            })
            .collect();
        best.sort_by(|a, b| a.partial_cmp(b).expect("gains are finite"));
        let rank = ((q * (best.len() - 1) as f64).round() as usize).min(best.len() - 1);
        best[rank]
    }

    /// The strongest server for a user, judged by subchannel-0 gain
    /// (gains are identical across subchannels in the paper's model).
    pub fn best_server(&self, u: UserId) -> ServerId {
        let mut best = 0usize;
        let mut best_g = f64::NEG_INFINITY;
        for s in 0..self.num_servers {
            let g = self.gain(u, ServerId::new(s), SubchannelId::new(0));
            if g > best_g {
                best_g = g;
                best = s;
            }
        }
        ServerId::new(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::{constants, Meters};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> NetworkLayout {
        NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE).unwrap()
    }

    #[test]
    fn deterministic_gain_matches_hand_computation() {
        let l = layout();
        let users = vec![Point2::new(100.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(0);
        let g = ChannelModel::deterministic().generate(&l, &users, 2, &mut rng);
        // d = 100 m = 0.1 km → L = 140.7 − 36.7 = 104.0 dB → h = 10^−10.4.
        let expected = 10.0_f64.powf(-10.4);
        let got = g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        assert!((got / expected - 1.0).abs() < 1e-9, "got {got}");
        // Identical across subchannels without jitter.
        assert_eq!(
            got,
            g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(1))
        );
    }

    #[test]
    fn closer_station_has_larger_gain_without_shadowing() {
        let l = layout();
        // A user near station 0.
        let users = vec![Point2::new(50.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(0);
        let g = ChannelModel::deterministic().generate(&l, &users, 1, &mut rng);
        let g0 = g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        for s in 1..9 {
            assert!(g0 > g.gain(UserId::new(0), ServerId::new(s), SubchannelId::new(0)));
        }
        assert_eq!(g.best_server(UserId::new(0)), ServerId::new(0));
    }

    #[test]
    fn shadowing_perturbs_gains_but_preserves_shape() {
        let l = layout();
        let users = vec![Point2::new(200.0, 100.0); 4];
        let mut rng = StdRng::seed_from_u64(7);
        let shadowed = ChannelModel::paper_default().generate(&l, &users, 1, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(7);
        let clean = ChannelModel::deterministic().generate(&l, &users, 1, &mut rng2);
        // Same positions: identical deterministic part, different realizations.
        assert_eq!(shadowed.num_users(), clean.num_users());
        let a = shadowed.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        let b = clean.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        assert_ne!(a, b);
        assert!(a > 0.0 && a.is_finite());
    }

    #[test]
    fn subchannel_jitter_decorrelates_subchannels() {
        let l = layout();
        let users = vec![Point2::new(100.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(9);
        let g = ChannelModel::deterministic()
            .with_subchannel_jitter_db(3.0)
            .generate(&l, &users, 3, &mut rng);
        let g0 = g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        let g1 = g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(1));
        assert_ne!(g0, g1);
    }

    #[test]
    fn antenna_gain_scales_linearly() {
        let l = layout();
        let users = vec![Point2::new(100.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(0);
        let base = ChannelModel::deterministic().generate(&l, &users, 1, &mut rng);
        let mut rng = StdRng::seed_from_u64(0);
        let boosted = ChannelModel::deterministic()
            .with_antenna_gain_db(10.0)
            .generate(&l, &users, 1, &mut rng);
        let r = boosted.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            / base.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn from_fn_validates_gains() {
        assert!(ChannelGains::from_fn(1, 1, 1, |_, _, _| -1.0).is_err());
        assert!(ChannelGains::from_fn(1, 1, 1, |_, _, _| f64::NAN).is_err());
        let g = ChannelGains::from_fn(2, 3, 4, |u, s, j| {
            (u.index() * 100 + s.index() * 10 + j.index()) as f64
        })
        .unwrap();
        assert_eq!(
            g.gain(UserId::new(1), ServerId::new(2), SubchannelId::new(3)),
            123.0
        );
    }

    #[test]
    fn uniform_constructor() {
        let g = ChannelGains::uniform(3, 2, 2, 0.5).unwrap();
        for u in 0..3 {
            for s in 0..2 {
                for j in 0..2 {
                    assert_eq!(
                        g.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(j)),
                        0.5
                    );
                }
            }
        }
    }

    #[test]
    fn best_gain_percentiles_are_ordered() {
        let l = layout();
        let users: Vec<Point2> = (0..20)
            .map(|i| Point2::new(50.0 * i as f64, 25.0 * i as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let g = ChannelModel::paper_default().generate(&l, &users, 2, &mut rng);
        let p10 = g.best_gain_percentile_db(0.1);
        let p50 = g.best_gain_percentile_db(0.5);
        let p90 = g.best_gain_percentile_db(0.9);
        assert!(p10 <= p50 && p50 <= p90);
        assert!(p50 < 0.0, "gains are far below 0 dB");
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let g = ChannelGains::uniform(1, 1, 1, 1.0).unwrap();
        let _ = g.best_gain_percentile_db(1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gain_panics_out_of_range() {
        let g = ChannelGains::uniform(1, 1, 1, 1.0).unwrap();
        let _ = g.gain(UserId::new(1), ServerId::new(0), SubchannelId::new(0));
    }

    #[test]
    fn full_correlation_shares_shadowing_across_stations() {
        let l = layout();
        let users = vec![Point2::new(100.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(21);
        let g = ChannelModel::paper_default()
            .with_shadowing_correlation(1.0)
            .generate(&l, &users, 1, &mut rng);
        // With rho = 1 the shadowing is identical on every link, so the
        // gain ratios between stations equal the pure path-loss ratios.
        let mut rng = StdRng::seed_from_u64(99);
        let clean = ChannelModel::deterministic().generate(&l, &users, 1, &mut rng);
        let r01 = |g: &ChannelGains| {
            g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
                / g.gain(UserId::new(0), ServerId::new(1), SubchannelId::new(0))
        };
        assert!((r01(&g) / r01(&clean) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_correlation_still_varies_links() {
        let l = layout();
        let users = vec![Point2::new(100.0, 0.0); 3];
        let mut rng = StdRng::seed_from_u64(22);
        let g = ChannelModel::paper_default()
            .with_shadowing_correlation(0.5)
            .generate(&l, &users, 1, &mut rng);
        // Same position, different users: gains still differ (independent
        // components), and are positive/finite.
        let g0 = g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        let g1 = g.gain(UserId::new(1), ServerId::new(0), SubchannelId::new(0));
        assert_ne!(g0, g1);
        assert!(g0 > 0.0 && g0.is_finite());
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn out_of_range_correlation_panics() {
        let _ = ChannelModel::paper_default().with_shadowing_correlation(1.5);
    }

    #[test]
    fn no_jitter_generation_uses_shared_layout() {
        let l = layout();
        let users: Vec<Point2> = (0..5).map(|i| Point2::new(40.0 * i as f64, 10.0)).collect();
        let mut rng = StdRng::seed_from_u64(13);
        let g = ChannelModel::paper_default().generate(&l, &users, 3, &mut rng);
        assert!(g.is_subchannel_shared());
        assert_eq!(g.gains.len(), 5 * 9, "one value per (user, server) link");
        // Logically identical across subchannels.
        for u in 0..5 {
            for s in 0..9 {
                let g0 = g.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(0));
                for j in 1..3 {
                    assert_eq!(
                        g0,
                        g.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(j))
                    );
                }
            }
        }
    }

    #[test]
    fn jitter_generation_stays_dense() {
        let l = layout();
        let users = vec![Point2::new(100.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(9);
        let g = ChannelModel::deterministic()
            .with_subchannel_jitter_db(3.0)
            .generate(&l, &users, 3, &mut rng);
        assert!(!g.is_subchannel_shared());
        assert_eq!(g.gains.len(), 9 * 3);
    }

    #[test]
    fn shared_and_dense_representations_compare_logically() {
        let f = |u: UserId, s: ServerId| (1 + u.index() * 10 + s.index()) as f64;
        let shared = ChannelGains::shared_from_fn(3, 2, 4, f).unwrap();
        let dense = ChannelGains::from_fn(3, 2, 4, |u, s, _| f(u, s)).unwrap();
        assert!(shared.is_subchannel_shared());
        assert!(!dense.is_subchannel_shared());
        assert_eq!(shared, dense);
        assert_eq!(dense, shared);
        // A dense tensor that varies by subchannel differs from any
        // shared tensor.
        let varied = ChannelGains::from_fn(3, 2, 4, |u, s, j| f(u, s) + j.index() as f64).unwrap();
        assert_ne!(shared, varied);
        // And shared_from_fn validates like from_fn.
        assert!(ChannelGains::shared_from_fn(1, 1, 1, |_, _| -1.0).is_err());
        assert!(ChannelGains::shared_from_fn(1, 1, 1, |_, _| f64::NAN).is_err());
    }

    #[test]
    fn subset_preserves_layout_and_values() {
        let dense = ChannelGains::from_fn(4, 3, 2, |u, s, j| {
            (1 + u.index() * 100 + s.index() * 10 + j.index()) as f64
        })
        .unwrap();
        let shared = ChannelGains::shared_from_fn(4, 3, 2, |u, s| {
            (1 + u.index() * 100 + s.index() * 10) as f64
        })
        .unwrap();
        let users = [UserId::new(3), UserId::new(1)];
        let servers = [ServerId::new(2), ServerId::new(0)];
        for g in [&dense, &shared] {
            let sub = g.subset(&users, &servers).unwrap();
            assert_eq!(sub.is_subchannel_shared(), g.is_subchannel_shared());
            assert_eq!(sub.num_users(), 2);
            assert_eq!(sub.num_servers(), 2);
            assert_eq!(sub.num_subchannels(), 2);
            for (v, &u) in users.iter().enumerate() {
                for (t, &s) in servers.iter().enumerate() {
                    for j in 0..2 {
                        let j = SubchannelId::new(j);
                        assert_eq!(
                            sub.gain(UserId::new(v), ServerId::new(t), j),
                            g.gain(u, s, j)
                        );
                    }
                }
            }
        }
        // Out-of-range ids are rejected.
        assert!(dense.subset(&[UserId::new(4)], &servers).is_err());
        assert!(dense.subset(&users, &[ServerId::new(3)]).is_err());
    }

    #[test]
    fn alternative_path_loss_kind_is_usable() {
        let l = NetworkLayout::hexagonal(1, Meters::new(1000.0)).unwrap();
        let users = vec![Point2::new(100.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(0);
        let g = ChannelModel::deterministic()
            .with_path_loss(PathLossKind::FreeSpace { carrier_hz: 2.0e9 })
            .generate(&l, &users, 1, &mut rng);
        let got = g.gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
        assert!(got > 0.0 && got.is_finite());
    }
}
