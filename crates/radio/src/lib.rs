//! # mec-radio
//!
//! Wireless substrate for the TSAJS reproduction.
//!
//! Implements the paper's uplink model (§III-A.2 and §V):
//!
//! * distance-dependent path loss `L[dB] = 140.7 + 36.7·log10(d[km])`,
//! * lognormal shadowing with 8 dB standard deviation,
//! * OFDMA band plan: total bandwidth `B` split into `N` equal subchannels
//!   of width `W = B/N`,
//! * SINR with inter-cell interference (Eq. 3) and Shannon rates (Eq. 4).
//!
//! Channel gains are generated once per scenario into a dense
//! `[user][server][subchannel]` tensor ([`ChannelGains`]), so repeated
//! objective evaluations during search never touch the RNG.
//!
//! ## Example
//!
//! ```
//! use mec_radio::{ChannelModel, OfdmaConfig, shannon_rate};
//! use mec_topology::{NetworkLayout, place_users_uniform};
//! use mec_types::constants;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let layout = NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let users = place_users_uniform(&layout, 12, &mut rng);
//!
//! let ofdma = OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, 3)?;
//! let gains = ChannelModel::paper_default().generate(&layout, &users, 3, &mut rng);
//!
//! // A 20 dB SNR link on one subchannel moves ~44.3 Mbit/s.
//! let rate = shannon_rate(ofdma.subchannel_width(), 100.0);
//! assert!(rate.as_bps() > 40.0e6 && rate.as_bps() < 50.0e6);
//! assert_eq!(gains.num_users(), 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod normal;
pub mod ofdma;
pub mod pathloss;
pub mod shadowing;
pub mod sinr;

pub use channel::{ChannelGains, ChannelModel};
pub use normal::StandardNormal;
pub use ofdma::{thermal_noise, OfdmaConfig};
pub use pathloss::{FreeSpace, LogDistance, PathLossModel};
pub use shadowing::Shadowing;
pub use sinr::{compute_sinrs, shannon_rate, Transmission};
