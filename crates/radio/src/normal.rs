//! Standard-normal sampling via the Box–Muller transform.
//!
//! The offline dependency set does not include `rand_distr`, so the
//! Gaussian needed for lognormal shadowing is implemented here. Box–Muller
//! produces pairs of independent standard normals; the spare is cached so
//! consecutive draws cost one transform every other call.

use rand::Rng;

/// A standard normal (mean 0, variance 1) sampler.
///
/// # Example
///
/// ```
/// use mec_radio::StandardNormal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut normal = StandardNormal::new();
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StandardNormal {
    spare: Option<f64>,
}

impl StandardNormal {
    /// Creates a sampler with an empty spare cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(radius * theta.sin());
        radius * theta.cos()
    }

    /// Draws a normal variate with the given mean and standard deviation.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut normal = StandardNormal::new();
        (0..n).map(|_| normal.sample(&mut rng)).collect()
    }

    #[test]
    fn samples_are_finite() {
        assert!(draw(10_000, 0).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empirical_mean_and_variance_match() {
        let xs = draw(100_000, 1);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn empirical_tail_mass_is_gaussian() {
        // P(|Z| > 1.96) ≈ 0.05 for a standard normal.
        let xs = draw(100_000, 2);
        let tail = xs.iter().filter(|x| x.abs() > 1.96).count() as f64 / xs.len() as f64;
        assert!((tail - 0.05).abs() < 0.01, "tail mass {tail}");
    }

    #[test]
    fn sample_with_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut normal = StandardNormal::new();
        let xs: Vec<f64> = (0..50_000)
            .map(|_| normal.sample_with(&mut rng, 10.0, 8.0))
            .collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((mean - 10.0).abs() < 0.2);
        assert!((var.sqrt() - 8.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(draw(100, 7), draw(100, 7));
        assert_ne!(draw(100, 7), draw(100, 8));
    }
}
