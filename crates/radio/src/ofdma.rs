//! OFDMA uplink band plan.

use mec_types::{constants, Error, Hertz, SubchannelId};
use serde::{Deserialize, Serialize};

/// The OFDMA configuration: total uplink bandwidth `B` split into `N`
/// orthogonal subchannels of equal width `W = B/N` (§III-A.2).
///
/// Each base station can serve at most `N` offloading users concurrently
/// (one per subchannel), which is what caps the offloading population in
/// the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfdmaConfig {
    bandwidth: Hertz,
    num_subchannels: usize,
}

impl OfdmaConfig {
    /// Creates a band plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the bandwidth is non-positive
    /// or the subchannel count is zero.
    pub fn new(bandwidth: Hertz, num_subchannels: usize) -> Result<Self, Error> {
        if !bandwidth.is_finite() || bandwidth.as_hz() <= 0.0 {
            return Err(Error::invalid("B", "system bandwidth must be positive"));
        }
        if num_subchannels == 0 {
            return Err(Error::invalid("N", "need at least one subchannel"));
        }
        Ok(Self {
            bandwidth,
            num_subchannels,
        })
    }

    /// The paper's default: 20 MHz split into 3 subchannels.
    pub fn paper_default() -> Self {
        Self {
            bandwidth: constants::DEFAULT_BANDWIDTH,
            num_subchannels: constants::DEFAULT_NUM_SUBCHANNELS,
        }
    }

    /// Total uplink bandwidth `B`.
    #[inline]
    pub fn bandwidth(&self) -> Hertz {
        self.bandwidth
    }

    /// Number of subchannels `N`.
    #[inline]
    pub fn num_subchannels(&self) -> usize {
        self.num_subchannels
    }

    /// Per-subchannel width `W = B/N`.
    #[inline]
    pub fn subchannel_width(&self) -> Hertz {
        self.bandwidth / self.num_subchannels as f64
    }

    /// Iterates over all subchannel ids.
    pub fn subchannels(&self) -> impl Iterator<Item = SubchannelId> + Clone {
        SubchannelId::all(self.num_subchannels)
    }
}

/// Thermal noise power over a bandwidth: `σ² = −174 dBm/Hz +
/// 10·log₁₀(W) + NF`.
///
/// A sanity anchor for the paper's `σ² = −100 dBm`: over one 6.67 MHz
/// subchannel with a ~6 dB receiver noise figure, thermal noise is
/// ≈ −100 dBm — i.e. the paper's constant is a realistic per-subchannel
/// noise floor.
///
/// # Example
///
/// ```
/// use mec_radio::{thermal_noise, OfdmaConfig};
///
/// # fn main() -> Result<(), mec_types::Error> {
/// let ofdma = OfdmaConfig::paper_default();
/// let noise = thermal_noise(ofdma.subchannel_width(), 6.0);
/// assert!((noise.as_dbm() - (-99.76)).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn thermal_noise(width: Hertz, noise_figure_db: f64) -> mec_types::DbMilliwatts {
    mec_types::DbMilliwatts::new(-174.0 + 10.0 * width.as_hz().log10() + noise_figure_db)
}

impl Default for OfdmaConfig {
    /// Defaults to [`OfdmaConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_splits_20_mhz_in_3() {
        let c = OfdmaConfig::paper_default();
        assert_eq!(c.bandwidth().as_mega(), 20.0);
        assert_eq!(c.num_subchannels(), 3);
        assert!((c.subchannel_width().as_hz() - 20.0e6 / 3.0).abs() < 1e-6);
        assert_eq!(OfdmaConfig::default(), c);
    }

    #[test]
    fn width_times_count_recovers_bandwidth() {
        for n in 1..=50 {
            let c = OfdmaConfig::new(Hertz::from_mega(20.0), n).unwrap();
            let total = c.subchannel_width().as_hz() * n as f64;
            assert!((total - 20.0e6).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(OfdmaConfig::new(Hertz::new(0.0), 3).is_err());
        assert!(OfdmaConfig::new(Hertz::new(-1.0), 3).is_err());
        assert!(OfdmaConfig::new(Hertz::from_mega(20.0), 0).is_err());
    }

    #[test]
    fn thermal_noise_reference_points() {
        // 1 Hz, NF 0: the universal -174 dBm/Hz floor.
        assert!((thermal_noise(Hertz::new(1.0), 0.0).as_dbm() + 174.0).abs() < 1e-9);
        // 20 MHz, NF 9: -174 + 73 + 9 = -92 dBm.
        let n = thermal_noise(Hertz::from_mega(20.0), 9.0);
        assert!((n.as_dbm() + 92.0).abs() < 0.02);
        // Wider bands are noisier.
        assert!(
            thermal_noise(Hertz::from_mega(20.0), 6.0).as_dbm()
                > thermal_noise(Hertz::from_mega(5.0), 6.0).as_dbm()
        );
    }

    #[test]
    fn subchannel_iterator_is_dense() {
        let c = OfdmaConfig::new(Hertz::from_mega(20.0), 4).unwrap();
        let ids: Vec<_> = c.subchannels().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], SubchannelId::new(0));
        assert_eq!(ids[3], SubchannelId::new(3));
    }
}
