//! Distance-dependent path-loss models.

use mec_types::{constants, Meters};

/// Minimum modeled link distance. Prevents `log10(0)` blowing up when a
/// user is sampled arbitrarily close to a base station; 3GPP evaluation
/// methodologies apply a similar minimum-distance floor.
pub const MIN_DISTANCE: Meters = Meters::new(10.0);

/// A deterministic large-scale path-loss model.
///
/// Implementations return the loss in dB for a given link distance;
/// the stochastic shadowing component lives in
/// [`Shadowing`](crate::Shadowing).
pub trait PathLossModel: std::fmt::Debug + Send + Sync {
    /// Path loss in dB at the given distance (after flooring to
    /// [`MIN_DISTANCE`]).
    fn loss_db(&self, distance: Meters) -> f64;
}

/// The paper's log-distance model: `L[dB] = 140.7 + 36.7·log10(d[km])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    intercept_db: f64,
    slope_db_per_decade: f64,
}

impl LogDistance {
    /// Creates a log-distance model with an explicit intercept and slope.
    pub fn new(intercept_db: f64, slope_db_per_decade: f64) -> Self {
        Self {
            intercept_db,
            slope_db_per_decade,
        }
    }

    /// The paper's parameters (140.7 dB intercept at 1 km, 36.7 dB/decade).
    pub fn paper_default() -> Self {
        Self::new(
            constants::PATHLOSS_INTERCEPT_DB,
            constants::PATHLOSS_SLOPE_DB,
        )
    }
}

impl Default for LogDistance {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl PathLossModel for LogDistance {
    fn loss_db(&self, distance: Meters) -> f64 {
        let d_km = distance.max(MIN_DISTANCE).as_kilometers();
        self.intercept_db + self.slope_db_per_decade * d_km.log10()
    }
}

/// Free-space path loss at a given carrier frequency:
/// `L[dB] = 20·log10(d[m]) + 20·log10(f[Hz]) − 147.55`.
///
/// Provided as an alternative substrate model for sensitivity studies; the
/// paper's experiments all use [`LogDistance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeSpace {
    carrier_hz: f64,
}

impl FreeSpace {
    /// Creates a free-space model at the given carrier frequency in Hz.
    pub fn new(carrier_hz: f64) -> Self {
        Self { carrier_hz }
    }
}

impl PathLossModel for FreeSpace {
    fn loss_db(&self, distance: Meters) -> f64 {
        let d_m = distance.max(MIN_DISTANCE).as_meters();
        20.0 * d_m.log10() + 20.0 * self.carrier_hz.log10() - 147.55
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_at_one_km() {
        let m = LogDistance::paper_default();
        assert!((m.loss_db(Meters::from_kilometers(1.0)) - 140.7).abs() < 1e-9);
    }

    #[test]
    fn paper_model_slope_per_decade() {
        let m = LogDistance::paper_default();
        let l1 = m.loss_db(Meters::from_kilometers(0.1));
        let l2 = m.loss_db(Meters::from_kilometers(1.0));
        assert!((l2 - l1 - 36.7).abs() < 1e-9);
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        let m = LogDistance::paper_default();
        let mut prev = f64::NEG_INFINITY;
        for d in [10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0] {
            let l = m.loss_db(Meters::new(d));
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn distances_below_floor_are_clamped() {
        let m = LogDistance::paper_default();
        assert_eq!(m.loss_db(Meters::new(0.0)), m.loss_db(MIN_DISTANCE));
        assert_eq!(m.loss_db(Meters::new(5.0)), m.loss_db(MIN_DISTANCE));
        assert!(m.loss_db(Meters::new(0.0)).is_finite());
    }

    #[test]
    fn free_space_reference_point() {
        // FSPL at 1 km, 2 GHz ≈ 98.5 dB.
        let m = FreeSpace::new(2.0e9);
        let l = m.loss_db(Meters::from_kilometers(1.0));
        assert!((l - 98.5).abs() < 0.2, "got {l}");
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn PathLossModel>> = vec![
            Box::new(LogDistance::paper_default()),
            Box::new(FreeSpace::new(2.0e9)),
        ];
        for m in &models {
            assert!(m.loss_db(Meters::new(100.0)).is_finite());
        }
    }
}
