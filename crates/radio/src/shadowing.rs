//! Lognormal shadowing.

use crate::normal::StandardNormal;
use mec_types::constants;
use rand::Rng;

/// Lognormal shadow fading: a zero-mean Gaussian in the dB domain added to
/// the deterministic path loss (paper §V: 8 dB standard deviation).
#[derive(Debug, Clone)]
pub struct Shadowing {
    stddev_db: f64,
    normal: StandardNormal,
}

impl Shadowing {
    /// Creates a shadowing source with the given dB standard deviation.
    ///
    /// A standard deviation of zero disables shadowing (useful for
    /// deterministic unit tests).
    ///
    /// # Panics
    ///
    /// Panics if `stddev_db` is negative or non-finite.
    pub fn new(stddev_db: f64) -> Self {
        assert!(
            stddev_db.is_finite() && stddev_db >= 0.0,
            "shadowing stddev must be a finite non-negative dB value"
        );
        Self {
            stddev_db,
            normal: StandardNormal::new(),
        }
    }

    /// The paper's 8 dB shadowing.
    pub fn paper_default() -> Self {
        Self::new(constants::SHADOWING_STDDEV_DB)
    }

    /// Disabled shadowing (always samples 0 dB).
    pub fn disabled() -> Self {
        Self::new(0.0)
    }

    /// The configured standard deviation in dB.
    pub fn stddev_db(&self) -> f64 {
        self.stddev_db
    }

    /// Draws one shadowing realization in dB.
    pub fn sample_db<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.stddev_db == 0.0 {
            return 0.0;
        }
        self.normal.sample_with(rng, 0.0, self.stddev_db)
    }
}

impl Default for Shadowing {
    /// Defaults to [`Shadowing::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_shadowing_is_exactly_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Shadowing::disabled();
        for _ in 0..100 {
            assert_eq!(s.sample_db(&mut rng), 0.0);
        }
    }

    #[test]
    fn default_stddev_is_8_db() {
        assert_eq!(Shadowing::default().stddev_db(), 8.0);
    }

    #[test]
    fn empirical_stddev_matches_configuration() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = Shadowing::new(8.0);
        let xs: Vec<f64> = (0..50_000).map(|_| s.sample_db(&mut rng)).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 8.0).abs() < 0.2, "stddev {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "stddev")]
    fn negative_stddev_panics() {
        let _ = Shadowing::new(-1.0);
    }
}
