//! Uplink SINR (Eq. 3) and Shannon rate (Eq. 4).

use crate::channel::ChannelGains;
use mec_types::{BitsPerSecond, Hertz, ServerId, SubchannelId, UserId};

/// One active uplink transmission: user `u` sending to server `s` on
/// subchannel `j` (an `x_us^j = 1` entry of the offloading policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transmission {
    /// The transmitting user.
    pub user: UserId,
    /// The serving base station.
    pub server: ServerId,
    /// The allocated subchannel.
    pub subchannel: SubchannelId,
}

impl Transmission {
    /// Creates a transmission triple.
    pub fn new(user: UserId, server: ServerId, subchannel: SubchannelId) -> Self {
        Self {
            user,
            server,
            subchannel,
        }
    }
}

/// Computes the SINR of every transmission in `transmissions` (Eq. 3):
///
/// `γ_us^j = p_u·h_us^j / (Σ_{r≠s} Σ_{k∈U_r} x_kr^j·p_k·h_ks^j + σ²)`
///
/// Interference at the serving station `s` comes from users transmitting
/// on the *same subchannel* to *other* stations; intra-cell users are
/// orthogonal by OFDMA.
///
/// `tx_power_watts[u]` is the linear transmit power of user `u`;
/// `noise_watts` is `σ²`.
///
/// # Panics
///
/// Panics if a transmission references a user/server/subchannel outside
/// the gain tensor, or if `tx_power_watts` is shorter than the user count
/// implied by the transmissions.
pub fn compute_sinrs(
    gains: &ChannelGains,
    tx_power_watts: &[f64],
    noise_watts: f64,
    transmissions: &[Transmission],
) -> Vec<f64> {
    transmissions
        .iter()
        .map(|t| {
            let signal =
                tx_power_watts[t.user.index()] * gains.gain(t.user, t.server, t.subchannel);
            let interference: f64 = transmissions
                .iter()
                .filter(|o| o.subchannel == t.subchannel && o.server != t.server)
                .map(|o| {
                    tx_power_watts[o.user.index()] * gains.gain(o.user, t.server, t.subchannel)
                })
                .sum();
            signal / (interference + noise_watts)
        })
        .collect()
}

/// Shannon capacity of one subchannel of width `width` at the given SINR
/// (Eq. 4): `R = W·log2(1 + γ)`.
#[inline]
pub fn shannon_rate(width: Hertz, sinr: f64) -> BitsPerSecond {
    BitsPerSecond::new(width.as_hz() * (1.0 + sinr).log2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: usize, s: usize, j: usize) -> Transmission {
        Transmission::new(UserId::new(u), ServerId::new(s), SubchannelId::new(j))
    }

    #[test]
    fn single_user_has_no_interference() {
        let gains = ChannelGains::uniform(1, 2, 2, 1e-10).unwrap();
        let sinrs = compute_sinrs(&gains, &[0.01], 1e-13, &[t(0, 0, 0)]);
        let expected = 0.01 * 1e-10 / 1e-13;
        assert!((sinrs[0] - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn same_subchannel_other_cell_interferes() {
        let gains = ChannelGains::uniform(2, 2, 1, 1e-10).unwrap();
        let txs = [t(0, 0, 0), t(1, 1, 0)];
        let sinrs = compute_sinrs(&gains, &[0.01, 0.01], 1e-13, &txs);
        // Symmetric setup: both see signal p·h and interference p·h.
        let expected = (0.01 * 1e-10) / (0.01 * 1e-10 + 1e-13);
        for s in &sinrs {
            assert!((s - expected).abs() / expected < 1e-12);
        }
        // SINR is now near 1 (≈ 0 dB), far below the no-interference case.
        assert!(sinrs[0] < 1.0);
    }

    #[test]
    fn different_subchannels_are_orthogonal() {
        let gains = ChannelGains::uniform(2, 2, 2, 1e-10).unwrap();
        let txs = [t(0, 0, 0), t(1, 1, 1)];
        let sinrs = compute_sinrs(&gains, &[0.01, 0.01], 1e-13, &txs);
        let clean = 0.01 * 1e-10 / 1e-13;
        for s in &sinrs {
            assert!((s - clean).abs() / clean < 1e-12);
        }
    }

    #[test]
    fn same_cell_users_do_not_interfere() {
        // Two users on the same server, different subchannels (12d forbids
        // the same subchannel) — no mutual interference terms.
        let gains = ChannelGains::uniform(2, 1, 2, 1e-10).unwrap();
        let txs = [t(0, 0, 0), t(1, 0, 1)];
        let sinrs = compute_sinrs(&gains, &[0.01, 0.01], 1e-13, &txs);
        let clean = 0.01 * 1e-10 / 1e-13;
        for s in &sinrs {
            assert!((s - clean).abs() / clean < 1e-12);
        }
    }

    #[test]
    fn interference_sums_over_multiple_cells() {
        let gains = ChannelGains::uniform(3, 3, 1, 1e-10).unwrap();
        let txs = [t(0, 0, 0), t(1, 1, 0), t(2, 2, 0)];
        let sinrs = compute_sinrs(&gains, &[0.01; 3], 1e-13, &txs);
        let expected = (0.01 * 1e-10) / (2.0 * 0.01 * 1e-10 + 1e-13);
        for s in &sinrs {
            assert!((s - expected).abs() / expected < 1e-12);
        }
    }

    #[test]
    fn asymmetric_powers_shift_sinr() {
        let gains = ChannelGains::uniform(2, 2, 1, 1e-10).unwrap();
        let txs = [t(0, 0, 0), t(1, 1, 0)];
        // User 1 transmits 10x stronger than user 0.
        let sinrs = compute_sinrs(&gains, &[0.01, 0.1], 1e-13, &txs);
        assert!(sinrs[1] > sinrs[0]);
    }

    #[test]
    fn shannon_rate_reference_points() {
        // W·log2(1+1) = W at SINR 1.
        let w = Hertz::from_mega(1.0);
        assert!((shannon_rate(w, 1.0).as_bps() - 1.0e6).abs() < 1e-6);
        // SINR 3 → log2(4) = 2 bits/s/Hz.
        assert!((shannon_rate(w, 3.0).as_bps() - 2.0e6).abs() < 1e-6);
        // Zero SINR → zero rate.
        assert_eq!(shannon_rate(w, 0.0).as_bps(), 0.0);
    }

    #[test]
    fn rate_is_monotone_in_sinr() {
        let w = Hertz::from_mega(6.67);
        let mut prev = -1.0;
        for sinr in [0.0, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let r = shannon_rate(w, sinr).as_bps();
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn empty_transmission_set_is_empty() {
        let gains = ChannelGains::uniform(1, 1, 1, 1e-10).unwrap();
        assert!(compute_sinrs(&gains, &[0.01], 1e-13, &[]).is_empty());
    }
}
