//! Property tests for the wireless substrate.

use mec_radio::{
    compute_sinrs, shannon_rate, ChannelGains, ChannelModel, LogDistance, OfdmaConfig,
    PathLossModel, Transmission,
};
use mec_topology::{NetworkLayout, Point2};
use mec_types::{Hertz, Meters, ServerId, SubchannelId, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_transmissions(users: usize, servers: usize, subs: usize, seed: u64) -> Vec<Transmission> {
    // A feasible transmission set: at most one user per (server, subchannel).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used = std::collections::HashSet::new();
    let mut txs = Vec::new();
    for u in 0..users {
        if rng.gen_bool(0.7) {
            let s = rng.gen_range(0..servers);
            let j = rng.gen_range(0..subs);
            if used.insert((s, j)) {
                txs.push(Transmission::new(
                    UserId::new(u),
                    ServerId::new(s),
                    SubchannelId::new(j),
                ));
            }
        }
    }
    txs
}

proptest! {
    #[test]
    fn path_loss_is_monotone_nondecreasing(d1 in 1.0f64..50_000.0, d2 in 1.0f64..50_000.0) {
        let model = LogDistance::paper_default();
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.loss_db(Meters::new(near)) <= model.loss_db(Meters::new(far)) + 1e-12);
    }

    #[test]
    fn shannon_rate_is_monotone_and_nonnegative(
        sinr1 in 0.0f64..1e6,
        sinr2 in 0.0f64..1e6,
        width_mhz in 0.01f64..100.0,
    ) {
        let w = Hertz::from_mega(width_mhz);
        let (lo, hi) = if sinr1 <= sinr2 { (sinr1, sinr2) } else { (sinr2, sinr1) };
        let r_lo = shannon_rate(w, lo);
        let r_hi = shannon_rate(w, hi);
        prop_assert!(r_lo.as_bps() >= 0.0);
        prop_assert!(r_lo.as_bps() <= r_hi.as_bps() + 1e-9);
    }

    #[test]
    fn sinrs_are_positive_and_bounded_by_snr(
        seed in 0u64..500,
        users in 2usize..10,
        servers in 1usize..4,
        subs in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-14.0..-9.0))
        }).unwrap();
        let powers = vec![0.01; users];
        let noise = 1e-13;
        let txs = arb_transmissions(users, servers, subs, seed);
        let sinrs = compute_sinrs(&gains, &powers, noise, &txs);
        for (t, sinr) in txs.iter().zip(&sinrs) {
            prop_assert!(*sinr > 0.0);
            // Interference can only lower the SINR below the pure SNR.
            let snr = 0.01 * gains.gain(t.user, t.server, t.subchannel) / noise;
            prop_assert!(*sinr <= snr * (1.0 + 1e-12));
        }
    }

    #[test]
    fn adding_a_transmission_never_helps_anyone(
        seed in 0u64..500,
    ) {
        // Monotonicity of interference: appending one more co-channel
        // transmitter can only lower (or keep) everyone else's SINR.
        let users = 6usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, 3, 2, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-9.0))
        }).unwrap();
        let powers = vec![0.01; users];
        let mut txs = arb_transmissions(users - 1, 3, 2, seed);
        let before = compute_sinrs(&gains, &powers, 1e-13, &txs);
        // Add the last user on some slot not yet used.
        let mut slot = None;
        'outer: for s in 0..3 {
            for j in 0..2 {
                if !txs.iter().any(|t| t.server.index() == s && t.subchannel.index() == j) {
                    slot = Some((s, j));
                    break 'outer;
                }
            }
        }
        if let Some((s, j)) = slot {
            txs.push(Transmission::new(
                UserId::new(users - 1),
                ServerId::new(s),
                SubchannelId::new(j),
            ));
            let after = compute_sinrs(&gains, &powers, 1e-13, &txs);
            for (b, a) in before.iter().zip(after.iter()) {
                prop_assert!(*a <= b * (1.0 + 1e-12), "SINR improved: {b} -> {a}");
            }
        }
    }

    #[test]
    fn generated_gains_are_positive_and_deterministic(
        seed in 0u64..200,
        users in 1usize..20,
        subs in 1usize..5,
    ) {
        let layout = NetworkLayout::hexagonal(4, Meters::new(1000.0)).unwrap();
        let positions: Vec<Point2> = {
            let mut rng = StdRng::seed_from_u64(seed);
            mec_topology::place_users_uniform(&layout, users, &mut rng)
        };
        let gen = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            ChannelModel::paper_default().generate(&layout, &positions, subs, &mut rng)
        };
        let a = gen(seed);
        let b = gen(seed);
        prop_assert_eq!(&a, &b);
        for u in 0..users {
            for s in 0..4 {
                for j in 0..subs {
                    let g = a.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(j));
                    prop_assert!(g > 0.0 && g.is_finite());
                }
            }
        }
    }

    #[test]
    fn ofdma_width_partition(n in 1usize..200, mhz in 0.1f64..1000.0) {
        let c = OfdmaConfig::new(Hertz::from_mega(mhz), n).unwrap();
        let total = c.subchannel_width().as_hz() * n as f64;
        prop_assert!((total - mhz * 1e6).abs() < 1e-6 * mhz * 1e6);
    }
}
