//! Fluent front-end for constructing [`ScenarioSpec`] values in code.
//!
//! The builder always produces a *generated*-mode spec (explicit specs
//! are emitted by tooling, not written by hand). Every method mirrors a
//! schema field; [`ScenarioBuilder::try_build`] validates the result so
//! programmatic construction and file parsing share one semantic gate.

use crate::error::SpecError;
use crate::schema::{
    AdmissionSpec, ChurnSpec, DownlinkSpec, EffortSpec, ExpectSpec, GeneratedSpec, OnlineSpec,
    PlacementSpec, ScenarioSpec, SlaSpec, SpecMode, TimelineEventKind, TimelineEventSpec,
    UserTemplate, SCHEMA_VERSION,
};

/// Builds generated-mode [`ScenarioSpec`]s fluently.
///
/// ```
/// use mec_scenario_spec::ScenarioBuilder;
///
/// let spec = ScenarioBuilder::new("demo")
///     .users(12)
///     .servers(4)
///     .subchannels(2)
///     .try_build()
///     .unwrap();
/// assert_eq!(spec.name, "demo");
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Starts from the paper-default regime (§V of the TSAJS paper).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            spec: ScenarioSpec {
                schema_version: SCHEMA_VERSION,
                name: name.into(),
                description: None,
                mode: SpecMode::Generated(GeneratedSpec {
                    topology: Default::default(),
                    radio: Default::default(),
                    compute: Default::default(),
                    population: Default::default(),
                    downlink: None,
                }),
                churn: None,
                admission: None,
                sla: None,
                online: None,
                timeline: Vec::new(),
                expect: None,
                provenance: None,
                effort: None,
            },
        }
    }

    fn generated(&mut self) -> &mut GeneratedSpec {
        match &mut self.spec.mode {
            SpecMode::Generated(g) => g,
            SpecMode::Explicit(_) => unreachable!("builder specs are always generated"),
        }
    }

    /// Sets the human-readable description.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.spec.description = Some(text.into());
        self
    }

    // ---- topology / radio / compute -------------------------------------

    /// Number of edge servers.
    pub fn servers(mut self, servers: usize) -> Self {
        self.generated().topology.servers = servers;
        self
    }

    /// Inter-site distance in meters.
    pub fn inter_site_distance_m(mut self, m: f64) -> Self {
        self.generated().topology.inter_site_distance_m = m;
        self
    }

    /// Uplink bandwidth in Hz.
    pub fn bandwidth_hz(mut self, hz: f64) -> Self {
        self.generated().radio.bandwidth_hz = hz;
        self
    }

    /// OFDMA subchannels per server.
    pub fn subchannels(mut self, n: usize) -> Self {
        self.generated().radio.subchannels = n;
        self
    }

    /// Noise power in dBm.
    pub fn noise_dbm(mut self, dbm: f64) -> Self {
        self.generated().radio.noise_dbm = dbm;
        self
    }

    /// Device transmit power in dBm.
    pub fn tx_power_dbm(mut self, dbm: f64) -> Self {
        self.generated().radio.tx_power_dbm = dbm;
        self
    }

    /// Log-normal shadowing σ in dB.
    pub fn shadowing_db(mut self, db: f64) -> Self {
        self.generated().radio.shadowing_db = db;
        self
    }

    /// Disables shadowing (deterministic distance-only pathloss).
    pub fn without_shadowing(self) -> Self {
        self.shadowing_db(0.0)
    }

    /// Per-server CPU capacity in GHz.
    pub fn server_cpu_ghz(mut self, ghz: f64) -> Self {
        self.generated().compute.server_cpu_ghz = ghz;
        self
    }

    // ---- population ------------------------------------------------------

    /// Number of users.
    pub fn users(mut self, users: usize) -> Self {
        self.generated().population.users = users;
        self
    }

    /// Clustered (hotspot) placement.
    pub fn hotspots(mut self, clusters: usize, spread_m: f64) -> Self {
        self.generated().population.placement = PlacementSpec::Hotspots { clusters, spread_m };
        self
    }

    /// Replaces the template set with a single template.
    pub fn template(mut self, template: UserTemplate) -> Self {
        self.generated().population.templates = vec![template];
        self
    }

    /// Appends an additional weighted template.
    pub fn add_template(mut self, template: UserTemplate) -> Self {
        self.generated().population.templates.push(template);
        self
    }

    /// Mutates the sole template in place (convenience for single-template
    /// regimes; panics if more than one template is present).
    pub fn tweak_template(mut self, f: impl FnOnce(&mut UserTemplate)) -> Self {
        let templates = &mut self.generated().population.templates;
        assert_eq!(
            templates.len(),
            1,
            "tweak_template requires exactly one template"
        );
        f(&mut templates[0]);
        self
    }

    /// Task workload in megacycles (sole template).
    pub fn task_mcycles(self, mcycles: f64) -> Self {
        self.tweak_template(|t| t.task_mcycles = mcycles)
    }

    /// Task input size in kilobytes (sole template).
    pub fn task_data_kb(self, kb: f64) -> Self {
        self.tweak_template(|t| t.task_data_kb = kb)
    }

    /// Latency preference weight (sole template).
    pub fn beta_time(self, beta: f64) -> Self {
        self.tweak_template(|t| t.beta_time = beta)
    }

    /// Per-user beta jitter half-width (sole template).
    pub fn beta_time_spread(self, spread: f64) -> Self {
        self.tweak_template(|t| t.beta_time_spread = spread)
    }

    /// Downlink modelling.
    pub fn downlink(mut self, rate_mbps: f64, output_kb: f64) -> Self {
        self.generated().downlink = Some(DownlinkSpec {
            rate_mbps,
            output_kb,
        });
        self
    }

    // ---- online sections -------------------------------------------------

    /// Poisson churn process.
    pub fn poisson_churn(mut self, arrival_rate_hz: f64, mean_sojourn_s: f64) -> Self {
        self.spec.churn = Some(ChurnSpec {
            process: "poisson".into(),
            initial_users: None,
            arrival_rate_hz,
            mean_sojourn_s,
            horizon_s: None,
            adaptive: false,
        });
        self
    }

    /// Poisson churn whose rate timeline `load_ramp` events may scale.
    pub fn adaptive_poisson_churn(mut self, arrival_rate_hz: f64, mean_sojourn_s: f64) -> Self {
        self = self.poisson_churn(arrival_rate_hz, mean_sojourn_s);
        self.spec.churn.as_mut().expect("just set").adaptive = true;
        self
    }

    /// Admission policy by wire name (`admit_all`, `reject`, `force_local`).
    pub fn admission(mut self, policy: impl Into<String>, capacity: Option<usize>) -> Self {
        self.spec.admission = Some(AdmissionSpec {
            policy: policy.into(),
            capacity,
        });
        self
    }

    /// SLA completion deadline in seconds.
    pub fn sla_deadline_s(mut self, deadline_s: f64) -> Self {
        self.spec.sla = Some(SlaSpec { deadline_s });
        self
    }

    /// Enables the online engine with defaults, then applies `f`.
    pub fn online(mut self, f: impl FnOnce(&mut OnlineSpec)) -> Self {
        let mut online = self.spec.online.take().unwrap_or_default();
        f(&mut online);
        self.spec.online = Some(online);
        self
    }

    // ---- timeline --------------------------------------------------------

    /// Appends a raw timeline event.
    pub fn event(mut self, at_s: f64, kind: TimelineEventKind) -> Self {
        self.spec.timeline.push(TimelineEventSpec { at_s, kind });
        self
    }

    /// Server goes down at `at_s`.
    pub fn server_outage(self, at_s: f64, server: usize) -> Self {
        self.event(at_s, TimelineEventKind::ServerOutage { server })
    }

    /// Server comes back at `at_s`.
    pub fn server_recovery(self, at_s: f64, server: usize) -> Self {
        self.event(at_s, TimelineEventKind::ServerRecovery { server })
    }

    /// Burst of arrivals at `at_s`.
    pub fn flash_crowd(self, at_s: f64, arrivals: usize, mean_sojourn_s: f64) -> Self {
        self.event(
            at_s,
            TimelineEventKind::FlashCrowd {
                arrivals,
                mean_sojourn_s,
            },
        )
    }

    /// Arrival-rate scaling at `at_s` (requires adaptive churn).
    pub fn load_ramp(self, at_s: f64, rate_factor: f64) -> Self {
        self.event(at_s, TimelineEventKind::LoadRamp { rate_factor })
    }

    /// Population drift toward `cell` at `at_s`.
    pub fn hotspot_drift(self, at_s: f64, cell: usize, fraction: f64) -> Self {
        self.event(at_s, TimelineEventKind::HotspotDrift { cell, fraction })
    }

    // ---- expectations / effort -------------------------------------------

    /// Attaches golden assertions.
    pub fn expect(mut self, f: impl FnOnce(&mut ExpectSpec)) -> Self {
        let mut expect = self.spec.expect.take().unwrap_or(ExpectSpec {
            seed: 0,
            solver: None,
            feasible: true,
            min_utility: None,
            max_utility: None,
            min_offloaded: None,
            users: None,
            servers: None,
            subchannels: None,
            min_deadline_hit_rate: None,
            min_arrivals: None,
            min_events_applied: None,
            final_servers_up: None,
            min_peak_active: None,
        });
        f(&mut expect);
        self.spec.expect = Some(expect);
        self
    }

    /// Attaches solver-effort overrides (preset budgets).
    pub fn effort(mut self, trials: usize, ttsa_min_temperature: f64) -> Self {
        self.spec.effort = Some(EffortSpec {
            trials,
            ttsa_min_temperature,
        });
        self
    }

    // ---- finish ----------------------------------------------------------

    /// Returns the spec without validating (callers that compose further).
    pub fn build(self) -> ScenarioSpec {
        self.spec
    }

    /// Validates and returns the spec.
    pub fn try_build(self) -> Result<ScenarioSpec, SpecError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_specs_validate_and_round_trip() {
        let spec = ScenarioBuilder::new("built")
            .description("builder round trip")
            .users(10)
            .servers(4)
            .subchannels(2)
            .task_mcycles(1500.0)
            .hotspots(2, 50.0)
            .poisson_churn(0.1, 60.0)
            .admission("force_local", Some(6))
            .sla_deadline_s(0.8)
            .online(|o| o.epochs = 5)
            .server_outage(10.0, 1)
            .server_recovery(30.0, 1)
            .expect(|e| {
                e.seed = 3;
                e.min_arrivals = Some(1);
            })
            .try_build()
            .unwrap();
        let text = spec.to_toml_string().unwrap();
        let back = crate::ScenarioSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn invalid_builder_configs_surface_spec_errors() {
        let err = ScenarioBuilder::new("bad")
            .users(0)
            .try_build()
            .unwrap_err();
        assert_eq!(err.path, "population.users");

        let err = ScenarioBuilder::new("bad")
            .online(|_| {})
            .load_ramp(5.0, 2.0)
            .try_build()
            .unwrap_err();
        assert_eq!(err.path, "timeline[0]");
    }
}
