//! Running a directory of scenario specs as a regression corpus.
//!
//! The repository ships a `scenarios/` directory of named stress cases;
//! [`run_corpus`] loads every `*.toml` spec in a directory, executes each
//! spec's `[expect]` block via [`crate::expect::check_expectations`], and
//! aggregates the results into a [`CorpusReport`] suitable for CI.

use crate::error::SpecError;
use crate::expect::{check_expectations, ExpectReport};
use crate::schema::ScenarioSpec;
use std::fs;
use std::path::Path;

/// Loads a spec from a file, dispatching on extension: `.toml` parses as
/// TOML, `.json` as JSON.
///
/// # Errors
///
/// Returns [`SpecError`] for unreadable files, unknown extensions, or
/// specs that fail to decode.
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, SpecError> {
    let text = fs::read_to_string(path)
        .map_err(|e| SpecError::new(path.display().to_string(), format!("unreadable: {e}")))?;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "toml" => ScenarioSpec::from_toml_str(&text),
        "json" => ScenarioSpec::from_json_str(&text),
        other => Err(SpecError::new(
            path.display().to_string(),
            format!("unsupported spec extension `{other}` (expected .toml or .json)"),
        )),
    }
}

/// One corpus entry's result.
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// File name relative to the corpus directory.
    pub file: String,
    /// The expectation run, or the error that prevented it.
    pub report: Result<ExpectReport, SpecError>,
}

impl CorpusOutcome {
    /// Whether the spec loaded, ran, and met every assertion.
    pub fn passed(&self) -> bool {
        self.report
            .as_ref()
            .map(ExpectReport::passed)
            .unwrap_or(false)
    }

    /// Human-readable failure lines for this entry (empty when green).
    pub fn failure_lines(&self) -> Vec<String> {
        match &self.report {
            Ok(r) => r
                .failures
                .iter()
                .map(|f| format!("{}: {f}", self.file))
                .collect(),
            Err(e) => vec![format!("{}: {e}", self.file)],
        }
    }
}

/// Aggregate result of a corpus run.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-spec outcomes, sorted by file name.
    pub outcomes: Vec<CorpusOutcome>,
}

impl CorpusReport {
    /// Whether every spec in the corpus passed.
    pub fn passed(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(CorpusOutcome::passed)
    }

    /// Number of specs executed.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the corpus directory held no specs.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Every failure line across the corpus.
    pub fn failures(&self) -> Vec<String> {
        self.outcomes
            .iter()
            .flat_map(CorpusOutcome::failure_lines)
            .collect()
    }
}

/// Runs every `*.toml` spec under `dir` and aggregates the results.
/// Individual spec failures do not abort the run — they land in the
/// report so CI prints the complete picture.
///
/// # Errors
///
/// Returns [`SpecError`] only when the directory itself is unreadable.
pub fn run_corpus(dir: &Path) -> Result<CorpusReport, SpecError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| SpecError::new(dir.display().to_string(), format!("unreadable: {e}")))?;
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("toml"))
        .collect();
    files.sort();
    let outcomes = files
        .into_iter()
        .map(|path| {
            let file = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("<non-utf8>")
                .to_string();
            let report = load_spec(&path).and_then(|spec| check_expectations(&spec));
            CorpusOutcome { file, report }
        })
        .collect();
    Ok(CorpusReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mec-scenario-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn a_corpus_directory_runs_every_spec_and_sorts_by_name() {
        let dir = scratch_dir("basic");
        let good = ScenarioBuilder::new("good")
            .servers(4)
            .users(5)
            .expect(|e| e.users = Some(5))
            .build();
        let bad = ScenarioBuilder::new("bad")
            .servers(4)
            .users(5)
            .expect(|e| e.users = Some(99))
            .build();
        fs::write(dir.join("b_good.toml"), good.to_toml_string().unwrap()).unwrap();
        fs::write(dir.join("a_bad.toml"), bad.to_toml_string().unwrap()).unwrap();
        fs::write(dir.join("ignored.txt"), "not a spec").unwrap();

        let report = run_corpus(&dir).unwrap();
        assert_eq!(report.len(), 2);
        assert_eq!(report.outcomes[0].file, "a_bad.toml");
        assert_eq!(report.outcomes[1].file, "b_good.toml");
        assert!(!report.passed());
        assert!(report.outcomes[1].passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("a_bad.toml:"), "{failures:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_specs_surface_as_outcome_errors_not_panics() {
        let dir = scratch_dir("broken");
        fs::write(dir.join("z_broken.toml"), "schema_version = 1\n[oops\n").unwrap();
        let report = run_corpus(&dir).unwrap();
        assert_eq!(report.len(), 1);
        assert!(!report.passed());
        assert!(report.outcomes[0].report.is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_empty_corpus_does_not_pass() {
        let dir = scratch_dir("empty");
        let report = run_corpus(&dir).unwrap();
        assert!(report.is_empty());
        assert!(!report.passed());
        let _ = fs::remove_dir_all(&dir);
    }
}
