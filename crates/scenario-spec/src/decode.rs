//! Strict, path-tracking decoding from [`serde::Content`] trees.
//!
//! The vendored serde derive stand-in has no `deny_unknown_fields`
//! support, so the spec types decode by hand through [`Walk`]: fields are
//! `take`n off a map, and [`Walk::finish`] rejects anything left over,
//! reporting the full dotted path of the unknown field. Scalar accessors
//! coerce between the integer variants (`U64`/`I64`/`F64`) the TOML and
//! JSON front-ends produce, but never silently drop sign or precision.

use crate::error::SpecError;
use serde::Content;

/// Human name of a content variant, for error messages.
fn kind(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "boolean",
        Content::U64(_) | Content::I64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "table",
    }
}

/// A map being consumed field-by-field, carrying its dotted path.
pub struct Walk {
    entries: Vec<(String, Content)>,
    path: String,
}

impl Walk {
    /// Starts a walk at the document root.
    pub fn root(content: Content) -> Result<Self, SpecError> {
        Self::at(content, String::new())
    }

    /// Starts a walk over a nested table at `path`.
    pub fn at(content: Content, path: String) -> Result<Self, SpecError> {
        match content {
            Content::Map(entries) => Ok(Self { entries, path }),
            other => Err(SpecError::new(
                path,
                format!("expected a table, found {}", kind(&other)),
            )),
        }
    }

    /// The dotted path of a child field.
    pub fn child(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Removes and returns a field, if present.
    pub fn take(&mut self, key: &str) -> Option<Content> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Removes a required field, erroring with its path when missing.
    pub fn req(&mut self, key: &str) -> Result<Content, SpecError> {
        self.take(key)
            .ok_or_else(|| SpecError::new(self.child(key), "missing required field"))
    }

    /// Whether a field is present (without consuming it).
    pub fn has(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Rejects any fields that were not consumed (`deny_unknown_fields`).
    pub fn finish(self) -> Result<(), SpecError> {
        if let Some((key, _)) = self.entries.first() {
            return Err(SpecError::new(self.child(key), "unknown field"));
        }
        Ok(())
    }

    // ---- typed convenience accessors ------------------------------------

    /// Optional f64 field.
    pub fn f64_opt(&mut self, key: &str) -> Result<Option<f64>, SpecError> {
        let path = self.child(key);
        self.take(key).map(|c| f64_v(c, &path)).transpose()
    }

    /// f64 field with a default.
    pub fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, SpecError> {
        Ok(self.f64_opt(key)?.unwrap_or(default))
    }

    /// Required f64 field.
    pub fn f64_req(&mut self, key: &str) -> Result<f64, SpecError> {
        let path = self.child(key);
        f64_v(self.req(key)?, &path)
    }

    /// Optional u64 field (rejects negatives and floats).
    pub fn u64_opt(&mut self, key: &str) -> Result<Option<u64>, SpecError> {
        let path = self.child(key);
        self.take(key).map(|c| u64_v(c, &path)).transpose()
    }

    /// u64 field with a default.
    pub fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, SpecError> {
        Ok(self.u64_opt(key)?.unwrap_or(default))
    }

    /// Optional usize field.
    pub fn usize_opt(&mut self, key: &str) -> Result<Option<usize>, SpecError> {
        let path = self.child(key);
        self.take(key).map(|c| usize_v(c, &path)).transpose()
    }

    /// usize field with a default.
    pub fn usize_or(&mut self, key: &str, default: usize) -> Result<usize, SpecError> {
        Ok(self.usize_opt(key)?.unwrap_or(default))
    }

    /// Required usize field.
    pub fn usize_req(&mut self, key: &str) -> Result<usize, SpecError> {
        let path = self.child(key);
        usize_v(self.req(key)?, &path)
    }

    /// bool field with a default.
    pub fn bool_or(&mut self, key: &str, default: bool) -> Result<bool, SpecError> {
        let path = self.child(key);
        self.take(key)
            .map(|c| bool_v(c, &path))
            .transpose()
            .map(|o| o.unwrap_or(default))
    }

    /// Optional string field.
    pub fn str_opt(&mut self, key: &str) -> Result<Option<String>, SpecError> {
        let path = self.child(key);
        self.take(key).map(|c| str_v(c, &path)).transpose()
    }

    /// String field with a default.
    pub fn str_or(&mut self, key: &str, default: &str) -> Result<String, SpecError> {
        Ok(self.str_opt(key)?.unwrap_or_else(|| default.to_string()))
    }

    /// Required string field.
    pub fn str_req(&mut self, key: &str) -> Result<String, SpecError> {
        let path = self.child(key);
        str_v(self.req(key)?, &path)
    }

    /// Optional array field, returned with per-element paths.
    pub fn seq_opt(&mut self, key: &str) -> Result<Option<Vec<(Content, String)>>, SpecError> {
        let path = self.child(key);
        match self.take(key) {
            None => Ok(None),
            Some(Content::Seq(items)) => Ok(Some(
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (c, format!("{path}[{i}]")))
                    .collect(),
            )),
            Some(other) => Err(SpecError::new(
                path,
                format!("expected an array, found {}", kind(&other)),
            )),
        }
    }

    /// Optional nested-table field, as a sub-walk.
    pub fn table_opt(&mut self, key: &str) -> Result<Option<Walk>, SpecError> {
        let path = self.child(key);
        self.take(key).map(|c| Walk::at(c, path)).transpose()
    }
}

/// Coerces any numeric variant to f64.
pub fn f64_v(c: Content, path: &str) -> Result<f64, SpecError> {
    match c {
        Content::F64(v) => Ok(v),
        Content::U64(v) => Ok(v as f64),
        Content::I64(v) => Ok(v as f64),
        other => Err(SpecError::new(
            path,
            format!("expected a number, found {}", kind(&other)),
        )),
    }
}

/// Accepts only non-negative integers.
pub fn u64_v(c: Content, path: &str) -> Result<u64, SpecError> {
    match c {
        Content::U64(v) => Ok(v),
        Content::I64(v) => Err(SpecError::new(
            path,
            format!("value {v} is out of range: expected a non-negative integer"),
        )),
        other => Err(SpecError::new(
            path,
            format!("expected a non-negative integer, found {}", kind(&other)),
        )),
    }
}

/// Accepts non-negative integers that fit in usize.
pub fn usize_v(c: Content, path: &str) -> Result<usize, SpecError> {
    let v = u64_v(c, path)?;
    usize::try_from(v)
        .map_err(|_| SpecError::new(path, format!("value {v} is out of range for this platform")))
}

/// Accepts only booleans.
pub fn bool_v(c: Content, path: &str) -> Result<bool, SpecError> {
    match c {
        Content::Bool(v) => Ok(v),
        other => Err(SpecError::new(
            path,
            format!("expected a boolean, found {}", kind(&other)),
        )),
    }
}

/// Accepts only strings.
pub fn str_v(c: Content, path: &str) -> Result<String, SpecError> {
    match c {
        Content::Str(v) => Ok(v),
        other => Err(SpecError::new(
            path,
            format!("expected a string, found {}", kind(&other)),
        )),
    }
}

/// Builder for insertion-ordered `Content::Map`s (used by the encoders).
#[derive(Default)]
pub struct MapBuilder {
    entries: Vec<(String, Content)>,
}

impl MapBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    pub fn push(mut self, key: &str, value: Content) -> Self {
        self.entries.push((key.to_string(), value));
        self
    }

    /// Appends a field only when `Some`.
    pub fn push_opt(self, key: &str, value: Option<Content>) -> Self {
        match value {
            Some(v) => self.push(key, v),
            None => self,
        }
    }

    /// Appends a table only when it has entries.
    pub fn push_nonempty(self, key: &str, value: Content) -> Self {
        match &value {
            Content::Map(m) if m.is_empty() => self,
            Content::Seq(s) if s.is_empty() => self,
            _ => self.push(key, value),
        }
    }

    /// Finishes into a `Content::Map`.
    pub fn build(self) -> Content {
        Content::Map(self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Content {
        MapBuilder::new()
            .push("a", Content::U64(3))
            .push(
                "nested",
                MapBuilder::new().push("x", Content::F64(1.5)).build(),
            )
            .push("s", Content::Str("hi".into()))
            .build()
    }

    #[test]
    fn unknown_fields_report_their_full_path() {
        let mut w = Walk::root(demo()).unwrap();
        let _ = w.u64_or("a", 0).unwrap();
        let _ = w.str_opt("s").unwrap();
        let err = w.finish().unwrap_err();
        assert_eq!(err.path, "nested");
        assert_eq!(err.message, "unknown field");

        let mut w = Walk::root(demo()).unwrap();
        let mut nested = w.table_opt("nested").unwrap().unwrap();
        let _ = nested.u64_opt("wrong");
        let err = nested.finish().unwrap_err();
        assert_eq!(err.path, "nested.x");
    }

    #[test]
    fn missing_required_fields_report_the_child_path() {
        let mut w = Walk::root(demo()).unwrap();
        let err = w.f64_req("gone").unwrap_err();
        assert_eq!(err.path, "gone");
        assert_eq!(err.message, "missing required field");
    }

    #[test]
    fn negative_integers_are_out_of_range_for_u64() {
        let c = MapBuilder::new().push("seed", Content::I64(-1)).build();
        let mut w = Walk::root(c).unwrap();
        let err = w.u64_opt("seed").unwrap_err();
        assert_eq!(err.path, "seed");
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn numeric_coercions_accept_integers_for_floats_only() {
        let c = MapBuilder::new()
            .push("f", Content::U64(7))
            .push("u", Content::F64(7.0))
            .build();
        let mut w = Walk::root(c).unwrap();
        assert_eq!(w.f64_req("f").unwrap(), 7.0);
        assert!(w.u64_opt("u").unwrap_err().message.contains("expected"));
    }
}
