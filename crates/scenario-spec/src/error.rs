//! Structured spec errors that name the offending field.

use std::fmt;

/// A validation or decoding failure, pinned to a field path.
///
/// The path uses dotted/indexed notation (`topology.servers`,
/// `timeline[2].at_s`, `population.template[0].task_mcycles`), so a CI
/// log or CLI error points straight at the line of the spec to fix.
/// Parse-level failures (malformed TOML/JSON) use a `line N` pseudo-path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted field path (or `line N` for syntax errors).
    pub path: String,
    /// What is wrong with the field.
    pub message: String,
}

impl SpecError {
    /// Creates an error at the given field path.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Wraps a model-level error, keeping the spec path that triggered it.
    pub fn model(path: impl Into<String>, error: &mec_types::Error) -> Self {
        Self::new(path, format!("model rejected the spec: {error}"))
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_path() {
        let e = SpecError::new("topology.servers", "must be at least 1");
        assert_eq!(e.to_string(), "topology.servers: must be at least 1");
        let e = SpecError::new("", "empty document");
        assert_eq!(e.to_string(), "empty document");
    }
}
