//! Executing a spec's `[expect]` block: the golden-assertion runner the
//! corpus CI job is built on.
//!
//! Offline specs (no `[online]` section) are materialized at the expect
//! seed and solved once with TTSA; online specs run their full epoch
//! schedule through the engine. Every failed assertion becomes one line
//! in [`ExpectReport::failures`], so a corpus run reports *all* broken
//! expectations of a spec, not just the first.

use crate::error::SpecError;
use crate::schema::{ExpectSpec, ScenarioSpec};
use mec_online::OnlineEpochReport;
use mec_types::effective_parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsajs::{anneal, solve_sharded, NeighborhoodKernel, ShardConfig, TtsaConfig};

/// Termination temperature used when a spec carries no `[effort]` block —
/// quick-scale so the corpus stays CI-friendly.
const DEFAULT_MIN_TEMPERATURE: f64 = 1e-2;

/// Per-cluster proposal budget for `solver = "shard"` expect runs. City
/// clusters can hold tens of thousands of users, so the corpus caps cold
/// solves the same way the anytime service tiers do.
const SHARD_PROPOSAL_BUDGET: u64 = 4000;

/// The outcome of one spec's expectation run.
#[derive(Debug, Clone)]
pub struct ExpectReport {
    /// Spec name.
    pub name: String,
    /// Seed the run used.
    pub seed: u64,
    /// Number of assertions evaluated.
    pub checks: usize,
    /// One line per failed assertion (empty = all green).
    pub failures: Vec<String>,
}

impl ExpectReport {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Aggregates of one online run, exposed for callers that assert beyond
/// the built-in `[expect]` fields.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Every epoch report, in order.
    pub reports: Vec<OnlineEpochReport>,
    /// Timeline events applied across the run.
    pub events_applied: usize,
    /// Servers in service after the final epoch.
    pub final_servers_up: usize,
    /// Total admitted arrivals.
    pub total_arrivals: usize,
    /// Peak simultaneous active users.
    pub peak_active: usize,
    /// Mean per-epoch deadline hit rate.
    pub mean_deadline_hit_rate: f64,
}

/// Runs a spec's online schedule and summarizes it.
///
/// # Errors
///
/// Returns [`SpecError`] if the spec has no `[online]` section or the
/// engine fails mid-run.
pub fn run_online(spec: &ScenarioSpec, seed: u64) -> Result<OnlineOutcome, SpecError> {
    let mut plan = spec.online_plan(seed)?;
    let reports = plan
        .engine
        .run(plan.epochs)
        .map_err(|e| SpecError::model("online", &e))?;
    let events_applied = plan.engine.events_applied();
    let final_servers_up = plan.engine.servers_up().iter().filter(|&&up| up).count();
    let total_arrivals = reports.iter().map(|r| r.arrivals).sum();
    let peak_active = reports.iter().map(|r| r.active_users).max().unwrap_or(0);
    let mean_deadline_hit_rate = if reports.is_empty() {
        1.0
    } else {
        reports.iter().map(|r| r.deadline_hit_rate).sum::<f64>() / reports.len() as f64
    };
    Ok(OnlineOutcome {
        reports,
        events_applied,
        final_servers_up,
        total_arrivals,
        peak_active,
        mean_deadline_hit_rate,
    })
}

fn default_expect() -> ExpectSpec {
    ExpectSpec {
        seed: 0,
        solver: None,
        feasible: true,
        min_utility: None,
        max_utility: None,
        min_offloaded: None,
        users: None,
        servers: None,
        subchannels: None,
        min_deadline_hit_rate: None,
        min_arrivals: None,
        min_events_applied: None,
        final_servers_up: None,
        min_peak_active: None,
    }
}

/// Executes the spec and checks its `[expect]` assertions. A spec with no
/// `[expect]` block still executes (decode/validate/materialize/run) so
/// the corpus catches crashes, just with zero assertions.
///
/// # Errors
///
/// Returns [`SpecError`] for invalid specs or execution failures — a
/// *failed assertion* is not an error; it lands in
/// [`ExpectReport::failures`].
pub fn check_expectations(spec: &ScenarioSpec) -> Result<ExpectReport, SpecError> {
    spec.validate()?;
    let expect = spec.expect.clone().unwrap_or_else(default_expect);
    let mut checks = 0usize;
    let mut failures = Vec::new();
    let mut check = |ok: bool, line: String| {
        checks += 1;
        if !ok {
            failures.push(line);
        }
    };

    if spec.online.is_some() {
        let outcome = run_online(spec, expect.seed)?;
        if let Some(floor) = expect.min_deadline_hit_rate {
            check(
                outcome.mean_deadline_hit_rate >= floor,
                format!(
                    "mean deadline hit rate {:.4} below floor {floor}",
                    outcome.mean_deadline_hit_rate
                ),
            );
        }
        if let Some(floor) = expect.min_arrivals {
            check(
                outcome.total_arrivals >= floor,
                format!(
                    "{} arrivals, expected at least {floor}",
                    outcome.total_arrivals
                ),
            );
        }
        if let Some(floor) = expect.min_events_applied {
            check(
                outcome.events_applied >= floor,
                format!(
                    "{} timeline events applied, expected at least {floor}",
                    outcome.events_applied
                ),
            );
        }
        if let Some(exact) = expect.final_servers_up {
            check(
                outcome.final_servers_up == exact,
                format!(
                    "{} servers up at the end, expected {exact}",
                    outcome.final_servers_up
                ),
            );
        }
        if let Some(floor) = expect.min_peak_active {
            check(
                outcome.peak_active >= floor,
                format!(
                    "peak {} active users, expected at least {floor}",
                    outcome.peak_active
                ),
            );
        }
        if let Some(floor) = expect.min_utility {
            let best = outcome
                .reports
                .iter()
                .map(|r| r.utility)
                .fold(f64::NEG_INFINITY, f64::max);
            check(
                best >= floor,
                format!("best epoch utility {best:.4} below floor {floor}"),
            );
        }
        if let Some(cap) = expect.max_utility {
            let worst = outcome
                .reports
                .iter()
                .map(|r| r.utility)
                .fold(f64::NEG_INFINITY, f64::max);
            check(
                worst <= cap,
                format!("epoch utility {worst:.4} above cap {cap}"),
            );
        }
        if expect.feasible {
            // Feasibility holds per epoch by construction; nothing extra
            // to re-check beyond the run having succeeded.
            check(true, String::new());
        }
    } else {
        let scenario = spec.materialize(expect.seed)?;
        if let Some(exact) = expect.users {
            check(
                scenario.num_users() == exact,
                format!(
                    "{} users materialized, expected {exact}",
                    scenario.num_users()
                ),
            );
        }
        if let Some(exact) = expect.servers {
            check(
                scenario.num_servers() == exact,
                format!(
                    "{} servers materialized, expected {exact}",
                    scenario.num_servers()
                ),
            );
        }
        if let Some(exact) = expect.subchannels {
            check(
                scenario.num_subchannels() == exact,
                format!(
                    "{} subchannels materialized, expected {exact}",
                    scenario.num_subchannels()
                ),
            );
        }
        let min_temperature = spec
            .effort
            .as_ref()
            .map(|e| e.ttsa_min_temperature)
            .unwrap_or(DEFAULT_MIN_TEMPERATURE);
        let (objective, assignment) = if expect.solver.as_deref() == Some("shard") {
            let config = ShardConfig::paper_default()
                .with_seed(expect.seed)
                .with_ttsa(
                    TtsaConfig::paper_default()
                        .with_min_temperature(min_temperature)
                        .with_proposal_budget(SHARD_PROPOSAL_BUDGET),
                );
            let out = solve_sharded(&scenario, &config, effective_parallelism(None))
                .map_err(|e| SpecError::model("expect.solver", &e))?;
            (out.objective, out.assignment)
        } else {
            let config = TtsaConfig::paper_default().with_min_temperature(min_temperature);
            let kernel = NeighborhoodKernel::new();
            // Same solver-stream decorrelation as the online engine.
            let mut rng = StdRng::seed_from_u64(expect.seed ^ 0x5851_F42D_4C95_7F2D);
            let outcome = anneal(&scenario, &config, &kernel, &mut rng);
            (outcome.objective, outcome.assignment)
        };
        if expect.feasible {
            check(
                assignment.verify_feasible(&scenario).is_ok(),
                "solver produced an infeasible assignment".into(),
            );
        }
        if let Some(floor) = expect.min_utility {
            check(
                objective >= floor,
                format!("objective {objective:.4} below floor {floor}"),
            );
        }
        if let Some(cap) = expect.max_utility {
            check(
                objective <= cap,
                format!("objective {objective:.4} above cap {cap}"),
            );
        }
        if let Some(floor) = expect.min_offloaded {
            let n = assignment.num_offloaded();
            check(
                n >= floor,
                format!("{n} users offloaded, expected at least {floor}"),
            );
        }
    }

    Ok(ExpectReport {
        name: spec.name.clone(),
        seed: expect.seed,
        checks,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;

    #[test]
    fn offline_expectations_pass_for_sane_bounds() {
        let spec = ScenarioBuilder::new("offline")
            .servers(4)
            .users(6)
            .expect(|e| {
                e.seed = 2;
                e.users = Some(6);
                e.servers = Some(4);
                e.subchannels = Some(3);
                e.min_utility = Some(0.0);
                e.min_offloaded = Some(1);
            })
            .try_build()
            .unwrap();
        let report = check_expectations(&spec).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.checks >= 6);
    }

    #[test]
    fn broken_expectations_report_every_failure() {
        let spec = ScenarioBuilder::new("broken")
            .servers(4)
            .users(6)
            .expect(|e| {
                e.users = Some(7);
                e.max_utility = Some(-1.0);
            })
            .try_build()
            .unwrap();
        let report = check_expectations(&spec).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
    }

    #[test]
    fn online_expectations_cover_timeline_effects() {
        let spec = ScenarioBuilder::new("online")
            .servers(4)
            .users(6)
            .poisson_churn(0.05, 120.0)
            .online(|o| {
                o.epochs = 4;
                o.warm_budget = Some(150);
                o.min_temperature = Some(1e-2);
            })
            .server_outage(15.0, 1)
            .expect(|e| {
                e.seed = 5;
                e.min_arrivals = Some(6);
                e.min_events_applied = Some(1);
                e.final_servers_up = Some(3);
                e.min_peak_active = Some(6);
            })
            .try_build()
            .unwrap();
        let report = check_expectations(&spec).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }
}
