//! Declarative scenario specifications for the TSAJS MEC reproduction.
//!
//! A [`ScenarioSpec`] is a versioned, validated, serializable description
//! of everything a simulation run needs: topology, radio, population,
//! churn, admission, SLAs, a timeline of injected events, and optional
//! golden `expect` assertions. Specs load from TOML or JSON, validate
//! with field-path diagnostics ([`SpecError`]), and materialize into the
//! concrete [`mec_system::Scenario`] / online-engine objects:
//!
//! ```text
//! ScenarioSpec::from_toml_str(..)? .validate()? .materialize(seed)?
//! ```
//!
//! The fluent [`ScenarioBuilder`] constructs specs programmatically; the
//! named corpus under `scenarios/` in the repository root exercises the
//! schema end to end.
//!
//! # Example
//!
//! ```
//! use mec_scenario_spec::ScenarioSpec;
//!
//! let spec = ScenarioSpec::from_toml_str(
//!     r#"
//!     schema_version = 1
//!     name = "doc-example"
//!
//!     [topology]
//!     servers = 4
//!
//!     [population]
//!     users = 6
//!     "#,
//! )
//! .unwrap();
//! spec.validate().unwrap();
//! let scenario = spec.materialize(7).unwrap();
//! assert_eq!(scenario.num_users(), 6);
//! assert_eq!(scenario.num_servers(), 4);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod corpus;
pub mod decode;
pub mod error;
pub mod expect;
pub mod materialize;
pub mod schema;
pub mod toml;

pub use builder::ScenarioBuilder;
pub use corpus::{load_spec, run_corpus, CorpusOutcome, CorpusReport};
pub use error::SpecError;
pub use expect::{check_expectations, ExpectReport, OnlineOutcome};
pub use materialize::OnlinePlan;
pub use schema::{
    AdmissionSpec, ChurnSpec, ComputeSpec, DownlinkSpec, EffortSpec, ExpectSpec, ExplicitSpec,
    ExplicitUser, GeneratedSpec, OnlineSpec, PlacementSpec, PopulationSpec, ProvenanceSpec,
    RadioSpec, ScenarioSpec, SpecMode, TimelineEventKind, TimelineEventSpec, TopologySpec,
    UserTemplate, SCHEMA_VERSION,
};
