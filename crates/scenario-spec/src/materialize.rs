//! Turning validated specs into concrete model objects.
//!
//! - [`ScenarioSpec::materialize`] — a snapshot [`Scenario`] (generated
//!   mode draws placements/gains/jitter from the seed; explicit mode is
//!   seed-independent and bit-exact).
//! - [`ScenarioSpec::to_experiment_params`] — the [`ExperimentParams`]
//!   equivalent of a single-template generated spec, for code paths that
//!   still speak parameters.
//! - [`ScenarioSpec::online_plan`] — a fully-assembled [`OnlineEngine`]
//!   with churn, admission, SLA and the compiled event timeline.

use crate::error::SpecError;
use crate::schema::{
    ChurnSpec, ExplicitSpec, GeneratedSpec, PlacementSpec, ScenarioSpec, SpecMode,
    TimelineEventKind, UserTemplate,
};
use mec_online::{
    AdaptivePoissonChurn, AdmitAll, CapacityGate, ChurnProcess, EngineEvent, EventSchedule,
    OnlineConfig, OnlineEngine, TimedEvent, TraceChurn,
};
use mec_radio::{ChannelGains, ChannelModel, OfdmaConfig};
use mec_system::{Scenario, UserSpec};
use mec_topology::{place_users_hotspots, place_users_uniform, NetworkLayout};
use mec_types::{
    Bits, BitsPerSecond, Cycles, DbMilliwatts, DeviceProfile, Hertz, Meters, ProviderPreference,
    Seconds, ServerProfile, Task, UserPreferences, Watts,
};
use mec_workloads::{ExperimentParams, PlacementModel, PoissonChurn, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsajs::{ResolveMode, TtsaConfig};

/// Stream salt decorrelating template sampling / preference jitter from
/// the placement and shadowing streams.
const TEMPLATE_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything an online run needs, assembled from one spec.
pub struct OnlinePlan {
    /// The engine, with churn, admission and the event timeline attached.
    pub engine: OnlineEngine,
    /// How many epochs the spec asks for.
    pub epochs: usize,
}

impl ScenarioSpec {
    /// Builds the concrete [`Scenario`] this spec describes.
    ///
    /// Generated mode: placements come from `seed`, shadowing from
    /// `seed ^ 0xD1B5_4A32_D192_ED03` (the exact streams
    /// [`ScenarioGenerator`] uses, so single-template specs reproduce the
    /// generator bit-for-bit) and template sampling / preference jitter
    /// from a third stream. Explicit mode ignores `seed` entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec is semantically invalid or the
    /// model constructors reject a value.
    pub fn materialize(&self, seed: u64) -> Result<Scenario, SpecError> {
        self.validate()?;
        match &self.mode {
            SpecMode::Explicit(e) => e.materialize(),
            SpecMode::Generated(g) => g.materialize(seed),
        }
    }

    /// The [`ExperimentParams`] equivalent of this spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] unless the spec is generated-mode with
    /// exactly one population template (parameters describe a homogeneous
    /// population; heterogeneous specs must materialize directly).
    pub fn to_experiment_params(&self) -> Result<ExperimentParams, SpecError> {
        let SpecMode::Generated(g) = &self.mode else {
            return Err(SpecError::new(
                "explicit",
                "explicit specs carry no experiment parameters",
            ));
        };
        let [t] = g.population.templates.as_slice() else {
            return Err(SpecError::new(
                "population.template",
                format!(
                    "experiment parameters need exactly one template (spec has {})",
                    g.population.templates.len()
                ),
            ));
        };
        let mut params = ExperimentParams {
            num_users: g.population.users,
            num_servers: g.topology.servers,
            num_subchannels: g.radio.subchannels,
            bandwidth: Hertz::new(g.radio.bandwidth_hz),
            noise: DbMilliwatts::new(g.radio.noise_dbm),
            tx_power: DbMilliwatts::new(g.radio.tx_power_dbm),
            inter_site_distance: Meters::new(g.topology.inter_site_distance_m),
            shadowing_db: g.radio.shadowing_db,
            server_cpu: Hertz::from_giga(g.compute.server_cpu_ghz),
            user_cpu: Hertz::from_giga(t.user_cpu_ghz),
            kappa: t.kappa,
            task_data: Bits::from_kilobytes(t.task_data_kb),
            task_workload: Cycles::from_mega(t.task_mcycles),
            beta_time: t.beta_time,
            beta_time_spread: t.beta_time_spread,
            lambda: t.lambda,
            task_output: None,
            downlink_rate: None,
            placement: match g.population.placement {
                PlacementSpec::Uniform => PlacementModel::Uniform,
                PlacementSpec::Hotspots { clusters, spread_m } => {
                    PlacementModel::Hotspots { clusters, spread_m }
                }
            },
        };
        if let Some(d) = &g.downlink {
            params.task_output = Some(Bits::from_kilobytes(d.output_kb));
            params.downlink_rate = Some(BitsPerSecond::new(d.rate_mbps * 1.0e6));
        }
        Ok(params)
    }

    /// Assembles the online run this spec describes: engine (with churn,
    /// admission, SLA deadline and the compiled event timeline) plus the
    /// epoch count.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec has no `[online]` section, uses
    /// multiple population templates, or a model constructor rejects it.
    pub fn online_plan(&self, seed: u64) -> Result<OnlinePlan, SpecError> {
        self.validate()?;
        let Some(online) = &self.online else {
            return Err(SpecError::new(
                "online",
                "this spec has no [online] section",
            ));
        };
        let params = self.to_experiment_params()?;

        let mut base = TtsaConfig::paper_default();
        let min_temperature = online
            .min_temperature
            .or(self.effort.as_ref().map(|e| e.ttsa_min_temperature));
        if let Some(t) = min_temperature {
            base = base.with_min_temperature(t);
        }
        let mode = match online.warm_budget {
            Some(budget) => ResolveMode::warm(budget),
            None => ResolveMode::Cold,
        };
        let mut config = OnlineConfig::pedestrian()
            .with_base(base)
            .with_mode(mode)
            .with_epoch_duration(Seconds::new(online.epoch_duration_s))
            .with_speed_range((online.speed_min_mps, online.speed_max_mps));
        config.redraw_shadowing = online.redraw_shadowing;
        if let Some(sla) = &self.sla {
            config = config.with_deadline(Seconds::new(sla.deadline_s));
        }

        let horizon = Seconds::new(online.horizon_s());
        let churn: Box<dyn ChurnProcess> = match &self.churn {
            Some(c) => c.build(params.num_users, horizon, seed)?,
            None => {
                // No churn section: the population is static. A zero-rate
                // Poisson trace delivers the initial arrivals at t = 0 and
                // (with a sojourn far past the horizon) never departs.
                let model = PoissonChurn::new(params.num_users, 0.0, horizon + Seconds::new(1.0e9))
                    .map_err(|e| SpecError::model("population.users", &e))?;
                Box::new(TraceChurn::poisson(&model, horizon, seed))
            }
        };

        let admission: Box<dyn mec_online::AdmissionPolicy> = match &self.admission {
            None => Box::new(AdmitAll),
            Some(a) => match (a.policy.as_str(), a.capacity) {
                ("admit_all", _) => Box::new(AdmitAll),
                ("reject", Some(cap)) => Box::new(CapacityGate::rejecting(cap)),
                ("force_local", Some(cap)) => Box::new(CapacityGate::forcing_local(cap)),
                _ => unreachable!("validate() enforces policy/capacity pairing"),
            },
        };

        let engine = OnlineEngine::new(params, config, churn, admission, seed)
            .map_err(|e| SpecError::model("online", &e))?
            .with_events(self.event_schedule());
        Ok(OnlinePlan {
            engine,
            epochs: online.epochs,
        })
    }

    /// Compiles the `[[timeline]]` entries into an engine-ready schedule.
    pub fn event_schedule(&self) -> EventSchedule {
        EventSchedule::new(
            self.timeline
                .iter()
                .map(|ev| TimedEvent {
                    at: Seconds::new(ev.at_s),
                    event: match ev.kind {
                        TimelineEventKind::ServerOutage { server } => {
                            EngineEvent::ServerOutage { server }
                        }
                        TimelineEventKind::ServerRecovery { server } => {
                            EngineEvent::ServerRecovery { server }
                        }
                        TimelineEventKind::FlashCrowd {
                            arrivals,
                            mean_sojourn_s,
                        } => EngineEvent::FlashCrowd {
                            arrivals,
                            mean_sojourn: Seconds::new(mean_sojourn_s),
                        },
                        TimelineEventKind::LoadRamp { rate_factor } => {
                            EngineEvent::LoadRamp { rate_factor }
                        }
                        TimelineEventKind::HotspotDrift { cell, fraction } => {
                            EngineEvent::HotspotDrift { cell, fraction }
                        }
                    },
                })
                .collect(),
        )
    }
}

impl ChurnSpec {
    fn build(
        &self,
        default_initial: usize,
        run_horizon: Seconds,
        seed: u64,
    ) -> Result<Box<dyn ChurnProcess>, SpecError> {
        let initial = self.initial_users.unwrap_or(default_initial);
        if self.adaptive {
            let churn = AdaptivePoissonChurn::new(
                initial,
                self.arrival_rate_hz,
                Seconds::new(self.mean_sojourn_s),
                seed,
            )
            .map_err(|e| SpecError::model("churn", &e))?;
            Ok(Box::new(churn))
        } else {
            let horizon = self.horizon_s.map(Seconds::new).unwrap_or(run_horizon);
            let model = PoissonChurn::new(
                initial,
                self.arrival_rate_hz,
                Seconds::new(self.mean_sojourn_s),
            )
            .map_err(|e| SpecError::model("churn", &e))?;
            Ok(Box::new(TraceChurn::poisson(&model, horizon, seed)))
        }
    }
}

impl GeneratedSpec {
    fn materialize(&self, seed: u64) -> Result<Scenario, SpecError> {
        if let [_] = self.population.templates.as_slice() {
            // Single template: go through the generator so the spec
            // reproduces ExperimentParams-driven experiments bit-for-bit.
            let spec = ScenarioSpec {
                schema_version: crate::schema::SCHEMA_VERSION,
                name: "params".into(),
                description: None,
                mode: SpecMode::Generated(self.clone()),
                churn: None,
                admission: None,
                sla: None,
                online: None,
                timeline: Vec::new(),
                expect: None,
                provenance: None,
                effort: None,
            };
            let params = spec.to_experiment_params()?;
            return ScenarioGenerator::new(params)
                .generate(seed)
                .map_err(|e| SpecError::model("", &e));
        }

        // Heterogeneous population: draw the same placement and shadowing
        // streams the generator uses, plus a third stream for template
        // sampling and per-user jitter.
        let layout = NetworkLayout::hexagonal(
            self.topology.servers,
            Meters::new(self.topology.inter_site_distance_m),
        )
        .map_err(|e| SpecError::model("topology", &e))?;
        let mut placement_rng = StdRng::seed_from_u64(seed);
        let positions = match self.population.placement {
            PlacementSpec::Uniform => {
                place_users_uniform(&layout, self.population.users, &mut placement_rng)
            }
            PlacementSpec::Hotspots { clusters, spread_m } => place_users_hotspots(
                &layout,
                self.population.users,
                clusters,
                spread_m,
                &mut placement_rng,
            ),
        };
        let mut shadow_rng = StdRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
        let model = ChannelModel::paper_default().with_shadowing_db(self.radio.shadowing_db);
        let gains: ChannelGains =
            model.generate(&layout, &positions, self.radio.subchannels, &mut shadow_rng);

        let mut template_rng = StdRng::seed_from_u64(seed ^ TEMPLATE_STREAM_SALT);
        let total_weight: f64 = self.population.templates.iter().map(|t| t.weight).sum();
        let mut users = Vec::with_capacity(self.population.users);
        for u in 0..self.population.users {
            let template =
                pick_template(&self.population.templates, total_weight, &mut template_rng);
            users.push(
                template
                    .build_user(
                        self.downlink.as_ref().map(|d| d.output_kb),
                        &mut template_rng,
                    )
                    .map_err(|e| SpecError::model(format!("population.template ({u})"), &e))?,
            );
        }
        let servers = vec![
            ServerProfile::new(Hertz::from_giga(self.compute.server_cpu_ghz))
                .map_err(|e| SpecError::model("compute.server_cpu_ghz", &e))?;
            self.topology.servers
        ];
        let ofdma = OfdmaConfig::new(Hertz::new(self.radio.bandwidth_hz), self.radio.subchannels)
            .map_err(|e| SpecError::model("radio", &e))?;
        let scenario = Scenario::new(
            users,
            servers,
            ofdma,
            gains,
            DbMilliwatts::new(self.radio.noise_dbm).to_watts(),
        )
        .map_err(|e| SpecError::model("", &e))?;
        match &self.downlink {
            Some(d) => scenario
                .with_downlink(BitsPerSecond::new(d.rate_mbps * 1.0e6))
                .map_err(|e| SpecError::model("downlink", &e)),
            None => Ok(scenario),
        }
    }
}

fn pick_template<'a>(
    templates: &'a [UserTemplate],
    total_weight: f64,
    rng: &mut StdRng,
) -> &'a UserTemplate {
    let mut pick = rng.gen::<f64>() * total_weight;
    for t in templates {
        if pick < t.weight {
            return t;
        }
        pick -= t.weight;
    }
    templates.last().expect("validate() requires a template")
}

impl UserTemplate {
    fn build_user(
        &self,
        output_kb: Option<f64>,
        rng: &mut StdRng,
    ) -> Result<UserSpec, mec_types::Error> {
        let beta = if self.beta_time_spread > 0.0 {
            let lo = (self.beta_time - self.beta_time_spread).max(0.0);
            let hi = (self.beta_time + self.beta_time_spread).min(1.0);
            rng.gen_range(lo..=hi)
        } else {
            self.beta_time
        };
        let data = Bits::from_kilobytes(self.task_data_kb);
        let workload = Cycles::from_mega(self.task_mcycles);
        let task = match output_kb {
            Some(kb) => Task::with_output(data, workload, Bits::from_kilobytes(kb))?,
            None => Task::new(data, workload)?,
        };
        Ok(UserSpec {
            task,
            device: DeviceProfile::new(
                Hertz::from_giga(self.user_cpu_ghz),
                self.kappa,
                DbMilliwatts::new(10.0),
            )?,
            preferences: UserPreferences::new(beta)?,
            lambda: ProviderPreference::new(self.lambda)?,
        })
    }
}

impl ExplicitSpec {
    fn materialize(&self) -> Result<Scenario, SpecError> {
        let mut users = Vec::with_capacity(self.users.len());
        for (i, u) in self.users.iter().enumerate() {
            let p = |field: &str| format!("explicit.user[{i}].{field}");
            let data = Bits::new(u.task_data_bits);
            let workload = Cycles::new(u.task_cycles);
            let task = match u.task_output_bits {
                Some(bits) => Task::with_output(data, workload, Bits::new(bits)),
                None => Task::new(data, workload),
            }
            .map_err(|e| SpecError::model(p("task_data_bits"), &e))?;
            users.push(UserSpec {
                task,
                device: DeviceProfile::new(
                    Hertz::new(u.user_cpu_hz),
                    u.kappa,
                    DbMilliwatts::new(u.tx_power_dbm),
                )
                .map_err(|e| SpecError::model(p("user_cpu_hz"), &e))?,
                preferences: UserPreferences::new(u.beta_time)
                    .map_err(|e| SpecError::model(p("beta_time"), &e))?,
                lambda: ProviderPreference::new(u.lambda)
                    .map_err(|e| SpecError::model(p("lambda"), &e))?,
            });
        }
        let servers = self
            .server_cpu_hz
            .iter()
            .enumerate()
            .map(|(i, &cpu)| {
                ServerProfile::new(Hertz::new(cpu))
                    .map_err(|e| SpecError::model(format!("explicit.server_cpu_hz[{i}]"), &e))
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        let ofdma = OfdmaConfig::new(Hertz::new(self.bandwidth_hz), self.subchannels)
            .map_err(|e| SpecError::model("explicit.bandwidth_hz", &e))?;
        let gains = ChannelGains::from_fn(
            self.users.len(),
            self.server_cpu_hz.len(),
            self.subchannels,
            |u, s, j| self.users[u.index()].gains[s.index()][j.index()],
        )
        .map_err(|e| SpecError::model("explicit.user", &e))?;
        let scenario = Scenario::new(users, servers, ofdma, gains, Watts::new(self.noise_w))
            .map_err(|e| SpecError::model("explicit", &e))?;
        match self.downlink_bps {
            Some(bps) => scenario
                .with_downlink(BitsPerSecond::new(bps))
                .map_err(|e| SpecError::model("explicit.downlink_bps", &e)),
            None => Ok(scenario),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;

    #[test]
    fn single_template_specs_reproduce_the_generator_bit_for_bit() {
        let spec = ScenarioBuilder::new("parity").servers(4).users(6).build();
        let scenario = spec.materialize(11).unwrap();
        let generated = ScenarioGenerator::new(spec.to_experiment_params().unwrap())
            .generate(11)
            .unwrap();
        assert_eq!(scenario.gains(), generated.gains());
        assert_eq!(scenario.num_users(), 6);
        assert_eq!(scenario.num_servers(), 4);
    }

    #[test]
    fn multi_template_populations_are_heterogeneous_and_deterministic() {
        let heavy = UserTemplate {
            task_mcycles: 3000.0,
            ..UserTemplate::default()
        };
        let spec = ScenarioBuilder::new("mixed")
            .servers(4)
            .users(20)
            .add_template(heavy)
            .build();
        let a = spec.materialize(3).unwrap();
        let b = spec.materialize(3).unwrap();
        let c = spec.materialize(4).unwrap();
        assert_eq!(a.gains(), b.gains());
        assert_ne!(a.gains(), c.gains());
        let workloads: Vec<f64> = a
            .users()
            .iter()
            .map(|u| u.task.workload().as_cycles())
            .collect();
        assert!(
            workloads.iter().any(|w| *w != workloads[0]),
            "two templates should mix: {workloads:?}"
        );
    }

    #[test]
    fn explicit_specs_are_seed_independent() {
        let toml = r#"
schema_version = 1
name = "explicit"

[explicit]
bandwidth_hz = 20e6
subchannels = 2
noise_w = 1e-13
server_cpu_hz = [2e10, 2e10]

[[explicit.user]]
task_data_bits = 3440640.0
task_cycles = 1e9
beta_time = 0.5
lambda = 1.0
user_cpu_hz = 1e9
kappa = 5e-27
tx_power_dbm = 10.0
gains = [[1.5e-10, 2.5e-10], [0.5e-10, 3.5e-10]]
"#;
        let spec = ScenarioSpec::from_toml_str(toml).unwrap();
        let a = spec.materialize(0).unwrap();
        let b = spec.materialize(999).unwrap();
        assert_eq!(a.gains(), b.gains());
        assert_eq!(a.num_users(), 1);
        assert_eq!(a.num_servers(), 2);
        let g = a.gains().gain(
            mec_types::UserId::new(0),
            mec_types::ServerId::new(1),
            mec_types::SubchannelId::new(1),
        );
        assert_eq!(g.to_bits(), (3.5e-10f64).to_bits());
    }

    #[test]
    fn online_plan_runs_the_timeline_end_to_end() {
        let spec = ScenarioBuilder::new("plan")
            .servers(4)
            .users(6)
            .poisson_churn(0.05, 120.0)
            .online(|o| {
                o.epochs = 4;
                o.warm_budget = Some(150);
                o.min_temperature = Some(1e-2);
            })
            .server_outage(15.0, 1)
            .server_recovery(25.0, 1)
            .build();
        let mut plan = spec.online_plan(5).unwrap();
        assert_eq!(plan.epochs, 4);
        let reports = plan.engine.run(plan.epochs).unwrap();
        // Epochs start at t = 0, 10, 20, 30: the outage (15 s) fires at
        // epoch 2, the recovery (25 s) at epoch 3.
        assert_eq!(reports[2].servers_up, 3, "outage must take effect");
        assert_eq!(reports[3].servers_up, 4);
    }

    #[test]
    fn online_plan_requires_an_online_section() {
        let spec = ScenarioBuilder::new("offline").build();
        let Err(err) = spec.online_plan(0) else {
            panic!("expected an error for a spec with no [online] section");
        };
        assert_eq!(err.path, "online");
    }
}
