//! The versioned `ScenarioSpec` schema: structs, strict decoding,
//! lossless encoding, and validation.
//!
//! A spec document has two mutually-exclusive modes:
//!
//! - **generated** — topology/radio/compute/population sections describe
//!   a parameterized regime; `materialize(seed)` draws placements, gains
//!   and per-user jitter deterministically from the seed. This is the
//!   mode presets, the corpus and the online engine use.
//! - **explicit** — an `[explicit]` table carries every coefficient
//!   (tasks, CPU rates, channel-gain tensors) as raw numbers. Explicit
//!   specs are seed-independent and bit-exact; the conformance fuzzer
//!   emits violations in this mode so artifacts replay identically.
//!
//! All decoding is strict (`deny_unknown_fields` semantics): unknown or
//! ill-typed fields produce a [`SpecError`] carrying the dotted path of
//! the offending field.

use crate::decode::{f64_v, MapBuilder, Walk};
use crate::error::SpecError;
use crate::toml;
use serde::Content;

/// The only schema version this build reads.
pub const SCHEMA_VERSION: u64 = 1;

/// A complete, versioned scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Format version; must equal [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Short machine-friendly name (`snake_case` by convention).
    pub name: String,
    /// Optional human-readable description.
    pub description: Option<String>,
    /// Generated or explicit construction mode.
    pub mode: SpecMode,
    /// Optional churn process (online runs).
    pub churn: Option<ChurnSpec>,
    /// Optional admission policy (online runs).
    pub admission: Option<AdmissionSpec>,
    /// Optional SLA deadline (online runs).
    pub sla: Option<SlaSpec>,
    /// Optional online-engine configuration.
    pub online: Option<OnlineSpec>,
    /// Timed events injected into an online run.
    pub timeline: Vec<TimelineEventSpec>,
    /// Optional golden assertions checked by the corpus runner.
    pub expect: Option<ExpectSpec>,
    /// Optional origin metadata (fuzzer artifacts record it here).
    pub provenance: Option<ProvenanceSpec>,
    /// Optional solver-effort overrides (preset budgets).
    pub effort: Option<EffortSpec>,
}

/// How the scenario is constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecMode {
    /// Parameterized regime, drawn deterministically from a seed.
    Generated(GeneratedSpec),
    /// Every coefficient given literally; seed-independent.
    Explicit(ExplicitSpec),
}

// ---------------------------------------------------------------------------
// Generated mode
// ---------------------------------------------------------------------------

/// Parameterized scenario description (seeded materialization).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedSpec {
    /// Hexagonal cell layout.
    pub topology: TopologySpec,
    /// OFDMA and channel configuration.
    pub radio: RadioSpec,
    /// Server-side compute.
    pub compute: ComputeSpec,
    /// User count, placement and templates.
    pub population: PopulationSpec,
    /// Optional downlink (result return) modelling.
    pub downlink: Option<DownlinkSpec>,
}

/// `[topology]` — hexagonal layout parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Number of edge servers (hexagonal rings around the center).
    pub servers: usize,
    /// Inter-site distance in meters.
    pub inter_site_distance_m: f64,
}

impl Default for TopologySpec {
    fn default() -> Self {
        Self {
            servers: 9,
            inter_site_distance_m: 1000.0,
        }
    }
}

/// `[radio]` — OFDMA and channel parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioSpec {
    /// Uplink system bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// OFDMA subchannels per server.
    pub subchannels: usize,
    /// Noise power in dBm.
    pub noise_dbm: f64,
    /// Device transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Log-normal shadowing standard deviation in dB (0 disables).
    pub shadowing_db: f64,
}

impl Default for RadioSpec {
    fn default() -> Self {
        Self {
            bandwidth_hz: 20e6,
            subchannels: 3,
            noise_dbm: -100.0,
            tx_power_dbm: 10.0,
            shadowing_db: 8.0,
        }
    }
}

/// `[compute]` — server-side compute parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSpec {
    /// Per-server CPU capacity in GHz.
    pub server_cpu_ghz: f64,
}

impl Default for ComputeSpec {
    fn default() -> Self {
        Self {
            server_cpu_ghz: 20.0,
        }
    }
}

/// User placement over the layout.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// Uniform over the coverage area.
    Uniform,
    /// Clustered around `clusters` random hotspots.
    Hotspots {
        /// Number of hotspot clusters.
        clusters: usize,
        /// Gaussian spread around each hotspot, meters.
        spread_m: f64,
    },
}

/// `[population]` — who is in the cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Number of users.
    pub users: usize,
    /// Spatial placement model.
    pub placement: PlacementSpec,
    /// Weighted user templates (`[[population.template]]`).
    pub templates: Vec<UserTemplate>,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        Self {
            users: 30,
            placement: PlacementSpec::Uniform,
            templates: vec![UserTemplate::default()],
        }
    }
}

/// One weighted user archetype.
#[derive(Debug, Clone, PartialEq)]
pub struct UserTemplate {
    /// Sampling weight relative to sibling templates.
    pub weight: f64,
    /// Task input size in kilobytes.
    pub task_data_kb: f64,
    /// Task workload in megacycles.
    pub task_mcycles: f64,
    /// Latency preference weight `beta^t` in `[0, 1]`.
    pub beta_time: f64,
    /// Uniform jitter half-width applied to `beta_time` per user.
    pub beta_time_spread: f64,
    /// Provider preference weight `lambda`.
    pub lambda: f64,
    /// Device CPU in GHz.
    pub user_cpu_ghz: f64,
    /// Effective switched capacitance.
    pub kappa: f64,
}

impl Default for UserTemplate {
    fn default() -> Self {
        Self {
            weight: 1.0,
            task_data_kb: 420.0,
            task_mcycles: 1000.0,
            beta_time: 0.5,
            beta_time_spread: 0.0,
            lambda: 1.0,
            user_cpu_ghz: 1.0,
            kappa: 5e-27,
        }
    }
}

/// `[downlink]` — result-return modelling.
#[derive(Debug, Clone, PartialEq)]
pub struct DownlinkSpec {
    /// Downlink rate in Mbit/s.
    pub rate_mbps: f64,
    /// Task output size in kilobytes.
    pub output_kb: f64,
}

// ---------------------------------------------------------------------------
// Explicit mode
// ---------------------------------------------------------------------------

/// `[explicit]` — every coefficient given literally.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitSpec {
    /// Uplink system bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// OFDMA subchannels per server.
    pub subchannels: usize,
    /// Noise power in watts (raw, bit-exact).
    pub noise_w: f64,
    /// Per-server CPU capacity in Hz.
    pub server_cpu_hz: Vec<f64>,
    /// Optional downlink rate in bit/s paired with nothing else; output
    /// sizes live on the users.
    pub downlink_bps: Option<f64>,
    /// Per-user coefficients (`[[explicit.user]]`).
    pub users: Vec<ExplicitUser>,
}

/// One fully-specified user.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitUser {
    /// Task input size in bits.
    pub task_data_bits: f64,
    /// Task workload in cycles.
    pub task_cycles: f64,
    /// Optional task output size in bits.
    pub task_output_bits: Option<f64>,
    /// Latency preference weight.
    pub beta_time: f64,
    /// Provider preference weight.
    pub lambda: f64,
    /// Device CPU in Hz.
    pub user_cpu_hz: f64,
    /// Effective switched capacitance.
    pub kappa: f64,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Channel gains, `gains[server][subchannel]` (linear).
    pub gains: Vec<Vec<f64>>,
}

// ---------------------------------------------------------------------------
// Online sections
// ---------------------------------------------------------------------------

/// `[churn]` — arrival/departure process.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Process kind; only `"poisson"` is supported.
    pub process: String,
    /// Users present at t = 0 (defaults to `population.users`).
    pub initial_users: Option<usize>,
    /// Poisson arrival rate in Hz.
    pub arrival_rate_hz: f64,
    /// Mean exponential sojourn in seconds.
    pub mean_sojourn_s: f64,
    /// Trace horizon in seconds (defaults to the online run length).
    pub horizon_s: Option<f64>,
    /// Use the adaptive process whose rate timeline events may scale.
    pub adaptive: bool,
}

/// `[admission]` — arrival gating.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSpec {
    /// `"admit_all"`, `"reject"` or `"force_local"`.
    pub policy: String,
    /// Scheduled-population cap for `reject` / `force_local`.
    pub capacity: Option<usize>,
}

/// `[sla]` — completion deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaSpec {
    /// Per-epoch completion-time deadline in seconds.
    pub deadline_s: f64,
}

/// `[online]` — engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSpec {
    /// Number of epochs to run.
    pub epochs: usize,
    /// Epoch duration in seconds.
    pub epoch_duration_s: f64,
    /// Minimum waypoint speed, m/s.
    pub speed_min_mps: f64,
    /// Maximum waypoint speed, m/s.
    pub speed_max_mps: f64,
    /// Redraw shadowing each epoch.
    pub redraw_shadowing: bool,
    /// Warm-start proposal budget (`None` = cold solve each epoch).
    pub warm_budget: Option<u64>,
    /// Optional TTSA minimum-temperature override.
    pub min_temperature: Option<f64>,
}

impl Default for OnlineSpec {
    fn default() -> Self {
        Self {
            epochs: 10,
            epoch_duration_s: 10.0,
            speed_min_mps: 0.5,
            speed_max_mps: 2.0,
            redraw_shadowing: true,
            warm_budget: Some(3000),
            min_temperature: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

/// One `[[timeline]]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEventSpec {
    /// Injection time in seconds of simulated clock.
    pub at_s: f64,
    /// What happens.
    pub kind: TimelineEventKind,
}

/// The event taxonomy the online engine understands.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEventKind {
    /// Server drops out; its users are re-patched elsewhere.
    ServerOutage {
        /// Index of the server that fails.
        server: usize,
    },
    /// A previously-failed server comes back.
    ServerRecovery {
        /// Index of the server that recovers.
        server: usize,
    },
    /// A burst of simultaneous arrivals.
    FlashCrowd {
        /// How many users arrive at once.
        arrivals: usize,
        /// Mean exponential sojourn of the burst, seconds.
        mean_sojourn_s: f64,
    },
    /// Scales the (adaptive) Poisson arrival rate.
    LoadRamp {
        /// Multiplicative factor applied to the arrival rate.
        rate_factor: f64,
    },
    /// Relocates a fraction of users toward one cell.
    HotspotDrift {
        /// Target cell (server index).
        cell: usize,
        /// Fraction of active users that drift, in `(0, 1]`.
        fraction: f64,
    },
}

impl TimelineEventKind {
    /// The wire name of this event kind.
    pub fn name(&self) -> &'static str {
        match self {
            Self::ServerOutage { .. } => "server_outage",
            Self::ServerRecovery { .. } => "server_recovery",
            Self::FlashCrowd { .. } => "flash_crowd",
            Self::LoadRamp { .. } => "load_ramp",
            Self::HotspotDrift { .. } => "hotspot_drift",
        }
    }
}

// ---------------------------------------------------------------------------
// Expectations / provenance / effort
// ---------------------------------------------------------------------------

/// `[expect]` — golden assertions the corpus runner checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectSpec {
    /// Seed the assertions hold for.
    pub seed: u64,
    /// Offline solver the assertions run against: `"anneal"` (default)
    /// or `"shard"` (the sharded city-scale engine).
    pub solver: Option<String>,
    /// The TSAJS solution must be feasible.
    pub feasible: bool,
    /// Lower bound on the achieved objective.
    pub min_utility: Option<f64>,
    /// Upper bound on the achieved objective.
    pub max_utility: Option<f64>,
    /// At least this many users offload.
    pub min_offloaded: Option<usize>,
    /// Exact materialized user count.
    pub users: Option<usize>,
    /// Exact materialized server count.
    pub servers: Option<usize>,
    /// Exact materialized subchannel count.
    pub subchannels: Option<usize>,
    /// Online: SLA hit-rate floor over completed users.
    pub min_deadline_hit_rate: Option<f64>,
    /// Online: total arrivals floor across the run.
    pub min_arrivals: Option<usize>,
    /// Online: at least this many timeline events applied.
    pub min_events_applied: Option<usize>,
    /// Online: exact up-server count at the end of the run.
    pub final_servers_up: Option<usize>,
    /// Online: peak simultaneous active users floor.
    pub min_peak_active: Option<usize>,
}

/// `[provenance]` — where a spec came from (fuzzer artifacts).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceSpec {
    /// Invariant the artifact violated.
    pub invariant: Option<String>,
    /// Fuzzer seed that produced it.
    pub seed: Option<u64>,
    /// Offload probability of the fuzzed assignment.
    pub offload_probability: Option<f64>,
    /// Free-form origin string.
    pub source: Option<String>,
}

/// `[effort]` — solver-budget overrides carried by preset specs.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortSpec {
    /// Independent trials per experiment point.
    pub trials: usize,
    /// TTSA cooling floor.
    pub ttsa_min_temperature: f64,
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Parses a TOML document (decode only; call [`validate`](Self::validate)
    /// before materializing).
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        Self::decode(toml::parse(text)?)
    }

    /// Parses a JSON document.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let value: serde_json::Value = serde_json::from_str(text)
            .map_err(|e| SpecError::new("", format!("invalid JSON: {e}")))?;
        Self::decode(json_to_content(value))
    }

    /// Serializes to TOML. Inverse of [`from_toml_str`](Self::from_toml_str):
    /// the emitted text decodes to an equal spec, floats bit-exact.
    pub fn to_toml_string(&self) -> Result<String, SpecError> {
        toml::write(&self.encode())
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json_string(&self) -> Result<String, SpecError> {
        let value = content_to_json(self.encode());
        serde_json::to_string_pretty(&value)
            .map_err(|e| SpecError::new("", format!("JSON encoding failed: {e}")))
    }

    /// Decodes from a raw content tree, enforcing strict field checking.
    pub fn decode(content: Content) -> Result<Self, SpecError> {
        let mut w = Walk::root(content)?;
        let schema_version = match w.take("schema_version") {
            None => return Err(SpecError::new("schema_version", "missing required field")),
            Some(c) => crate::decode::u64_v(c, "schema_version")?,
        };
        if schema_version != SCHEMA_VERSION {
            return Err(SpecError::new(
                "schema_version",
                format!("unsupported version {schema_version} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let name = w.str_req("name")?;
        let description = w.str_opt("description")?;

        let explicit = w.table_opt("explicit")?;
        let mode = if let Some(e) = explicit {
            // Explicit mode: the generated sections must be absent.
            for section in ["topology", "radio", "compute", "population", "downlink"] {
                if w.has(section) {
                    return Err(SpecError::new(
                        section,
                        "conflicts with [explicit]: a spec is either generated or explicit",
                    ));
                }
            }
            SpecMode::Explicit(ExplicitSpec::decode(e)?)
        } else {
            SpecMode::Generated(GeneratedSpec::decode(&mut w)?)
        };

        let churn = w.table_opt("churn")?.map(ChurnSpec::decode).transpose()?;
        let admission = w
            .table_opt("admission")?
            .map(AdmissionSpec::decode)
            .transpose()?;
        let sla = w.table_opt("sla")?.map(SlaSpec::decode).transpose()?;
        let online = w.table_opt("online")?.map(OnlineSpec::decode).transpose()?;

        let mut timeline = Vec::new();
        if let Some(items) = w.seq_opt("timeline")? {
            for (item, path) in items {
                timeline.push(TimelineEventSpec::decode(Walk::at(item, path)?)?);
            }
        }

        let expect = w.table_opt("expect")?.map(ExpectSpec::decode).transpose()?;
        let provenance = w
            .table_opt("provenance")?
            .map(ProvenanceSpec::decode)
            .transpose()?;
        let effort = w.table_opt("effort")?.map(EffortSpec::decode).transpose()?;
        w.finish()?;

        Ok(Self {
            schema_version,
            name,
            description,
            mode,
            churn,
            admission,
            sla,
            online,
            timeline,
            expect,
            provenance,
            effort,
        })
    }

    /// Encodes to a content tree (full form: defaults written out).
    pub fn encode(&self) -> Content {
        let mut b = MapBuilder::new()
            .push("schema_version", Content::U64(self.schema_version))
            .push("name", Content::Str(self.name.clone()))
            .push_opt("description", self.description.clone().map(Content::Str));
        match &self.mode {
            SpecMode::Generated(g) => b = g.encode_into(b),
            SpecMode::Explicit(e) => b = b.push("explicit", e.encode()),
        }
        b = b
            .push_opt("churn", self.churn.as_ref().map(ChurnSpec::encode))
            .push_opt(
                "admission",
                self.admission.as_ref().map(AdmissionSpec::encode),
            )
            .push_opt("sla", self.sla.as_ref().map(SlaSpec::encode))
            .push_opt("online", self.online.as_ref().map(OnlineSpec::encode));
        if !self.timeline.is_empty() {
            b = b.push(
                "timeline",
                Content::Seq(
                    self.timeline
                        .iter()
                        .map(TimelineEventSpec::encode)
                        .collect(),
                ),
            );
        }
        b.push_opt("expect", self.expect.as_ref().map(ExpectSpec::encode))
            .push_opt(
                "provenance",
                self.provenance.as_ref().map(ProvenanceSpec::encode),
            )
            .push_opt("effort", self.effort.as_ref().map(EffortSpec::encode))
            .build()
    }
}

impl GeneratedSpec {
    fn decode(w: &mut Walk) -> Result<Self, SpecError> {
        let topology = match w.table_opt("topology")? {
            Some(mut t) => {
                let d = TopologySpec::default();
                let spec = TopologySpec {
                    servers: t.usize_or("servers", d.servers)?,
                    inter_site_distance_m: t
                        .f64_or("inter_site_distance_m", d.inter_site_distance_m)?,
                };
                t.finish()?;
                spec
            }
            None => TopologySpec::default(),
        };
        let radio = match w.table_opt("radio")? {
            Some(mut t) => {
                let d = RadioSpec::default();
                let spec = RadioSpec {
                    bandwidth_hz: t.f64_or("bandwidth_hz", d.bandwidth_hz)?,
                    subchannels: t.usize_or("subchannels", d.subchannels)?,
                    noise_dbm: t.f64_or("noise_dbm", d.noise_dbm)?,
                    tx_power_dbm: t.f64_or("tx_power_dbm", d.tx_power_dbm)?,
                    shadowing_db: t.f64_or("shadowing_db", d.shadowing_db)?,
                };
                t.finish()?;
                spec
            }
            None => RadioSpec::default(),
        };
        let compute = match w.table_opt("compute")? {
            Some(mut t) => {
                let d = ComputeSpec::default();
                let spec = ComputeSpec {
                    server_cpu_ghz: t.f64_or("server_cpu_ghz", d.server_cpu_ghz)?,
                };
                t.finish()?;
                spec
            }
            None => ComputeSpec::default(),
        };
        let population = match w.table_opt("population")? {
            Some(t) => PopulationSpec::decode(t)?,
            None => PopulationSpec::default(),
        };
        let downlink = match w.table_opt("downlink")? {
            Some(mut t) => {
                let spec = DownlinkSpec {
                    rate_mbps: t.f64_req("rate_mbps")?,
                    output_kb: t.f64_req("output_kb")?,
                };
                t.finish()?;
                Some(spec)
            }
            None => None,
        };
        Ok(Self {
            topology,
            radio,
            compute,
            population,
            downlink,
        })
    }

    fn encode_into(&self, b: MapBuilder) -> MapBuilder {
        let topology = MapBuilder::new()
            .push("servers", Content::U64(self.topology.servers as u64))
            .push(
                "inter_site_distance_m",
                Content::F64(self.topology.inter_site_distance_m),
            )
            .build();
        let radio = MapBuilder::new()
            .push("bandwidth_hz", Content::F64(self.radio.bandwidth_hz))
            .push("subchannels", Content::U64(self.radio.subchannels as u64))
            .push("noise_dbm", Content::F64(self.radio.noise_dbm))
            .push("tx_power_dbm", Content::F64(self.radio.tx_power_dbm))
            .push("shadowing_db", Content::F64(self.radio.shadowing_db))
            .build();
        let compute = MapBuilder::new()
            .push("server_cpu_ghz", Content::F64(self.compute.server_cpu_ghz))
            .build();
        b.push("topology", topology)
            .push("radio", radio)
            .push("compute", compute)
            .push("population", self.population.encode())
            .push_opt(
                "downlink",
                self.downlink.as_ref().map(|d| {
                    MapBuilder::new()
                        .push("rate_mbps", Content::F64(d.rate_mbps))
                        .push("output_kb", Content::F64(d.output_kb))
                        .build()
                }),
            )
    }
}

impl PopulationSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let d = PopulationSpec::default();
        let users = w.usize_or("users", d.users)?;
        let placement_name = w.str_or("placement", "uniform")?;
        let placement = match placement_name.as_str() {
            "uniform" => {
                for k in ["hotspot_clusters", "hotspot_spread_m"] {
                    if w.has(k) {
                        return Err(SpecError::new(
                            w.child(k),
                            "only valid when placement = \"hotspots\"",
                        ));
                    }
                }
                PlacementSpec::Uniform
            }
            "hotspots" => PlacementSpec::Hotspots {
                clusters: w.usize_or("hotspot_clusters", 3)?,
                spread_m: w.f64_or("hotspot_spread_m", 80.0)?,
            },
            other => {
                return Err(SpecError::new(
                    w.child("placement"),
                    format!("unknown placement `{other}` (expected \"uniform\" or \"hotspots\")"),
                ))
            }
        };
        let templates = match w.seq_opt("template")? {
            None => vec![UserTemplate::default()],
            Some(items) => {
                let mut out = Vec::with_capacity(items.len());
                for (item, path) in items {
                    out.push(UserTemplate::decode(Walk::at(item, path)?)?);
                }
                out
            }
        };
        w.finish()?;
        Ok(Self {
            users,
            placement,
            templates,
        })
    }

    fn encode(&self) -> Content {
        let mut b = MapBuilder::new().push("users", Content::U64(self.users as u64));
        match &self.placement {
            PlacementSpec::Uniform => {
                b = b.push("placement", Content::Str("uniform".into()));
            }
            PlacementSpec::Hotspots { clusters, spread_m } => {
                b = b
                    .push("placement", Content::Str("hotspots".into()))
                    .push("hotspot_clusters", Content::U64(*clusters as u64))
                    .push("hotspot_spread_m", Content::F64(*spread_m));
            }
        }
        b.push(
            "template",
            Content::Seq(self.templates.iter().map(UserTemplate::encode).collect()),
        )
        .build()
    }
}

impl UserTemplate {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let d = UserTemplate::default();
        let t = Self {
            weight: w.f64_or("weight", d.weight)?,
            task_data_kb: w.f64_or("task_data_kb", d.task_data_kb)?,
            task_mcycles: w.f64_or("task_mcycles", d.task_mcycles)?,
            beta_time: w.f64_or("beta_time", d.beta_time)?,
            beta_time_spread: w.f64_or("beta_time_spread", d.beta_time_spread)?,
            lambda: w.f64_or("lambda", d.lambda)?,
            user_cpu_ghz: w.f64_or("user_cpu_ghz", d.user_cpu_ghz)?,
            kappa: w.f64_or("kappa", d.kappa)?,
        };
        w.finish()?;
        Ok(t)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("weight", Content::F64(self.weight))
            .push("task_data_kb", Content::F64(self.task_data_kb))
            .push("task_mcycles", Content::F64(self.task_mcycles))
            .push("beta_time", Content::F64(self.beta_time))
            .push("beta_time_spread", Content::F64(self.beta_time_spread))
            .push("lambda", Content::F64(self.lambda))
            .push("user_cpu_ghz", Content::F64(self.user_cpu_ghz))
            .push("kappa", Content::F64(self.kappa))
            .build()
    }
}

impl ExplicitSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let bandwidth_hz = w.f64_req("bandwidth_hz")?;
        let subchannels = w.usize_req("subchannels")?;
        let noise_w = w.f64_req("noise_w")?;
        let server_cpu_hz = match w.seq_opt("server_cpu_hz")? {
            Some(items) => items
                .into_iter()
                .map(|(c, p)| f64_v(c, &p))
                .collect::<Result<Vec<f64>, SpecError>>()?,
            None => {
                return Err(SpecError::new(
                    w.child("server_cpu_hz"),
                    "missing required field",
                ))
            }
        };
        let downlink_bps = w.f64_opt("downlink_bps")?;
        let users = match w.seq_opt("user")? {
            Some(items) => {
                let mut out = Vec::with_capacity(items.len());
                for (item, path) in items {
                    out.push(ExplicitUser::decode(Walk::at(item, path)?)?);
                }
                out
            }
            None => return Err(SpecError::new(w.child("user"), "missing required field")),
        };
        w.finish()?;
        Ok(Self {
            bandwidth_hz,
            subchannels,
            noise_w,
            server_cpu_hz,
            downlink_bps,
            users,
        })
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("bandwidth_hz", Content::F64(self.bandwidth_hz))
            .push("subchannels", Content::U64(self.subchannels as u64))
            .push("noise_w", Content::F64(self.noise_w))
            .push(
                "server_cpu_hz",
                Content::Seq(
                    self.server_cpu_hz
                        .iter()
                        .map(|v| Content::F64(*v))
                        .collect(),
                ),
            )
            .push_opt("downlink_bps", self.downlink_bps.map(Content::F64))
            .push(
                "user",
                Content::Seq(self.users.iter().map(ExplicitUser::encode).collect()),
            )
            .build()
    }
}

impl ExplicitUser {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let task_data_bits = w.f64_req("task_data_bits")?;
        let task_cycles = w.f64_req("task_cycles")?;
        let task_output_bits = w.f64_opt("task_output_bits")?;
        let beta_time = w.f64_req("beta_time")?;
        let lambda = w.f64_req("lambda")?;
        let user_cpu_hz = w.f64_req("user_cpu_hz")?;
        let kappa = w.f64_req("kappa")?;
        let tx_power_dbm = w.f64_req("tx_power_dbm")?;
        let gains = match w.seq_opt("gains")? {
            None => return Err(SpecError::new(w.child("gains"), "missing required field")),
            Some(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for (row, row_path) in rows {
                    match row {
                        Content::Seq(cells) => {
                            let mut r = Vec::with_capacity(cells.len());
                            for (j, cell) in cells.into_iter().enumerate() {
                                r.push(f64_v(cell, &format!("{row_path}[{j}]"))?);
                            }
                            out.push(r);
                        }
                        _ => {
                            return Err(SpecError::new(
                                row_path,
                                "expected an array of per-subchannel gains",
                            ))
                        }
                    }
                }
                out
            }
        };
        w.finish()?;
        Ok(Self {
            task_data_bits,
            task_cycles,
            task_output_bits,
            beta_time,
            lambda,
            user_cpu_hz,
            kappa,
            tx_power_dbm,
            gains,
        })
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("task_data_bits", Content::F64(self.task_data_bits))
            .push("task_cycles", Content::F64(self.task_cycles))
            .push_opt("task_output_bits", self.task_output_bits.map(Content::F64))
            .push("beta_time", Content::F64(self.beta_time))
            .push("lambda", Content::F64(self.lambda))
            .push("user_cpu_hz", Content::F64(self.user_cpu_hz))
            .push("kappa", Content::F64(self.kappa))
            .push("tx_power_dbm", Content::F64(self.tx_power_dbm))
            .push(
                "gains",
                Content::Seq(
                    self.gains
                        .iter()
                        .map(|row| Content::Seq(row.iter().map(|v| Content::F64(*v)).collect()))
                        .collect(),
                ),
            )
            .build()
    }
}

impl ChurnSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let spec = Self {
            process: w.str_or("process", "poisson")?,
            initial_users: w.usize_opt("initial_users")?,
            arrival_rate_hz: w.f64_req("arrival_rate_hz")?,
            mean_sojourn_s: w.f64_req("mean_sojourn_s")?,
            horizon_s: w.f64_opt("horizon_s")?,
            adaptive: w.bool_or("adaptive", false)?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("process", Content::Str(self.process.clone()))
            .push_opt(
                "initial_users",
                self.initial_users.map(|v| Content::U64(v as u64)),
            )
            .push("arrival_rate_hz", Content::F64(self.arrival_rate_hz))
            .push("mean_sojourn_s", Content::F64(self.mean_sojourn_s))
            .push_opt("horizon_s", self.horizon_s.map(Content::F64))
            .push("adaptive", Content::Bool(self.adaptive))
            .build()
    }
}

impl AdmissionSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let spec = Self {
            policy: w.str_req("policy")?,
            capacity: w.usize_opt("capacity")?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("policy", Content::Str(self.policy.clone()))
            .push_opt("capacity", self.capacity.map(|v| Content::U64(v as u64)))
            .build()
    }
}

impl SlaSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let spec = Self {
            deadline_s: w.f64_req("deadline_s")?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("deadline_s", Content::F64(self.deadline_s))
            .build()
    }
}

impl OnlineSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let d = OnlineSpec::default();
        let warm_budget = if w.bool_or("cold", false)? {
            if w.has("warm_budget") {
                return Err(SpecError::new(
                    w.child("warm_budget"),
                    "conflicts with cold = true",
                ));
            }
            None
        } else {
            Some(w.u64_or("warm_budget", d.warm_budget.unwrap_or(3000))?)
        };
        let spec = Self {
            epochs: w.usize_or("epochs", d.epochs)?,
            epoch_duration_s: w.f64_or("epoch_duration_s", d.epoch_duration_s)?,
            speed_min_mps: w.f64_or("speed_min_mps", d.speed_min_mps)?,
            speed_max_mps: w.f64_or("speed_max_mps", d.speed_max_mps)?,
            redraw_shadowing: w.bool_or("redraw_shadowing", d.redraw_shadowing)?,
            warm_budget,
            min_temperature: w.f64_opt("min_temperature")?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        let mut b = MapBuilder::new()
            .push("epochs", Content::U64(self.epochs as u64))
            .push("epoch_duration_s", Content::F64(self.epoch_duration_s))
            .push("speed_min_mps", Content::F64(self.speed_min_mps))
            .push("speed_max_mps", Content::F64(self.speed_max_mps))
            .push("redraw_shadowing", Content::Bool(self.redraw_shadowing));
        match self.warm_budget {
            Some(v) => b = b.push("warm_budget", Content::U64(v)),
            None => b = b.push("cold", Content::Bool(true)),
        }
        b.push_opt("min_temperature", self.min_temperature.map(Content::F64))
            .build()
    }
}

impl TimelineEventSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let at_s = w.f64_req("at_s")?;
        let event_path = w.child("event");
        let event = w.str_req("event")?;
        let kind = match event.as_str() {
            "server_outage" => TimelineEventKind::ServerOutage {
                server: w.usize_req("server")?,
            },
            "server_recovery" => TimelineEventKind::ServerRecovery {
                server: w.usize_req("server")?,
            },
            "flash_crowd" => TimelineEventKind::FlashCrowd {
                arrivals: w.usize_req("arrivals")?,
                mean_sojourn_s: w.f64_req("mean_sojourn_s")?,
            },
            "load_ramp" => TimelineEventKind::LoadRamp {
                rate_factor: w.f64_req("rate_factor")?,
            },
            "hotspot_drift" => TimelineEventKind::HotspotDrift {
                cell: w.usize_req("cell")?,
                fraction: w.f64_req("fraction")?,
            },
            other => {
                return Err(SpecError::new(
                    event_path,
                    format!("unknown event `{other}`"),
                ))
            }
        };
        w.finish()?;
        Ok(Self { at_s, kind })
    }

    fn encode(&self) -> Content {
        let b = MapBuilder::new()
            .push("at_s", Content::F64(self.at_s))
            .push("event", Content::Str(self.kind.name().into()));
        match &self.kind {
            TimelineEventKind::ServerOutage { server }
            | TimelineEventKind::ServerRecovery { server } => {
                b.push("server", Content::U64(*server as u64))
            }
            TimelineEventKind::FlashCrowd {
                arrivals,
                mean_sojourn_s,
            } => b
                .push("arrivals", Content::U64(*arrivals as u64))
                .push("mean_sojourn_s", Content::F64(*mean_sojourn_s)),
            TimelineEventKind::LoadRamp { rate_factor } => {
                b.push("rate_factor", Content::F64(*rate_factor))
            }
            TimelineEventKind::HotspotDrift { cell, fraction } => b
                .push("cell", Content::U64(*cell as u64))
                .push("fraction", Content::F64(*fraction)),
        }
        .build()
    }
}

impl ExpectSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let spec = Self {
            seed: w.u64_or("seed", 0)?,
            solver: w.str_opt("solver")?,
            feasible: w.bool_or("feasible", true)?,
            min_utility: w.f64_opt("min_utility")?,
            max_utility: w.f64_opt("max_utility")?,
            min_offloaded: w.usize_opt("min_offloaded")?,
            users: w.usize_opt("users")?,
            servers: w.usize_opt("servers")?,
            subchannels: w.usize_opt("subchannels")?,
            min_deadline_hit_rate: w.f64_opt("min_deadline_hit_rate")?,
            min_arrivals: w.usize_opt("min_arrivals")?,
            min_events_applied: w.usize_opt("min_events_applied")?,
            final_servers_up: w.usize_opt("final_servers_up")?,
            min_peak_active: w.usize_opt("min_peak_active")?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("seed", Content::U64(self.seed))
            .push_opt("solver", self.solver.clone().map(Content::Str))
            .push("feasible", Content::Bool(self.feasible))
            .push_opt("min_utility", self.min_utility.map(Content::F64))
            .push_opt("max_utility", self.max_utility.map(Content::F64))
            .push_opt(
                "min_offloaded",
                self.min_offloaded.map(|v| Content::U64(v as u64)),
            )
            .push_opt("users", self.users.map(|v| Content::U64(v as u64)))
            .push_opt("servers", self.servers.map(|v| Content::U64(v as u64)))
            .push_opt(
                "subchannels",
                self.subchannels.map(|v| Content::U64(v as u64)),
            )
            .push_opt(
                "min_deadline_hit_rate",
                self.min_deadline_hit_rate.map(Content::F64),
            )
            .push_opt(
                "min_arrivals",
                self.min_arrivals.map(|v| Content::U64(v as u64)),
            )
            .push_opt(
                "min_events_applied",
                self.min_events_applied.map(|v| Content::U64(v as u64)),
            )
            .push_opt(
                "final_servers_up",
                self.final_servers_up.map(|v| Content::U64(v as u64)),
            )
            .push_opt(
                "min_peak_active",
                self.min_peak_active.map(|v| Content::U64(v as u64)),
            )
            .build()
    }
}

impl ProvenanceSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let spec = Self {
            invariant: w.str_opt("invariant")?,
            seed: w.u64_opt("seed")?,
            offload_probability: w.f64_opt("offload_probability")?,
            source: w.str_opt("source")?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push_opt("invariant", self.invariant.clone().map(Content::Str))
            .push_opt("seed", self.seed.map(Content::U64))
            .push_opt(
                "offload_probability",
                self.offload_probability.map(Content::F64),
            )
            .push_opt("source", self.source.clone().map(Content::Str))
            .build()
    }
}

impl EffortSpec {
    fn decode(mut w: Walk) -> Result<Self, SpecError> {
        let spec = Self {
            trials: w.usize_req("trials")?,
            ttsa_min_temperature: w.f64_req("ttsa_min_temperature")?,
        };
        w.finish()?;
        Ok(spec)
    }

    fn encode(&self) -> Content {
        MapBuilder::new()
            .push("trials", Content::U64(self.trials as u64))
            .push(
                "ttsa_min_temperature",
                Content::F64(self.ttsa_min_temperature),
            )
            .build()
    }
}

// ---------------------------------------------------------------------------
// JSON bridge
// ---------------------------------------------------------------------------

fn json_to_content(v: serde_json::Value) -> Content {
    use serde_json::Value as V;
    match v {
        V::Null => Content::Null,
        V::Bool(b) => Content::Bool(b),
        V::U64(n) => Content::U64(n),
        V::I64(n) => Content::I64(n),
        V::F64(n) => Content::F64(n),
        V::String(s) => Content::Str(s),
        V::Array(items) => Content::Seq(items.into_iter().map(json_to_content).collect()),
        V::Object(entries) => Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k, json_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_json(c: Content) -> serde_json::Value {
    use serde_json::Value as V;
    match c {
        Content::Null => V::Null,
        Content::Bool(b) => V::Bool(b),
        Content::U64(n) => V::U64(n),
        Content::I64(n) => V::I64(n),
        Content::F64(n) => V::F64(n),
        Content::Str(s) => V::String(s),
        Content::Seq(items) => V::Array(items.into_iter().map(content_to_json).collect()),
        Content::Map(entries) => V::Object(
            entries
                .into_iter()
                .filter(|(_, v)| !matches!(v, Content::Null))
                .map(|(k, v)| (k, content_to_json(v)))
                .collect(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

fn positive(v: f64, path: &str) -> Result<(), SpecError> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(SpecError::new(path, format!("must be positive (got {v})")))
    }
}

fn non_negative(v: f64, path: &str) -> Result<(), SpecError> {
    if v.is_finite() && v >= 0.0 {
        Ok(())
    } else {
        Err(SpecError::new(
            path,
            format!("must be non-negative (got {v})"),
        ))
    }
}

fn unit_interval(v: f64, path: &str) -> Result<(), SpecError> {
    if v.is_finite() && (0.0..=1.0).contains(&v) {
        Ok(())
    } else {
        Err(SpecError::new(
            path,
            format!("must be within [0, 1] (got {v})"),
        ))
    }
}

impl ScenarioSpec {
    /// Checks all semantic constraints. Parsing already enforced types
    /// and field names; this layer enforces ranges, cross-field
    /// consistency, and timeline coherence.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::new("name", "must not be empty"));
        }
        match &self.mode {
            SpecMode::Generated(g) => g.validate()?,
            SpecMode::Explicit(e) => {
                e.validate()?;
                if self.online.is_some() || self.churn.is_some() || !self.timeline.is_empty() {
                    let field = if self.online.is_some() {
                        "online"
                    } else if self.churn.is_some() {
                        "churn"
                    } else {
                        "timeline"
                    };
                    return Err(SpecError::new(
                        field,
                        "online simulation requires a generated (not explicit) spec",
                    ));
                }
            }
        }
        if let Some(churn) = &self.churn {
            churn.validate()?;
            if self.online.is_none() {
                return Err(SpecError::new("churn", "requires an [online] section"));
            }
        }
        if let Some(admission) = &self.admission {
            admission.validate()?;
            if self.online.is_none() {
                return Err(SpecError::new("admission", "requires an [online] section"));
            }
        }
        if let Some(sla) = &self.sla {
            positive(sla.deadline_s, "sla.deadline_s")?;
        }
        if let Some(online) = &self.online {
            online.validate()?;
        }
        self.validate_timeline()?;
        if let Some(expect) = &self.expect {
            expect.validate(self.online.is_some())?;
        }
        if let Some(effort) = &self.effort {
            if effort.trials == 0 {
                return Err(SpecError::new("effort.trials", "must be at least 1"));
            }
            positive(effort.ttsa_min_temperature, "effort.ttsa_min_temperature")?;
        }
        if let Some(p) = &self.provenance {
            if let Some(prob) = p.offload_probability {
                unit_interval(prob, "provenance.offload_probability")?;
            }
        }
        Ok(())
    }

    fn validate_timeline(&self) -> Result<(), SpecError> {
        if self.timeline.is_empty() {
            return Ok(());
        }
        if self.online.is_none() {
            return Err(SpecError::new("timeline", "requires an [online] section"));
        }
        let servers = match &self.mode {
            SpecMode::Generated(g) => g.topology.servers,
            SpecMode::Explicit(_) => unreachable!("explicit + timeline rejected above"),
        };
        for (i, ev) in self.timeline.iter().enumerate() {
            let path = format!("timeline[{i}]");
            non_negative(ev.at_s, &format!("{path}.at_s"))?;
            match &ev.kind {
                TimelineEventKind::ServerOutage { server }
                | TimelineEventKind::ServerRecovery { server } => {
                    if *server >= servers {
                        return Err(SpecError::new(
                            format!("{path}.server"),
                            format!("server {server} does not exist (topology has {servers})"),
                        ));
                    }
                }
                TimelineEventKind::FlashCrowd {
                    arrivals,
                    mean_sojourn_s,
                } => {
                    if *arrivals == 0 {
                        return Err(SpecError::new(
                            format!("{path}.arrivals"),
                            "must be at least 1",
                        ));
                    }
                    positive(*mean_sojourn_s, &format!("{path}.mean_sojourn_s"))?;
                }
                TimelineEventKind::LoadRamp { rate_factor } => {
                    positive(*rate_factor, &format!("{path}.rate_factor"))?;
                    if !self.churn.as_ref().is_some_and(|c| c.adaptive) {
                        return Err(SpecError::new(
                            path.clone(),
                            "load_ramp requires [churn] with adaptive = true",
                        ));
                    }
                }
                TimelineEventKind::HotspotDrift { cell, fraction } => {
                    if *cell >= servers {
                        return Err(SpecError::new(
                            format!("{path}.cell"),
                            format!("cell {cell} does not exist (topology has {servers})"),
                        ));
                    }
                    positive(*fraction, &format!("{path}.fraction"))?;
                    unit_interval(*fraction, &format!("{path}.fraction"))?;
                }
            }
            // Duplicate (time, kind, payload) pairs are overlapping events.
            for (j, other) in self.timeline.iter().enumerate().take(i) {
                if other.at_s == ev.at_s && other.kind == ev.kind {
                    return Err(SpecError::new(
                        path.clone(),
                        format!("overlaps timeline[{j}]: identical event at the same instant"),
                    ));
                }
            }
        }
        // Outage/recovery must alternate per server, in time order.
        let mut order: Vec<usize> = (0..self.timeline.len()).collect();
        order.sort_by(|&a, &b| {
            self.timeline[a]
                .at_s
                .partial_cmp(&self.timeline[b].at_s)
                .expect("at_s is finite")
                .then(a.cmp(&b))
        });
        let mut down = vec![false; servers];
        for idx in order {
            match &self.timeline[idx].kind {
                TimelineEventKind::ServerOutage { server } => {
                    if down[*server] {
                        return Err(SpecError::new(
                            format!("timeline[{idx}]"),
                            format!("overlapping outage: server {server} is already down"),
                        ));
                    }
                    down[*server] = true;
                    if down.iter().all(|d| *d) {
                        return Err(SpecError::new(
                            format!("timeline[{idx}]"),
                            "events leave every server down simultaneously",
                        ));
                    }
                }
                TimelineEventKind::ServerRecovery { server } => {
                    if !down[*server] {
                        return Err(SpecError::new(
                            format!("timeline[{idx}]"),
                            format!("server {server} is not down at this point"),
                        ));
                    }
                    down[*server] = false;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The number of servers still up after all timeline events fire.
    pub fn final_servers_up(&self) -> usize {
        let SpecMode::Generated(g) = &self.mode else {
            return 0;
        };
        let mut down = vec![false; g.topology.servers];
        for ev in &self.timeline {
            match &ev.kind {
                TimelineEventKind::ServerOutage { server } => down[*server] = true,
                TimelineEventKind::ServerRecovery { server } => down[*server] = false,
                _ => {}
            }
        }
        down.iter().filter(|d| !**d).count()
    }
}

impl GeneratedSpec {
    fn validate(&self) -> Result<(), SpecError> {
        if self.topology.servers == 0 {
            return Err(SpecError::new("topology.servers", "must be at least 1"));
        }
        positive(
            self.topology.inter_site_distance_m,
            "topology.inter_site_distance_m",
        )?;
        positive(self.radio.bandwidth_hz, "radio.bandwidth_hz")?;
        if self.radio.subchannels == 0 {
            return Err(SpecError::new("radio.subchannels", "must be at least 1"));
        }
        non_negative(self.radio.shadowing_db, "radio.shadowing_db")?;
        if !self.radio.noise_dbm.is_finite() {
            return Err(SpecError::new("radio.noise_dbm", "must be finite"));
        }
        if !self.radio.tx_power_dbm.is_finite() {
            return Err(SpecError::new("radio.tx_power_dbm", "must be finite"));
        }
        positive(self.compute.server_cpu_ghz, "compute.server_cpu_ghz")?;
        if self.population.users == 0 {
            return Err(SpecError::new("population.users", "must be at least 1"));
        }
        if let PlacementSpec::Hotspots { clusters, spread_m } = &self.population.placement {
            if *clusters == 0 {
                return Err(SpecError::new(
                    "population.hotspot_clusters",
                    "must be at least 1",
                ));
            }
            non_negative(*spread_m, "population.hotspot_spread_m")?;
        }
        if self.population.templates.is_empty() {
            return Err(SpecError::new(
                "population.template",
                "at least one template is required",
            ));
        }
        for (i, t) in self.population.templates.iter().enumerate() {
            let p = |field: &str| format!("population.template[{i}].{field}");
            positive(t.weight, &p("weight"))?;
            positive(t.task_data_kb, &p("task_data_kb"))?;
            positive(t.task_mcycles, &p("task_mcycles"))?;
            unit_interval(t.beta_time, &p("beta_time"))?;
            non_negative(t.beta_time_spread, &p("beta_time_spread"))?;
            positive(t.lambda, &p("lambda"))?;
            positive(t.user_cpu_ghz, &p("user_cpu_ghz"))?;
            positive(t.kappa, &p("kappa"))?;
        }
        if let Some(d) = &self.downlink {
            positive(d.rate_mbps, "downlink.rate_mbps")?;
            positive(d.output_kb, "downlink.output_kb")?;
        }
        Ok(())
    }
}

impl ExplicitSpec {
    fn validate(&self) -> Result<(), SpecError> {
        positive(self.bandwidth_hz, "explicit.bandwidth_hz")?;
        if self.subchannels == 0 {
            return Err(SpecError::new("explicit.subchannels", "must be at least 1"));
        }
        positive(self.noise_w, "explicit.noise_w")?;
        if self.server_cpu_hz.is_empty() {
            return Err(SpecError::new(
                "explicit.server_cpu_hz",
                "at least one server is required",
            ));
        }
        for (i, cpu) in self.server_cpu_hz.iter().enumerate() {
            positive(*cpu, &format!("explicit.server_cpu_hz[{i}]"))?;
        }
        if let Some(bps) = self.downlink_bps {
            positive(bps, "explicit.downlink_bps")?;
        }
        if self.users.is_empty() {
            return Err(SpecError::new(
                "explicit.user",
                "at least one user is required",
            ));
        }
        let servers = self.server_cpu_hz.len();
        for (i, u) in self.users.iter().enumerate() {
            let p = |field: &str| format!("explicit.user[{i}].{field}");
            positive(u.task_data_bits, &p("task_data_bits"))?;
            positive(u.task_cycles, &p("task_cycles"))?;
            if let Some(out) = u.task_output_bits {
                positive(out, &p("task_output_bits"))?;
            }
            unit_interval(u.beta_time, &p("beta_time"))?;
            positive(u.lambda, &p("lambda"))?;
            positive(u.user_cpu_hz, &p("user_cpu_hz"))?;
            positive(u.kappa, &p("kappa"))?;
            if !u.tx_power_dbm.is_finite() {
                return Err(SpecError::new(p("tx_power_dbm"), "must be finite"));
            }
            if u.gains.len() != servers {
                return Err(SpecError::new(
                    p("gains"),
                    format!(
                        "expected {servers} rows (one per server), got {}",
                        u.gains.len()
                    ),
                ));
            }
            for (s, row) in u.gains.iter().enumerate() {
                if row.len() != self.subchannels {
                    return Err(SpecError::new(
                        format!("explicit.user[{i}].gains[{s}]"),
                        format!(
                            "expected {} gains (one per subchannel), got {}",
                            self.subchannels,
                            row.len()
                        ),
                    ));
                }
                for (j, g) in row.iter().enumerate() {
                    positive(*g, &format!("explicit.user[{i}].gains[{s}][{j}]"))?;
                }
            }
        }
        Ok(())
    }
}

impl ChurnSpec {
    fn validate(&self) -> Result<(), SpecError> {
        if self.process != "poisson" {
            return Err(SpecError::new(
                "churn.process",
                format!(
                    "unsupported process `{}` (expected \"poisson\")",
                    self.process
                ),
            ));
        }
        non_negative(self.arrival_rate_hz, "churn.arrival_rate_hz")?;
        positive(self.mean_sojourn_s, "churn.mean_sojourn_s")?;
        if let Some(h) = self.horizon_s {
            positive(h, "churn.horizon_s")?;
        }
        Ok(())
    }
}

impl AdmissionSpec {
    fn validate(&self) -> Result<(), SpecError> {
        match self.policy.as_str() {
            "admit_all" => {
                if self.capacity.is_some() {
                    return Err(SpecError::new(
                        "admission.capacity",
                        "admit_all takes no capacity",
                    ));
                }
            }
            "reject" | "force_local" => {
                if self.capacity.is_none() {
                    return Err(SpecError::new(
                        "admission.capacity",
                        format!("policy `{}` requires a capacity", self.policy),
                    ));
                }
            }
            other => {
                return Err(SpecError::new(
                    "admission.policy",
                    format!(
                        "unknown policy `{other}` (expected \"admit_all\", \"reject\" or \"force_local\")"
                    ),
                ))
            }
        }
        Ok(())
    }
}

impl OnlineSpec {
    fn validate(&self) -> Result<(), SpecError> {
        if self.epochs == 0 {
            return Err(SpecError::new("online.epochs", "must be at least 1"));
        }
        positive(self.epoch_duration_s, "online.epoch_duration_s")?;
        positive(self.speed_min_mps, "online.speed_min_mps")?;
        positive(self.speed_max_mps, "online.speed_max_mps")?;
        if self.speed_min_mps > self.speed_max_mps {
            return Err(SpecError::new(
                "online.speed_min_mps",
                "must not exceed speed_max_mps",
            ));
        }
        if self.warm_budget == Some(0) {
            return Err(SpecError::new("online.warm_budget", "must be at least 1"));
        }
        if let Some(t) = self.min_temperature {
            positive(t, "online.min_temperature")?;
        }
        Ok(())
    }

    /// Total simulated run length.
    pub fn horizon_s(&self) -> f64 {
        self.epochs as f64 * self.epoch_duration_s
    }
}

impl ExpectSpec {
    fn validate(&self, has_online: bool) -> Result<(), SpecError> {
        if let Some(solver) = &self.solver {
            if !matches!(solver.as_str(), "anneal" | "shard") {
                return Err(SpecError::new(
                    "expect.solver",
                    format!("unknown solver `{solver}` (expected \"anneal\" or \"shard\")"),
                ));
            }
            if has_online {
                return Err(SpecError::new(
                    "expect.solver",
                    "online specs always use the online engine; solver \
                     selection is offline-only",
                ));
            }
        }
        if let (Some(lo), Some(hi)) = (self.min_utility, self.max_utility) {
            if lo > hi {
                return Err(SpecError::new(
                    "expect.min_utility",
                    "must not exceed max_utility",
                ));
            }
        }
        if let Some(rate) = self.min_deadline_hit_rate {
            unit_interval(rate, "expect.min_deadline_hit_rate")?;
        }
        if !has_online {
            let online_only: [(&str, bool); 5] = [
                (
                    "min_deadline_hit_rate",
                    self.min_deadline_hit_rate.is_some(),
                ),
                ("min_arrivals", self.min_arrivals.is_some()),
                ("min_events_applied", self.min_events_applied.is_some()),
                ("final_servers_up", self.final_servers_up.is_some()),
                ("min_peak_active", self.min_peak_active.is_some()),
            ];
            if let Some((field, _)) = online_only.iter().find(|(_, set)| *set) {
                return Err(SpecError::new(
                    format!("expect.{field}"),
                    "requires an [online] section",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "schema_version = 1\nname = \"minimal\"\n";

    #[test]
    fn minimal_spec_decodes_with_paper_defaults() {
        let spec = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        spec.validate().unwrap();
        let SpecMode::Generated(g) = &spec.mode else {
            panic!("expected generated mode")
        };
        assert_eq!(g.topology.servers, 9);
        assert_eq!(g.radio.subchannels, 3);
        assert_eq!(g.population.users, 30);
        assert_eq!(g.population.templates.len(), 1);
        assert_eq!(g.population.templates[0].task_mcycles, 1000.0);
    }

    #[test]
    fn toml_round_trip_preserves_the_spec() {
        let doc = r#"
schema_version = 1
name = "round_trip"
description = "full featured"

[topology]
servers = 4
inter_site_distance_m = 800.0

[radio]
subchannels = 2
shadowing_db = 0.0

[population]
users = 12
placement = "hotspots"
hotspot_clusters = 2
hotspot_spread_m = 60.0

[[population.template]]
weight = 2.0
task_mcycles = 1500.0

[[population.template]]
weight = 1.0
beta_time = 0.9

[downlink]
rate_mbps = 10.0
output_kb = 40.0

[churn]
arrival_rate_hz = 0.2
mean_sojourn_s = 45.0
adaptive = true

[admission]
policy = "force_local"
capacity = 8

[sla]
deadline_s = 0.6

[online]
epochs = 6
epoch_duration_s = 10.0

[[timeline]]
at_s = 10.0
event = "server_outage"
server = 1

[[timeline]]
at_s = 30.0
event = "server_recovery"
server = 1

[[timeline]]
at_s = 20.0
event = "load_ramp"
rate_factor = 2.5

[expect]
seed = 7
min_arrivals = 1
"#;
        let spec = ScenarioSpec::from_toml_str(doc).unwrap();
        spec.validate().unwrap();
        let text = spec.to_toml_string().unwrap();
        let back = ScenarioSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, back, "re-encoded spec differs:\n{text}");
    }

    #[test]
    fn json_round_trip_preserves_the_spec() {
        let spec = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        let json = spec.to_json_string().unwrap();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let doc = "schema_version = 1\nname = \"x\"\n[radio]\nbandwith_hz = 1.0\n";
        let err = ScenarioSpec::from_toml_str(doc).unwrap_err();
        assert_eq!(err.path, "radio.bandwith_hz");
        assert_eq!(err.message, "unknown field");
    }

    #[test]
    fn explicit_mode_conflicts_with_generated_sections() {
        let doc = r#"
schema_version = 1
name = "x"

[topology]
servers = 3

[explicit]
bandwidth_hz = 20e6
subchannels = 1
noise_w = 1e-13
server_cpu_hz = [2e10]

[[explicit.user]]
task_data_bits = 3440640.0
task_cycles = 1e9
beta_time = 0.5
lambda = 1.0
user_cpu_hz = 1e9
kappa = 5e-27
tx_power_dbm = 10.0
gains = [[1e-10]]
"#;
        let err = ScenarioSpec::from_toml_str(doc).unwrap_err();
        assert_eq!(err.path, "topology");
    }

    #[test]
    fn overlapping_outages_are_rejected() {
        let doc = r#"
schema_version = 1
name = "x"

[online]
epochs = 4

[[timeline]]
at_s = 5.0
event = "server_outage"
server = 2

[[timeline]]
at_s = 15.0
event = "server_outage"
server = 2
"#;
        let spec = ScenarioSpec::from_toml_str(doc).unwrap();
        let err = spec.validate().unwrap_err();
        assert_eq!(err.path, "timeline[1]");
        assert!(err.message.contains("already down"), "{err}");
    }

    #[test]
    fn final_servers_up_tracks_the_timeline() {
        let doc = r#"
schema_version = 1
name = "x"

[topology]
servers = 4

[online]
epochs = 4

[[timeline]]
at_s = 5.0
event = "server_outage"
server = 0

[[timeline]]
at_s = 8.0
event = "server_outage"
server = 1

[[timeline]]
at_s = 12.0
event = "server_recovery"
server = 0
"#;
        let spec = ScenarioSpec::from_toml_str(doc).unwrap();
        spec.validate().unwrap();
        assert_eq!(spec.final_servers_up(), 3);
    }
}
